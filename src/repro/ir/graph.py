"""The DNN computation graph.

A :class:`ComputationGraph` is a DAG of :class:`~repro.ir.layer.Layer`
nodes.  It owns shape inference, validation, deterministic topological
scheduling (the execution order the accelerator follows, Sec. 3.1 of the
paper: "C2 executes before C3 in topological order") and the enumeration of
feature/weight tensor identities that the LCMM passes operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphValidationError
from repro.ir.layer import Concat, Layer, OpType
from repro.ir.tensor import (
    FeatureMapShape,
    FeatureTensor,
    WeightTensor,
    feature_tensor_name,
    weight_tensor_name,
)

__all__ = ["ComputationGraph", "GraphValidationError"]


@dataclass
class ComputationGraph:
    """A directed acyclic graph of DNN layers.

    Layers are added in definition order; the topological schedule breaks
    ties by definition order, which makes every derived analysis
    deterministic and reproducible.

    Attributes:
        name: Model name (``"resnet152"``...).
    """

    name: str
    #: Optional grouping of layers into named blocks (inception blocks,
    #: residual stages...).  Populated by the model builders; used by the
    #: per-block experiments (Fig. 2(b) and Fig. 8 of the paper).
    blocks: dict[str, list[str]] = field(default_factory=dict)
    _layers: dict[str, Layer] = field(default_factory=dict, repr=False)
    _shapes: dict[str, FeatureMapShape] = field(default_factory=dict, repr=False)
    _schedule: list[str] | None = field(default=None, repr=False)
    _current_block: str | None = field(default=None, repr=False)

    def add(self, layer: Layer) -> Layer:
        """Add a layer, checking name uniqueness and input availability.

        Inputs must already be present — the builders emit layers in
        topological order, which keeps validation incremental and cheap.

        Returns:
            The layer itself, so builders can chain on the name.
        """
        if layer.name in self._layers:
            raise GraphValidationError(f"duplicate layer name {layer.name!r}")
        for src in layer.inputs:
            if src not in self._layers:
                raise GraphValidationError(
                    f"layer {layer.name!r} reads unknown input {src!r} "
                    "(layers must be added in topological order)"
                )
        input_shapes = [self._shapes[src] for src in layer.inputs]
        self._shapes[layer.name] = layer.infer_output_shape(input_shapes)
        self._layers[layer.name] = layer
        self._schedule = None
        if self._current_block is not None:
            self.blocks.setdefault(self._current_block, []).append(layer.name)
        return layer

    def begin_block(self, block_name: str) -> None:
        """Start tagging subsequently added layers with ``block_name``."""
        self._current_block = block_name

    def end_block(self) -> None:
        """Stop tagging added layers with a block name."""
        self._current_block = None

    def block_of(self, layer_name: str) -> str | None:
        """Name of the block containing ``layer_name``, or None."""
        self.layer(layer_name)
        for block_name, members in self.blocks.items():
            if layer_name in members:
                return block_name
        return None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise KeyError(f"no layer named {name!r} in graph {self.name!r}") from None

    def layers(self) -> list[Layer]:
        """All layers in definition (and therefore topological) order."""
        return list(self._layers.values())

    def output_shape(self, name: str) -> FeatureMapShape:
        """Output feature-map shape of a layer."""
        self.layer(name)
        return self._shapes[name]

    def input_shapes(self, name: str) -> list[FeatureMapShape]:
        """Input feature-map shapes of a layer, in input order."""
        return [self._shapes[src] for src in self.layer(name).inputs]

    def predecessors(self, name: str) -> list[str]:
        """Producer layer names read by ``name``."""
        return list(self.layer(name).inputs)

    def successors(self, name: str) -> list[str]:
        """Consumer layer names reading ``name``'s output, in schedule order."""
        self.layer(name)
        return [lyr.name for lyr in self._layers.values() if name in lyr.inputs]

    def sinks(self) -> list[str]:
        """Layers whose output nobody consumes (the network outputs)."""
        consumed = {src for lyr in self._layers.values() for src in lyr.inputs}
        return [name for name in self._layers if name not in consumed]

    def schedule(self) -> list[str]:
        """Deterministic topological execution order of all layers.

        Since :meth:`add` enforces producers-before-consumers, definition
        order *is* a topological order; we cache and return it.  Excludes
        nothing — callers filter by op type as needed.
        """
        if self._schedule is None:
            self._schedule = list(self._layers)
        return list(self._schedule)

    def compute_schedule(self) -> list[str]:
        """Schedule restricted to layers the accelerator actually executes.

        Input and concat nodes take no execution step: the input image is
        already in DDR and concatenation is address steering.
        """
        skip = (OpType.INPUT, OpType.CONCAT)
        return [name for name in self.schedule() if self.layer(name).op_type not in skip]

    # ------------------------------------------------------------------
    # Tensor enumeration
    # ------------------------------------------------------------------
    def feature_tensors(self) -> list[FeatureTensor]:
        """One feature tensor per layer output that somebody consumes.

        Concat nodes are transparent: a consumer reading a concat output is
        recorded as a consumer of each of the concat's own inputs, because
        the accelerator reads the branch outputs directly via address
        steering.  Concat outputs therefore get no tensor of their own.
        """
        tensors = []
        for name, lyr in self._layers.items():
            if lyr.op_type is OpType.CONCAT:
                continue
            consumers = self._transitive_consumers(name)
            if not consumers:
                continue
            tensors.append(
                FeatureTensor(
                    name=feature_tensor_name(name),
                    producer=name,
                    consumers=tuple(consumers),
                    shape=self._shapes[name],
                )
            )
        return tensors

    def _transitive_consumers(self, name: str) -> list[str]:
        """Consumers of a layer output, looking through concat nodes."""
        order = {node: idx for idx, node in enumerate(self.schedule())}
        result: list[str] = []
        stack = self.successors(name)
        while stack:
            consumer = stack.pop(0)
            if self.layer(consumer).op_type is OpType.CONCAT:
                stack.extend(self.successors(consumer))
            else:
                result.append(consumer)
        return sorted(set(result), key=order.__getitem__)

    def feature_sources(self, name: str) -> list[str]:
        """Producer names whose feature values ``name`` actually reads.

        Expands concat inputs recursively: a node reading a concat output
        reads the concat's branch outputs directly (address steering), so
        the returned producers are always non-concat layers.
        """
        sources: list[str] = []
        stack = list(self.layer(name).inputs)
        while stack:
            src = stack.pop(0)
            if self.layer(src).op_type is OpType.CONCAT:
                stack = list(self.layer(src).inputs) + stack
            else:
                sources.append(src)
        return sources

    def weight_tensors(self) -> list[WeightTensor]:
        """One weight tensor per weighted layer (conv/FC/GEMM/attention)."""
        tensors = []
        for name, lyr in self._layers.items():
            shape = lyr.weight_shape
            if shape is not None:
                tensors.append(WeightTensor(weight_tensor_name(name), name, shape))
        return tensors

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_macs(self) -> int:
        """Total multiply-accumulates for one inference."""
        return sum(
            lyr.macs(self.input_shapes(lyr.name)) for lyr in self._layers.values()
        )

    def total_weight_bytes(self, element_bytes: int) -> int:
        """Total parameter footprint in bytes."""
        return sum(t.bytes(element_bytes) for t in self.weight_tensors())

    def weighted_layers(self) -> list[str]:
        """Names of layers that read a weight tensor, in order."""
        return [name for name, lyr in self._layers.items() if lyr.has_weights]

    #: Historical name from the conv-only era; the set was always
    #: "layers with weights", which now includes GEMM/attention nodes.
    conv_layers = weighted_layers

    def validate(self) -> None:
        """Full structural validation.

        :meth:`add` already guarantees acyclicity and resolved inputs; this
        re-checks reachability so hand-mutated graphs fail loudly.

        Raises:
            GraphValidationError: On an empty graph or unreachable layers.
        """
        if not self._layers:
            raise GraphValidationError(f"graph {self.name!r} is empty")
        entry = [n for n, l in self._layers.items() if l.op_type is OpType.INPUT]
        if not entry:
            raise GraphValidationError(f"graph {self.name!r} has no input layer")
        reachable = set(entry)
        frontier = list(entry)
        while frontier:
            node = frontier.pop()
            for succ in self.successors(node):
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        unreachable = set(self._layers) - reachable
        if unreachable:
            raise GraphValidationError(
                f"graph {self.name!r} has unreachable layers: {sorted(unreachable)[:5]}"
            )

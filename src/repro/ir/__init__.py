"""Computation-graph IR for DNN models.

The paper's framework operates on the *computation graph* of a DNN
(Fig. 3(a)): nodes are layers, edges carry feature-map tensors, and every
convolution additionally reads a weight tensor.  This subpackage provides
the shape-level IR — no numerical data is ever attached, because LCMM only
needs shapes, sizes and dependencies.
"""

from repro.ir.tensor import (
    FeatureMapShape,
    FeatureTensor,
    TensorKind,
    WeightShape,
    WeightTensor,
)
from repro.ir.layer import (
    Attention,
    ComputeKind,
    Concat,
    Conv2D,
    EltwiseAdd,
    FullyConnected,
    Gemm,
    GemmDims,
    InputLayer,
    Layer,
    LayerNorm,
    Pooling,
)
from repro.ir.graph import ComputationGraph, GraphValidationError

__all__ = [
    "TensorKind",
    "FeatureMapShape",
    "WeightShape",
    "FeatureTensor",
    "WeightTensor",
    "Layer",
    "ComputeKind",
    "GemmDims",
    "InputLayer",
    "Conv2D",
    "Pooling",
    "FullyConnected",
    "Gemm",
    "Attention",
    "LayerNorm",
    "EltwiseAdd",
    "Concat",
    "ComputationGraph",
    "GraphValidationError",
]

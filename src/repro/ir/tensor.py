"""Tensor shapes and graph-level tensor identities.

Two tensor families matter to the framework (Sec. 3 of the paper):

* **Feature tensors** — one per producing node; live from the producer's
  execution step until the last consumer's step.  These are the candidates
  for feature buffer reuse (Sec. 3.1).
* **Weight tensors** — one per convolution / fully-connected node; without
  prefetching their lifespan covers the whole graph, with prefetching it is
  the span of the prefetch edge (Sec. 3.2).

Tensor objects here are *identities*: they know their shape, their element
count and which nodes produce/consume them, but carry no data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TensorKind(str, enum.Enum):
    """Data source of a tensor from the perspective of one operation.

    Matches the paper's ``d in {if, wt, of}`` notation (Eq. 1).
    """

    IFMAP = "if"
    WEIGHT = "wt"
    OFMAP = "of"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class FeatureMapShape:
    """Shape of a feature-map tensor in channels x height x width.

    The batch dimension is 1 throughout — the paper evaluates
    latency-per-image inference (Tab. 3 reports "Latency/Image").
    """

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ValueError(f"feature map dimensions must be positive, got {self}")

    @property
    def volume(self) -> int:
        """Number of elements."""
        return self.channels * self.height * self.width

    def bytes(self, element_bytes: int) -> int:
        """Size in bytes at a given element width."""
        return self.volume * element_bytes

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"


@dataclass(frozen=True)
class WeightShape:
    """Shape of a convolution weight tensor: M x C x Kh x Kw."""

    out_channels: int
    in_channels: int
    kernel_h: int
    kernel_w: int

    def __post_init__(self) -> None:
        if min(self.out_channels, self.in_channels, self.kernel_h, self.kernel_w) <= 0:
            raise ValueError(f"weight dimensions must be positive, got {self}")

    @property
    def volume(self) -> int:
        """Number of elements."""
        return self.out_channels * self.in_channels * self.kernel_h * self.kernel_w

    def bytes(self, element_bytes: int) -> int:
        """Size in bytes at a given element width."""
        return self.volume * element_bytes

    def __str__(self) -> str:
        return f"{self.out_channels}x{self.in_channels}x{self.kernel_h}x{self.kernel_w}"


@dataclass(frozen=True)
class FeatureTensor:
    """A feature-map value flowing along graph edges.

    Attributes:
        name: Unique tensor name, conventionally ``f:<producer>``.
        producer: Name of the node whose output this tensor is.
        consumers: Names of the nodes reading this tensor, in schedule order.
        shape: Feature-map shape.
    """

    name: str
    producer: str
    consumers: tuple[str, ...]
    shape: FeatureMapShape

    def bytes(self, element_bytes: int) -> int:
        """Size in bytes at a given element width."""
        return self.shape.bytes(element_bytes)


@dataclass(frozen=True)
class WeightTensor:
    """The weight value read by one convolution or FC node.

    Attributes:
        name: Unique tensor name, conventionally ``w:<node>``.
        node: Name of the node that consumes these weights.
        shape: Weight shape (M x C x Kh x Kw).
    """

    name: str
    node: str
    shape: WeightShape

    def bytes(self, element_bytes: int) -> int:
        """Size in bytes at a given element width."""
        return self.shape.bytes(element_bytes)


def feature_tensor_name(producer: str) -> str:
    """Canonical name of the feature tensor produced by ``producer``."""
    return f"f:{producer}"


def weight_tensor_name(node: str) -> str:
    """Canonical name of the weight tensor consumed by ``node``."""
    return f"w:{node}"


def is_feature_tensor_name(name: str) -> bool:
    """Whether ``name`` follows the canonical feature-tensor convention.

    Defined in terms of :func:`feature_tensor_name` so a change to the
    naming scheme cannot silently diverge from the membership test.
    """
    _, sep, producer = name.partition(":")
    return bool(sep) and bool(producer) and name == feature_tensor_name(producer)


def is_weight_tensor_name(name: str) -> bool:
    """Whether ``name`` follows the canonical weight-tensor convention.

    Defined in terms of :func:`weight_tensor_name` so a change to the
    naming scheme cannot silently diverge from the membership test.
    """
    _, sep, node = name.partition(":")
    return bool(sep) and bool(node) and name == weight_tensor_name(node)

"""Layer (graph node) definitions.

Each layer knows how to infer its output feature-map shape from its input
shapes and how to count its multiply-accumulate operations.  Convolutions
dominate both computation and storage in the evaluated models (Sec. 2.1 of
the paper), so they carry the full loop-nest description
``(M, C, H, W, Kh, Kw)`` consumed by the performance model.  Pooling and
element-wise layers move data but perform negligible arithmetic; concat is
realised by address steering in the accelerator and is free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.tensor import FeatureMapShape, WeightShape


class OpType(str, enum.Enum):
    """Operation category of a layer."""

    INPUT = "input"
    CONV = "conv"
    POOL = "pool"
    FC = "fc"
    ELTWISE = "eltwise"
    CONCAT = "concat"

    def __str__(self) -> str:
        return self.value


class PoolMode(str, enum.Enum):
    """Pooling flavour; both cost the same in the performance model."""

    MAX = "max"
    AVG = "avg"


def _conv_output_extent(extent: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution/pooling along one axis."""
    out = (extent + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output extent for input={extent}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


@dataclass
class Layer:
    """Base class for graph nodes.

    Attributes:
        name: Unique node name within a graph.
        inputs: Names of the producer nodes this layer reads, in order.
    """

    name: str
    inputs: tuple[str, ...] = ()

    #: Overridden per subclass.
    op_type: OpType = field(default=OpType.INPUT, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if isinstance(self.inputs, list):
            self.inputs = tuple(self.inputs)

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        """Output feature-map shape given the input shapes, in input order."""
        raise NotImplementedError

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        """Multiply-accumulate count of the layer (0 for data movement ops)."""
        return 0

    @property
    def weight_shape(self) -> WeightShape | None:
        """Weight tensor shape, or None for weight-less layers."""
        return None

    @property
    def has_weights(self) -> bool:
        """Whether the layer reads a weight tensor."""
        return self.weight_shape is not None


@dataclass
class InputLayer(Layer):
    """Graph entry point carrying the network's input image."""

    shape: FeatureMapShape = field(default_factory=lambda: FeatureMapShape(3, 224, 224))

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.INPUT
        if self.inputs:
            raise ValueError(f"input layer {self.name!r} must not have inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        if input_shapes:
            raise ValueError("input layer takes no input shapes")
        return self.shape


@dataclass
class Conv2D(Layer):
    """2-D convolution, the workhorse layer.

    Supports asymmetric kernels (the 1x7 / 7x1 factorised convolutions of
    Inception-v4) and strides; dilation and grouping are not needed by the
    paper's benchmark suite.

    Attributes:
        out_channels: Number of output feature maps (M).
        kernel: ``(Kh, Kw)`` filter size.
        stride: ``(Sh, Sw)`` stride.
        padding: ``(Ph, Pw)`` zero padding; ``"same"`` semantics must be
            pre-resolved by the model builders.
    """

    out_channels: int = 0
    kernel: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (0, 0)
    #: Filled by the graph when shapes are resolved; needed for weight_shape.
    in_channels: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONV
        if self.out_channels <= 0:
            raise ValueError(f"conv {self.name!r}: out_channels must be positive")
        if len(self.inputs) != 1:
            raise ValueError(f"conv {self.name!r} must have exactly one input")
        if min(self.kernel) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError(f"conv {self.name!r}: bad kernel/stride/padding")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.in_channels = shape.channels
        return FeatureMapShape(
            channels=self.out_channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        out = self.infer_output_shape(input_shapes)
        (inp,) = input_shapes
        return (
            out.channels
            * out.height
            * out.width
            * inp.channels
            * self.kernel[0]
            * self.kernel[1]
        )

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.in_channels <= 0:
            raise RuntimeError(
                f"conv {self.name!r}: weight shape queried before shape inference"
            )
        return WeightShape(self.out_channels, self.in_channels, *self.kernel)


@dataclass
class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: one filter per input channel.

    The workhorse of mobile architectures (MobileNet).  Output channels
    equal input channels; there is no reduction over input channels, so
    operation intensity is very low — depthwise layers are almost always
    memory bound, which makes MobileNet a stress case for the allocator.

    Attributes:
        kernel: ``(Kh, Kw)`` filter size.
        stride: ``(Sh, Sw)`` stride.
        padding: ``(Ph, Pw)`` zero padding.
    """

    kernel: tuple[int, int] = (3, 3)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (1, 1)
    #: Filled by shape inference.
    channels: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONV
        if len(self.inputs) != 1:
            raise ValueError(f"depthwise conv {self.name!r} must have exactly one input")
        if min(self.kernel) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError(f"depthwise conv {self.name!r}: bad kernel/stride/padding")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.channels = shape.channels
        return FeatureMapShape(
            channels=shape.channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        out = self.infer_output_shape(input_shapes)
        return out.channels * out.height * out.width * self.kernel[0] * self.kernel[1]

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.channels <= 0:
            raise RuntimeError(
                f"depthwise conv {self.name!r}: weight shape queried before inference"
            )
        # One Kh x Kw filter per channel.
        return WeightShape(self.channels, 1, *self.kernel)


@dataclass
class Pooling(Layer):
    """Max or average pooling; data movement only, negligible arithmetic."""

    kernel: tuple[int, int] = (2, 2)
    stride: tuple[int, int] = (2, 2)
    padding: tuple[int, int] = (0, 0)
    mode: PoolMode = PoolMode.MAX
    #: Global pooling collapses H x W to 1 x 1 regardless of kernel.
    global_pool: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.POOL
        if len(self.inputs) != 1:
            raise ValueError(f"pool {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        if self.global_pool:
            return FeatureMapShape(shape.channels, 1, 1)
        return FeatureMapShape(
            channels=shape.channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )


@dataclass
class FullyConnected(Layer):
    """Fully-connected layer, modelled as a 1x1 convolution on 1x1 spatial."""

    out_features: int = 0
    in_features: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.FC
        if self.out_features <= 0:
            raise ValueError(f"fc {self.name!r}: out_features must be positive")
        if len(self.inputs) != 1:
            raise ValueError(f"fc {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.in_features = shape.volume
        return FeatureMapShape(self.out_features, 1, 1)

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        (shape,) = input_shapes
        return shape.volume * self.out_features

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.in_features <= 0:
            raise RuntimeError(f"fc {self.name!r}: weight shape queried before shape inference")
        return WeightShape(self.out_features, self.in_features, 1, 1)


@dataclass
class EltwiseAdd(Layer):
    """Element-wise addition (residual shortcut join in ResNet)."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.ELTWISE
        if len(self.inputs) < 2:
            raise ValueError(f"eltwise {self.name!r} needs at least two inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        first = input_shapes[0]
        for other in input_shapes[1:]:
            if other != first:
                raise ValueError(
                    f"eltwise {self.name!r}: mismatched input shapes {first} vs {other}"
                )
        return first


@dataclass
class Concat(Layer):
    """Channel-wise concatenation (inception block join).

    Realised by address steering when consumers read from off-chip memory,
    so it contributes no compute and no extra data transfer of its own.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONCAT
        if len(self.inputs) < 2:
            raise ValueError(f"concat {self.name!r} needs at least two inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        first = input_shapes[0]
        for other in input_shapes[1:]:
            if (other.height, other.width) != (first.height, first.width):
                raise ValueError(
                    f"concat {self.name!r}: mismatched spatial dims {first} vs {other}"
                )
        return FeatureMapShape(
            channels=sum(shape.channels for shape in input_shapes),
            height=first.height,
            width=first.width,
        )

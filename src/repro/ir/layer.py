"""Layer (graph node) definitions.

Each layer knows how to infer its output feature-map shape from its input
shapes and how to count its multiply-accumulate operations.  Convolutions
dominate both computation and storage in the paper's evaluated models
(Sec. 2.1), so they carry the full loop-nest description
``(M, C, H, W, Kh, Kw)`` consumed by the performance model; GEMM-family
layers (matrix multiply, attention) carry the ``(B, M, N, P)`` description
the systolic GEMM model consumes instead.  Pooling, normalisation and
element-wise layers move data but perform negligible arithmetic; concat is
realised by address steering in the accelerator and is free.

Downstream consumers dispatch on :class:`ComputeKind`, not on concrete
classes — a new layer only needs a kind, the three shape/cost contracts
(``infer_output_shape`` / ``macs`` / ``weight_shape``) and, for GEMM-kind
ops, ``gemm_dims()``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.tensor import FeatureMapShape, WeightShape


class OpType(str, enum.Enum):
    """Operation category of a layer."""

    INPUT = "input"
    CONV = "conv"
    POOL = "pool"
    FC = "fc"
    ELTWISE = "eltwise"
    CONCAT = "concat"
    GEMM = "gemm"
    ATTENTION = "attention"
    NORM = "norm"

    def __str__(self) -> str:
        return self.value


class ComputeKind(str, enum.Enum):
    """How the accelerator executes a layer — the dispatch axis of the
    latency model, the tile simulator and the DSE sweep scorer.

    ``DATA`` nodes (input, concat) are free; everything else maps to one
    of the datapath templates.  ``GEMM`` covers both standalone matrix
    multiplies and fully-connected classifiers (the latter ride the conv
    datapath for latency, see :class:`FullyConnected`); ``ATTENTION`` is
    a fused block of composed GEMMs.
    """

    DATA = "data"
    CONV = "conv"
    DEPTHWISE = "depthwise"
    POOL = "pool"
    ELTWISE = "eltwise"
    GEMM = "gemm"
    ATTENTION = "attention"
    NORM = "norm"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class GemmDims:
    """Loop bounds of one (possibly batched) matrix multiply.

    The operation is ``out[b, m, p] = sum_n in[b, m, n] * w[b, n, p]``;
    for layer weights the batch dimension broadcasts over a single weight
    matrix.  These are the dimensions the systolic GEMM cycle model
    (``perf.systolic.gemm_compute_cycles``) consumes.

    Attributes:
        batch: Independent matrix multiplies (attention heads).
        m: Output rows (sequence/token positions).
        n: Reduction depth (input features).
        p: Output columns (output features).
    """

    batch: int
    m: int
    n: int
    p: int

    def __post_init__(self) -> None:
        if min(self.batch, self.m, self.n, self.p) <= 0:
            raise ValueError(f"gemm dimensions must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the multiply."""
        return self.batch * self.m * self.n * self.p

    def __str__(self) -> str:
        return f"[{self.batch}]{self.m}x{self.n}x{self.p}"


class PoolMode(str, enum.Enum):
    """Pooling flavour; both cost the same in the performance model."""

    MAX = "max"
    AVG = "avg"


def _conv_output_extent(extent: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution/pooling along one axis."""
    out = (extent + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output extent for input={extent}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


@dataclass
class Layer:
    """Base class for graph nodes.

    Attributes:
        name: Unique node name within a graph.
        inputs: Names of the producer nodes this layer reads, in order.
    """

    name: str
    inputs: tuple[str, ...] = ()

    #: Overridden per subclass.
    op_type: OpType = field(default=OpType.INPUT, init=False, repr=False)

    #: Datapath the layer executes on; overridden per subclass (plain class
    #: attribute so dataclass machinery and serialization ignore it).
    compute_kind = ComputeKind.DATA

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        if isinstance(self.inputs, list):
            self.inputs = tuple(self.inputs)

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        """Output feature-map shape given the input shapes, in input order."""
        raise NotImplementedError

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        """Multiply-accumulate count of the layer (0 for data movement ops)."""
        return 0

    @property
    def weight_shape(self) -> WeightShape | None:
        """Weight tensor shape, or None for weight-less layers."""
        return None

    @property
    def has_weights(self) -> bool:
        """Whether the layer reads a weight tensor."""
        return self.weight_shape is not None


@dataclass
class InputLayer(Layer):
    """Graph entry point carrying the network's input image."""

    shape: FeatureMapShape = field(default_factory=lambda: FeatureMapShape(3, 224, 224))

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.INPUT
        if self.inputs:
            raise ValueError(f"input layer {self.name!r} must not have inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        if input_shapes:
            raise ValueError("input layer takes no input shapes")
        return self.shape


@dataclass
class Conv2D(Layer):
    """2-D convolution, the workhorse layer.

    Supports asymmetric kernels (the 1x7 / 7x1 factorised convolutions of
    Inception-v4) and strides; dilation and grouping are not needed by the
    paper's benchmark suite.

    Attributes:
        out_channels: Number of output feature maps (M).
        kernel: ``(Kh, Kw)`` filter size.
        stride: ``(Sh, Sw)`` stride.
        padding: ``(Ph, Pw)`` zero padding; ``"same"`` semantics must be
            pre-resolved by the model builders.
    """

    out_channels: int = 0
    kernel: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (0, 0)
    #: Filled by the graph when shapes are resolved; needed for weight_shape.
    in_channels: int = field(default=0, repr=False)

    compute_kind = ComputeKind.CONV

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONV
        if self.out_channels <= 0:
            raise ValueError(f"conv {self.name!r}: out_channels must be positive")
        if len(self.inputs) != 1:
            raise ValueError(f"conv {self.name!r} must have exactly one input")
        if min(self.kernel) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError(f"conv {self.name!r}: bad kernel/stride/padding")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.in_channels = shape.channels
        return FeatureMapShape(
            channels=self.out_channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        out = self.infer_output_shape(input_shapes)
        (inp,) = input_shapes
        return (
            out.channels
            * out.height
            * out.width
            * inp.channels
            * self.kernel[0]
            * self.kernel[1]
        )

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.in_channels <= 0:
            raise RuntimeError(
                f"conv {self.name!r}: weight shape queried before shape inference"
            )
        return WeightShape(self.out_channels, self.in_channels, *self.kernel)


@dataclass
class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution: one filter per input channel.

    The workhorse of mobile architectures (MobileNet).  Output channels
    equal input channels; there is no reduction over input channels, so
    operation intensity is very low — depthwise layers are almost always
    memory bound, which makes MobileNet a stress case for the allocator.

    Attributes:
        kernel: ``(Kh, Kw)`` filter size.
        stride: ``(Sh, Sw)`` stride.
        padding: ``(Ph, Pw)`` zero padding.
    """

    kernel: tuple[int, int] = (3, 3)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[int, int] = (1, 1)
    #: Filled by shape inference.
    channels: int = field(default=0, repr=False)

    compute_kind = ComputeKind.DEPTHWISE

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONV
        if len(self.inputs) != 1:
            raise ValueError(f"depthwise conv {self.name!r} must have exactly one input")
        if min(self.kernel) <= 0 or min(self.stride) <= 0 or min(self.padding) < 0:
            raise ValueError(f"depthwise conv {self.name!r}: bad kernel/stride/padding")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.channels = shape.channels
        return FeatureMapShape(
            channels=shape.channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        out = self.infer_output_shape(input_shapes)
        return out.channels * out.height * out.width * self.kernel[0] * self.kernel[1]

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.channels <= 0:
            raise RuntimeError(
                f"depthwise conv {self.name!r}: weight shape queried before inference"
            )
        # One Kh x Kw filter per channel.
        return WeightShape(self.channels, 1, *self.kernel)


@dataclass
class Pooling(Layer):
    """Max or average pooling; data movement only, negligible arithmetic."""

    kernel: tuple[int, int] = (2, 2)
    stride: tuple[int, int] = (2, 2)
    padding: tuple[int, int] = (0, 0)
    mode: PoolMode = PoolMode.MAX
    #: Global pooling collapses H x W to 1 x 1 regardless of kernel.
    global_pool: bool = False

    compute_kind = ComputeKind.POOL

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.POOL
        if len(self.inputs) != 1:
            raise ValueError(f"pool {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        if self.global_pool:
            return FeatureMapShape(shape.channels, 1, 1)
        return FeatureMapShape(
            channels=shape.channels,
            height=_conv_output_extent(shape.height, self.kernel[0], self.stride[0], self.padding[0]),
            width=_conv_output_extent(shape.width, self.kernel[1], self.stride[1], self.padding[1]),
        )


@dataclass
class Gemm(Layer):
    """Dense matrix multiply over a token sequence.

    The input feature map is read as an ``M x N`` activation matrix with
    ``M = height * width`` token positions and ``N = channels`` features
    per token; the layer multiplies it by an ``N x P`` weight matrix
    (``P = out_features``) and emits a ``P x height x width`` feature map,
    keeping the sequence laid out spatially so eltwise/norm layers and the
    buffer-allocation machinery see ordinary feature tensors.

    Attributes:
        out_features: Output features per token (P).
    """

    out_features: int = 0
    #: Filled by shape inference: reduction depth N and token rows M.
    in_features: int = field(default=0, repr=False)
    rows: int = field(default=0, repr=False)

    compute_kind = ComputeKind.GEMM
    #: Error-message tag, overridden by :class:`FullyConnected`.
    _label = "gemm"
    #: When True, latency characterisation routes the node through the
    #: conv datapath (``effective_macs`` padding model, unit reloads)
    #: instead of the systolic GEMM tile schedule.  The paper's
    #: accelerator runs the CNN classifier head that way.
    conv_datapath = False

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.GEMM
        if self.out_features <= 0:
            raise ValueError(f"{self._label} {self.name!r}: out_features must be positive")
        if len(self.inputs) != 1:
            raise ValueError(f"{self._label} {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.in_features = shape.channels
        self.rows = shape.height * shape.width
        return FeatureMapShape(self.out_features, shape.height, shape.width)

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        (shape,) = input_shapes
        return shape.volume * self.out_features

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.in_features <= 0:
            raise RuntimeError(
                f"{self._label} {self.name!r}: weight shape queried before shape inference"
            )
        return WeightShape(self.out_features, self.in_features, 1, 1)

    def gemm_dims(self) -> GemmDims:
        """The (B, M, N, P) loop bounds of this node's multiply."""
        if self.in_features <= 0 or self.rows <= 0:
            raise RuntimeError(
                f"{self._label} {self.name!r}: gemm dims queried before shape inference"
            )
        return GemmDims(batch=1, m=self.rows, n=self.in_features, p=self.out_features)


@dataclass
class FullyConnected(Gemm):
    """Fully-connected classifier head: a GEMM over one flattened token.

    Flattens the whole input feature map into a single ``1 x volume`` row
    (``M = 1``, ``N = volume``), so MACs and weight bytes are identical to
    the historical 1x1-convolution model; latency characterisation keeps
    routing it through the conv datapath (``conv_datapath``), which the
    paper's accelerator uses for classifier layers.
    """

    _label = "fc"
    conv_datapath = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.FC

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        self.in_features = shape.volume
        self.rows = 1
        return FeatureMapShape(self.out_features, 1, 1)


@dataclass
class Attention(Layer):
    """Multi-head self-attention block, executed as composed GEMMs.

    Reads one feature map interpreted as a token sequence (``S = height *
    width`` tokens of ``D = channels`` features) and performs the four
    projections of standard multi-head attention — fused QKV, per-head
    score (``Q K^T``), per-head context (``softmax(scores) V``) and the
    output projection — producing a same-shaped feature map.  Softmax and
    the attention intermediates (Q/K/V, score matrices) stay in the tile
    buffers between the composed GEMMs (fused-attention execution), so the
    node exposes a single combined ``4 D x D`` weight tensor and single
    input/output streams to the allocator.

    Attributes:
        num_heads: Attention heads; must divide the model dimension.
    """

    num_heads: int = 1
    #: Filled by shape inference: model dimension D and sequence length S.
    d_model: int = field(default=0, repr=False)
    seq: int = field(default=0, repr=False)

    compute_kind = ComputeKind.ATTENTION

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.ATTENTION
        if self.num_heads <= 0:
            raise ValueError(f"attention {self.name!r}: num_heads must be positive")
        if len(self.inputs) != 1:
            raise ValueError(f"attention {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        if shape.channels % self.num_heads != 0:
            raise ValueError(
                f"attention {self.name!r}: d_model {shape.channels} not divisible "
                f"by num_heads {self.num_heads}"
            )
        self.d_model = shape.channels
        self.seq = shape.height * shape.width
        return shape

    def macs(self, input_shapes: list[FeatureMapShape]) -> int:
        (shape,) = input_shapes
        s, d = shape.height * shape.width, shape.channels
        # QKV (3SD^2) + output projection (SD^2) + scores (S^2 D) + context (S^2 D).
        return 4 * s * d * d + 2 * s * s * d

    @property
    def weight_shape(self) -> WeightShape | None:
        if self.d_model <= 0:
            raise RuntimeError(
                f"attention {self.name!r}: weight shape queried before shape inference"
            )
        # W_Q, W_K, W_V and W_O, each D x D, streamed as one fused tensor.
        return WeightShape(4 * self.d_model, self.d_model, 1, 1)

    def gemm_dims(self) -> tuple[GemmDims, ...]:
        """The composed multiplies: (qkv, scores, context, projection)."""
        if self.d_model <= 0 or self.seq <= 0:
            raise RuntimeError(
                f"attention {self.name!r}: gemm dims queried before shape inference"
            )
        head = self.d_model // self.num_heads
        return (
            GemmDims(batch=1, m=self.seq, n=self.d_model, p=3 * self.d_model),
            GemmDims(batch=self.num_heads, m=self.seq, n=head, p=self.seq),
            GemmDims(batch=self.num_heads, m=self.seq, n=self.seq, p=head),
            GemmDims(batch=1, m=self.seq, n=self.d_model, p=self.d_model),
        )


@dataclass
class LayerNorm(Layer):
    """Layer normalisation over the channel dimension of each token.

    Two read passes over the data (statistics, then normalise) and
    negligible arithmetic per element; the per-channel scale/shift
    parameters (2D elements) are folded into the normalise pass and far
    too small to matter for the byte accounting, so the node carries no
    weight tensor.  Shape-preserving, like eltwise — and like eltwise it
    is strongly memory bound, which is what makes transformer graphs
    profitable territory for feature pinning.
    """

    compute_kind = ComputeKind.NORM

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.NORM
        if len(self.inputs) != 1:
            raise ValueError(f"norm {self.name!r} must have exactly one input")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        (shape,) = input_shapes
        return shape


@dataclass
class EltwiseAdd(Layer):
    """Element-wise addition (residual shortcut join in ResNet)."""

    compute_kind = ComputeKind.ELTWISE

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.ELTWISE
        if len(self.inputs) < 2:
            raise ValueError(f"eltwise {self.name!r} needs at least two inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        first = input_shapes[0]
        for other in input_shapes[1:]:
            if other != first:
                raise ValueError(
                    f"eltwise {self.name!r}: mismatched input shapes {first} vs {other}"
                )
        return first


@dataclass
class Concat(Layer):
    """Channel-wise concatenation (inception block join).

    Realised by address steering when consumers read from off-chip memory,
    so it contributes no compute and no extra data transfer of its own.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.op_type = OpType.CONCAT
        if len(self.inputs) < 2:
            raise ValueError(f"concat {self.name!r} needs at least two inputs")

    def infer_output_shape(self, input_shapes: list[FeatureMapShape]) -> FeatureMapShape:
        first = input_shapes[0]
        for other in input_shapes[1:]:
            if (other.height, other.width) != (first.height, first.width):
                raise ValueError(
                    f"concat {self.name!r}: mismatched spatial dims {first} vs {other}"
                )
        return FeatureMapShape(
            channels=sum(shape.channels for shape in input_shapes),
            height=first.height,
            width=first.width,
        )

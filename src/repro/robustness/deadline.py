"""Cooperative per-request deadlines, propagated into pass execution.

The serving front door (:mod:`repro.serve`) gives every request a time
budget.  A budget is only worth anything if the code doing the work can
see it, so this module keeps a *thread-local absolute deadline* that the
pass pipeline checks at every pass boundary
(:meth:`repro.lcmm.passes.PassManager.run` calls :func:`check_deadline`
before each pass) and that any long-running loop is free to poll.

Semantics:

* :func:`deadline_scope` installs a deadline for the dynamic extent of a
  with-block.  Scopes nest; an inner scope can only *shorten* the
  effective deadline, never extend it past the enclosing one.
* :func:`check_deadline` raises
  :class:`repro.errors.DeadlineExceeded` once the budget is spent.  The
  degradation chain deliberately re-raises it instead of falling back —
  an expired request must fail fast, not burn more budget compiling
  weaker levels.
* Everything is thread-local, so a threaded server can run concurrent
  requests with independent budgets; worker *processes* receive an
  absolute wall-clock epoch (monotonic clocks do not travel between
  processes) and re-anchor it on entry (:func:`deadline_scope` with
  ``epoch=``).

When no deadline is installed (the normal batch/CLI case) every check
is one thread-local attribute read — effectively free.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigError, DeadlineExceeded

__all__ = [
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining",
]

_LOCAL = threading.local()


def current_deadline() -> float | None:
    """The active absolute deadline (``time.monotonic`` seconds), if any."""
    return getattr(_LOCAL, "deadline", None)


def remaining() -> float | None:
    """Seconds left in the active budget (``None`` = no deadline)."""
    deadline = current_deadline()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def check_deadline(where: str = "") -> None:
    """Raise :class:`~repro.errors.DeadlineExceeded` if the budget is spent.

    ``where`` names the checkpoint (``"pass.score"``, ``"serve.queue"``)
    for the structured error context.
    """
    deadline = current_deadline()
    if deadline is None:
        return
    over = time.monotonic() - deadline
    if over >= 0.0:
        raise DeadlineExceeded(
            f"deadline exceeded at {where or 'checkpoint'!s}",
            details={"checkpoint": where, "over_seconds": round(over, 6)},
        )


@contextmanager
def deadline_scope(
    seconds: float | None,
    *,
    epoch: float | None = None,
) -> Iterator[float | None]:
    """Install a deadline for the duration of a with-block.

    Args:
        seconds: Budget from now.  ``None`` installs nothing (the scope
            is then a no-op passthrough, which lets callers write one
            code path for both budgeted and unbudgeted work).
        epoch: Alternatively, an absolute ``time.time()`` wall-clock
            deadline — the cross-process form a worker receives.  The
            remaining budget is re-anchored onto this process's
            monotonic clock.  Mutually exclusive with ``seconds``.

    Yields the installed absolute monotonic deadline (or ``None``).
    Nested scopes keep the tighter of the two deadlines.
    """
    if seconds is not None and epoch is not None:
        raise ConfigError("deadline_scope takes seconds or epoch, not both")
    if epoch is not None:
        seconds = epoch - time.time()
    previous = current_deadline()
    if seconds is None:
        installed = previous
    else:
        installed = time.monotonic() + seconds
        if previous is not None:
            installed = min(installed, previous)
    _LOCAL.deadline = installed
    try:
        yield installed
    finally:
        _LOCAL.deadline = previous

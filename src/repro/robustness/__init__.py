"""Robustness tooling: fault injection, deadlines, chaos-test support."""

from repro.robustness.deadline import (
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining,
)
from repro.robustness.inject import (
    FaultPlan,
    arm,
    declare_fault_point,
    disarm,
    disarm_all,
    active_plans,
    fault_point,
    injected,
    install_plans,
    registered_fault_points,
)

__all__ = [
    "FaultPlan",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining",
    "arm",
    "declare_fault_point",
    "disarm",
    "disarm_all",
    "active_plans",
    "fault_point",
    "injected",
    "install_plans",
    "registered_fault_points",
]

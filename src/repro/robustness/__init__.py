"""Robustness tooling: fault injection and chaos-test support."""

from repro.robustness.inject import (
    FaultPlan,
    arm,
    declare_fault_point,
    disarm,
    disarm_all,
    active_plans,
    fault_point,
    injected,
    install_plans,
    registered_fault_points,
)

__all__ = [
    "FaultPlan",
    "arm",
    "declare_fault_point",
    "disarm",
    "disarm_all",
    "active_plans",
    "fault_point",
    "injected",
    "install_plans",
    "registered_fault_points",
]

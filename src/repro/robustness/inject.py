"""Deterministic fault-injection harness.

Production code marks *fault points* — named places where the chaos
tests may make it fail — by calling :func:`fault_point`.  When nothing
is armed (the normal case) a fault point is one dict-emptiness check, so
sprinkling them through passes, the allocation engine and the DSE
workers costs nothing measurable.

Chaos tests arm a :class:`FaultPlan` (usually via the :func:`injected`
context manager), run the system, and assert the fallback machinery
degrades instead of crashing.  Activation is *deterministic*: each armed
plan owns a ``random.Random(seed)`` stream, so the same seed replays the
same fire pattern, and CI can sweep seeds.

Fault modes:

* ``"raise"`` — raise :class:`repro.errors.InjectedFault` (picklable, so
  it crosses process-pool boundaries intact).
* ``"hang"`` — sleep ``hang_seconds`` then continue, simulating a stuck
  worker for the DSE chunk-timeout path.
* ``"crash"`` — ``os._exit`` the current process, simulating a killed
  worker.  **Only arm this for points that execute inside worker
  processes** (``dse.*``); in the parent it would kill the test runner.

Plans are plain picklable dataclasses: :func:`active_plans` snapshots
the armed set and :func:`install_plans` re-arms it inside a worker
process (the DSE pool initializer does exactly this), so injection
follows the work across process boundaries.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import ConfigError, InjectedFault
from repro.obs.spans import annotate as obs_annotate

_MODES = ("raise", "hang", "crash")


@dataclass(frozen=True)
class FaultPlan:
    """One armed fault: where, how, and how deterministically it fires.

    Attributes:
        point: Fault-point name (``"pass.allocate_dnnk"``, ``"dse.chunk"``...).
        mode: ``"raise"``, ``"hang"`` or ``"crash"``.
        rate: Probability a hit fires, drawn from the seeded stream
            (1.0 = every hit).
        seed: Seed of the plan's private random stream.
        max_fires: Stop firing after this many fires (``None`` = forever).
            ``max_fires=1`` models a transient fault.
        hang_seconds: Sleep duration for ``"hang"`` mode.
    """

    point: str
    mode: str = "raise"
    rate: float = 1.0
    seed: int = 0
    max_fires: int | None = None
    hang_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(
                f"unknown fault mode {self.mode!r}; expected one of {_MODES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be within [0, 1], got {self.rate}")


class ArmedFault:
    """Runtime state of one armed plan: seeded stream plus counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: Times the point was hit while armed.
        self.hits = 0
        #: Times the fault actually fired.
        self.fires = 0

    def hit(self, context: dict[str, Any]) -> None:
        """Register one hit; fire the fault when the plan says so."""
        self.hits += 1
        plan = self.plan
        if plan.max_fires is not None and self.fires >= plan.max_fires:
            return
        if self._rng.random() >= plan.rate:
            return
        self.fires += 1
        obs_annotate(
            "fault-injected", point=plan.point, mode=plan.mode, fire=self.fires
        )
        if plan.mode == "hang":
            time.sleep(plan.hang_seconds)
            return
        if plan.mode == "crash":
            os._exit(23)
        raise InjectedFault(
            f"injected fault at {plan.point!r}",
            pass_name=context.get("pass_name"),
            details={k: v for k, v in context.items() if k != "pass_name"},
        )


#: Declared fault points: name -> description.  The chaos suite iterates
#: this to prove every point degrades cleanly.
_DECLARED: dict[str, str] = {}

#: Currently armed faults by point name.
_ARMED: dict[str, ArmedFault] = {}


def declare_fault_point(name: str, description: str = "") -> str:
    """Register a fault point name (idempotent); returns the name."""
    _DECLARED.setdefault(name, description)
    return name


def registered_fault_points() -> dict[str, str]:
    """All declared fault points, sorted by name."""
    return dict(sorted(_DECLARED.items()))


def fault_point(name: str, **context: Any) -> None:
    """Production-side hook: fires the armed fault for ``name``, if any.

    Free when nothing is armed.  Unknown names are auto-declared so ad-hoc
    points in user passes still show up in :func:`registered_fault_points`.
    """
    if not _ARMED:
        return
    armed = _ARMED.get(name)
    if armed is not None:
        armed.hit(context)


def arm(plan: FaultPlan) -> ArmedFault:
    """Arm one plan (replacing any previous plan on the same point)."""
    declare_fault_point(plan.point)
    armed = ArmedFault(plan)
    _ARMED[plan.point] = armed
    return armed


def disarm(point: str) -> None:
    """Disarm one point (no-op if not armed)."""
    _ARMED.pop(point, None)


def disarm_all() -> None:
    """Disarm every point."""
    _ARMED.clear()


def active_plans() -> tuple[FaultPlan, ...]:
    """Picklable snapshot of the armed plans (for worker initializers)."""
    return tuple(armed.plan for armed in _ARMED.values())


def install_plans(plans: Iterable[FaultPlan]) -> None:
    """Arm a snapshot of plans inside this process (worker-side)."""
    for plan in plans:
        arm(plan)


@contextmanager
def injected(*plans: FaultPlan) -> Iterator[dict[str, ArmedFault]]:
    """Arm plans for the duration of a with-block; always disarms.

    Yields the armed faults by point name so tests can assert on
    ``hits``/``fires`` counters.
    """
    armed = {plan.point: arm(plan) for plan in plans}
    try:
        yield armed
    finally:
        for point in armed:
            disarm(point)

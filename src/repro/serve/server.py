"""The ``lcmm serve`` daemon: asyncio front door over the compile service.

One process, one event loop, zero dependencies.  The server owns
*admission* — everything that decides whether a request deserves a
worker slot — and delegates execution to
:class:`~repro.serve.service.CompileService`.  A request passes, in
order:

1. **Drain gate** — a draining server sheds new work (503) while
   letting in-flight jobs finish.
2. **Tenant quota** — the per-tenant token bucket
   (:mod:`repro.serve.quota`); an empty bucket sheds with 429 and an
   honest ``Retry-After``.
3. **Bounded queue** — at most ``queue_depth`` requests may wait for
   the ``max_inflight`` execution slots; a full queue sheds with 429
   immediately rather than building an invisible backlog.
4. **Slot wait under deadline** — queue time burns the request's own
   budget; a deadline that expires while queued answers 504 without
   ever touching the pool.

Every response is JSON with a ``request_id``; the last 256 requests
keep a bounded per-request event trace downloadable from
``/v1/requests/{id}/trace``.  ``/metrics`` renders the process metrics
registry in Prometheus text format, ``/healthz`` is pure liveness, and
``/readyz`` goes unready while draining or while the pool's circuit is
open.

The ``serve.accept`` fault point fires once per parsed request, on a
thread (so an armed ``hang`` simulates a slow front door without
freezing the event loop for unrelated connections).
"""

from __future__ import annotations

import asyncio
import itertools
import math
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DeadlineExceeded,
    OverloadedError,
    ReproError,
    http_status,
)
from repro.obs.export import prometheus_text
from repro.obs.metrics import registry
from repro.robustness.inject import declare_fault_point, fault_point
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    response_bytes,
)
from repro.serve.quota import QuotaManager
from repro.serve.service import CompileService, ServiceConfig

__all__ = ["CompileServer", "ServerConfig", "ServerThread"]

declare_fault_point("serve.accept", "one parsed request entering the front door")

#: Requests whose traces are kept for /v1/requests/{id}/trace.
TRACE_HISTORY = 256


@dataclass
class ServerConfig:
    """Front-door tunables (execution tunables live in ServiceConfig).

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; :meth:`CompileServer.start`
            returns the real one).
        max_inflight: Concurrent compute requests actually executing.
        queue_depth: Compute requests allowed to wait for a slot beyond
            ``max_inflight``; the excess is shed with 429.
        quota_rate: Per-tenant requests/second (``None`` disables quotas).
        quota_burst: Per-tenant burst capacity.
        drain_seconds: Grace given to in-flight jobs on shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 4
    queue_depth: int = 16
    quota_rate: float | None = None
    quota_burst: float | None = None
    drain_seconds: float = 10.0


@dataclass
class ServerCounts:
    """Lifetime request accounting for /v1/stats."""

    requests: int = 0
    errors: int = 0
    shed: int = 0
    draining: bool = False

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "draining": self.draining,
        }


@dataclass
class _RequestRecord:
    """Bounded per-request trace, downloadable after the fact."""

    id: str
    method: str
    path: str
    received: float
    tenant: str | None = None
    status: int | None = None
    seconds: float | None = None
    events: list[dict] = field(default_factory=list)

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append(
            {"name": name, "at": time.perf_counter(), **attrs}
        )

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "method": self.method,
            "path": self.path,
            "received": self.received,
            "tenant": self.tenant,
            "status": self.status,
            "seconds": self.seconds,
            "events": self.events,
        }


class CompileServer:
    """HTTP front door over one :class:`CompileService`."""

    def __init__(
        self, service: CompileService, config: ServerConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.quota = QuotaManager(self.config.quota_rate, self.config.quota_burst)
        self.counts = ServerCounts()
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        self._waiting = 0
        self._active = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._ids = itertools.count(1)
        self._recent: OrderedDict[str, _RequestRecord] = OrderedDict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and begin accepting; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def drain(self) -> bool:
        """Stop accepting, let in-flight work finish, close the pool.

        Returns ``True`` when every in-flight request completed within
        ``drain_seconds`` (a clean drain), ``False`` on a forced exit.
        """
        self._draining = True
        self.counts.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        if self._active or self._waiting:
            try:
                await asyncio.wait_for(
                    self._drained.wait(), self.config.drain_seconds
                )
            except asyncio.TimeoutError:
                clean = False
        # Idle keep-alive connections are just parked in read_request;
        # closing their transports sends EOF and lets the handlers exit.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=1.0)
        await self.service.close()
        return clean

    async def run(self) -> bool:
        """Serve until SIGTERM/SIGINT, then drain.  Returns drain cleanliness."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        return await self.drain()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        json_response(
                            exc.status,
                            {"error": {"type": "HttpError", "message": exc.message}},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: Request) -> bytes:
        start = time.perf_counter()
        record = _RequestRecord(
            id=f"r{next(self._ids):06d}",
            method=request.method,
            path=request.path,
            received=time.time(),
        )
        self._remember(record)
        self.counts.requests += 1
        content_type = "application/json"
        headers: dict[str, str] = {}
        try:
            await asyncio.to_thread(fault_point, "serve.accept", path=request.path)
            status, payload, headers, content_type = await self._dispatch(
                request, record
            )
        except HttpError as exc:
            status = exc.status
            payload = {
                "error": {"type": "HttpError", "message": exc.message},
            }
        except ReproError as exc:
            status = http_status(exc)
            payload = {
                "error": {
                    "type": type(exc).__name__,
                    "message": exc.message,
                    "context": exc.context(),
                }
            }
            if isinstance(exc, OverloadedError):
                self.counts.shed += 1
                retry_after = exc.details.get("retry_after")
                headers["Retry-After"] = str(
                    max(1, math.ceil(retry_after)) if retry_after else 1
                )
                self._count("serve.shed", reason=exc.details.get("reason", "unknown"))
        except Exception as exc:  # a bug, still answered in-protocol
            status = 500
            payload = {"error": {"type": type(exc).__name__, "message": str(exc)}}
        record.status = status
        record.seconds = time.perf_counter() - start
        if status >= 400:
            self.counts.errors += 1
        self._count("serve.requests", route=request.path, status=status)
        registry().histogram(
            "serve.request_seconds", "front-door request latency"
        ).observe(record.seconds, route=request.path)
        if content_type != "application/json":
            return response_bytes(
                status,
                payload,
                content_type=content_type,
                headers=headers,
                keep_alive=request.keep_alive and not self._draining,
            )
        if isinstance(payload, dict) and "request_id" not in payload:
            payload["request_id"] = record.id
        return json_response(
            status,
            payload,
            headers=headers,
            keep_alive=request.keep_alive and not self._draining,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, record: _RequestRecord
    ) -> tuple[int, Any, dict, str]:
        path, method = request.path, request.method
        if method == "GET":
            if path == "/healthz":
                return 200, {"status": "ok"}, {}, "application/json"
            if path == "/readyz":
                return self._readyz()
            if path == "/metrics":
                return self._metrics()
            if path == "/v1/stats":
                return (
                    200,
                    {
                        "server": self.counts.as_dict(),
                        "quota": self.quota.snapshot(),
                        "service": self.service.snapshot(),
                    },
                    {},
                    "application/json",
                )
            if path.startswith("/v1/requests/") and path.endswith("/trace"):
                return self._trace(path)
            raise HttpError(404, f"no route {method} {path}")
        if method == "POST":
            if path == "/v1/compile":
                return await self._compute(request, record, "compile")
            if path == "/v1/dse":
                return await self._compute(request, record, "dse")
            raise HttpError(404, f"no route {method} {path}")
        raise HttpError(405, f"method {method} not allowed")

    def _readyz(self) -> tuple[int, Any, dict, str]:
        breaker = self.service.breaker.state
        ready = not self._draining and breaker != "open"
        payload = {"ready": ready, "draining": self._draining, "breaker": breaker}
        return (200 if ready else 503), payload, {}, "application/json"

    def _metrics(self) -> tuple[int, Any, dict, str]:
        reg = registry()
        reg.gauge("serve.inflight", "compute requests holding a slot").set(
            self._active
        )
        reg.gauge("serve.queued", "compute requests waiting for a slot").set(
            self._waiting
        )
        body = prometheus_text(reg.snapshot()).encode()
        return 200, body, {}, "text/plain; version=0.0.4"

    def _trace(self, path: str) -> tuple[int, Any, dict, str]:
        request_id = path[len("/v1/requests/") : -len("/trace")]
        record = self._recent.get(request_id)
        if record is None:
            raise HttpError(404, f"no trace for request {request_id!r}")
        return 200, {"trace": record.as_dict()}, {}, "application/json"

    # ------------------------------------------------------------------
    # Compute admission + execution
    # ------------------------------------------------------------------
    async def _compute(
        self, request: Request, record: _RequestRecord, kind: str
    ) -> tuple[int, Any, dict, str]:
        if self._draining:
            raise OverloadedError(
                "server is draining",
                details={"reason": "draining", "retry_after": 1.0},
            )
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        model = body.get("model")
        if not isinstance(model, str) or not model:
            raise HttpError(400, "'model' (string) is required")
        tenant = str(body.get("tenant") or "default")
        record.tenant = tenant
        deadline_s = body.get(
            "deadline_seconds", self.service.config.default_deadline
        )
        if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
            raise HttpError(400, "'deadline_seconds' must be a positive number")
        deadline_s = min(float(deadline_s), self.service.config.max_deadline)

        allowed, retry_after = self.quota.admit(tenant)
        if not allowed:
            raise OverloadedError(
                "tenant quota exhausted",
                details={
                    "reason": "quota",
                    "tenant": tenant,
                    "retry_after": round(retry_after, 3),
                },
            )
        backlog = self._active + self._waiting
        if backlog >= self.config.max_inflight + self.config.queue_depth:
            raise OverloadedError(
                "request queue full",
                details={
                    "reason": "queue",
                    "retry_after": 1.0,
                    "backlog": backlog,
                    "queue_depth": self.config.queue_depth,
                },
            )
        deadline_epoch = time.time() + deadline_s
        record.event("admitted", kind=kind, deadline_seconds=deadline_s)
        self._waiting += 1
        self._drained.clear()
        try:
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), max(0.0, deadline_epoch - time.time())
                )
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    "deadline expired waiting for a worker slot",
                    details={"checkpoint": "serve.queue"},
                ) from None
        finally:
            self._waiting -= 1
            self._maybe_drained()
        self._active += 1
        record.event("slot-acquired")
        try:
            if kind == "compile":
                payload = await self.service.submit_compile(
                    model,
                    str(body.get("config", "splitting")),
                    body.get("precision"),
                    deadline_epoch,
                )
            else:
                payload = await self.service.submit_dse(
                    model,
                    body.get("precision"),
                    float(body.get("budget_mb", 2.0)),
                    int(body.get("top", 5)),
                    deadline_epoch,
                )
        finally:
            self._active -= 1
            self._slots.release()
            self._maybe_drained()
            record.event("finished")
        payload["request_id"] = record.id
        payload["deadline_seconds"] = deadline_s
        return 200, payload, {}, "application/json"

    def _maybe_drained(self) -> None:
        if self._active == 0 and self._waiting == 0:
            self._drained.set()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _remember(self, record: _RequestRecord) -> None:
        self._recent[record.id] = record
        while len(self._recent) > TRACE_HISTORY:
            self._recent.popitem(last=False)

    @staticmethod
    def _count(name: str, **labels: Any) -> None:
        registry().counter(name).inc(**labels)


class ServerThread:
    """A daemon running on a private event loop in a thread.

    The in-process harness for tests and benchmarks: start, hit
    ``http://127.0.0.1:{port}``, stop (which drains).  Startup errors
    surface from :meth:`start` rather than dying silently in the thread.
    """

    def __init__(
        self,
        service_config: ServiceConfig | None = None,
        server_config: ServerConfig | None = None,
    ) -> None:
        self.service_config = service_config or ServiceConfig(inline=True, workers=2)
        self.server_config = server_config or ServerConfig()
        self.host: str | None = None
        self.port: int | None = None
        self.clean_drain: bool | None = None
        self.server: CompileServer | None = None
        self.error: BaseException | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="lcmm-serve", daemon=True
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self.error is not None:
            raise RuntimeError(f"serve thread failed to start: {self.error}")
        return self

    def stop(self, timeout: float = 30.0) -> bool:
        """Trigger a drain and join; returns drain cleanliness."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        return bool(self.clean_drain)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # startup failures -> start()
            self.error = exc
        finally:
            self._ready.set()
            loop.close()

    async def _main(self) -> None:
        service = CompileService(self.service_config)
        self.server = CompileServer(service, self.server_config)
        self._stop = asyncio.Event()
        try:
            self.host, self.port = await self.server.start()
        except OSError as exc:
            self.error = exc
            return
        self._ready.set()
        await self._stop.wait()
        self.clean_drain = await self.server.drain()

"""The compile service: single-flight, deadlines, retries, breaker.

This is the layer between the HTTP front door (:mod:`repro.serve.server`)
and the worker pools (:mod:`repro.serve.jobs`).  Its job is to make one
promise: **every request either returns an honestly-labeled result or a
structured taxonomy error, in bounded time** — no silent degradation, no
unbounded waits, no wedged event loop.

Mechanisms, in the order a request meets them:

* **Warm path** — the content key is derived first and looked up in the
  shared :class:`~repro.cache.store.CompilationCache` from the server
  process.  A hit returns without touching the pool, the breaker or the
  retry machinery: a broken pool is no reason to refuse a result that
  is already on disk.
* **Single-flight** — concurrent misses on the same key coalesce onto
  one pool job; followers await the leader's future under their own
  deadlines and are labeled ``"coalesced": true``.
* **Deadline** — the request's wall-clock deadline travels into the
  worker (cooperative checks at pass boundaries) *and* bounds the
  parent-side await with a small grace.  The worker raising
  :class:`~repro.errors.DeadlineExceeded` is the request's fault and
  does not count against the pool; the parent-side timeout firing means
  the worker blew past its own deadline — a wedged worker — so it trips
  the breaker and the executor is refreshed.
* **Retries** — transient :class:`~repro.errors.WorkerError` failures
  (a crashed worker, a broken executor) are retried with jittered
  exponential backoff on a refreshed pool, within the deadline.
* **Circuit breaker** — repeated pool failures open the circuit;
  submissions are then shed as :class:`~repro.errors.OverloadedError`
  (HTTP 429 + ``Retry-After``) until a half-open probe succeeds.

Taxonomy errors raised by the job itself (unknown model, infeasible
budget, an injected pass fault that exhausted the fallback chain)
propagate untouched — they are answers, not pool failures.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.errors import (
    DeadlineExceeded,
    OverloadedError,
    ReproError,
    WorkerError,
)
from repro.obs.metrics import registry
from repro.serve.breaker import CircuitBreaker
from repro.serve.jobs import (
    CompilePool,
    InlineWorkers,
    job_key,
    run_compile_job,
    run_dse_job,
)

__all__ = ["CompileService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Tunables of one :class:`CompileService`.

    Attributes:
        cache_dir: Shared artifact cache directory (``None`` = no cache;
            every request compiles).
        workers: Worker count for the pool.
        inline: Run jobs on threads in-process instead of a process
            pool (fast tests/benchmarks; no crash isolation).
        precision: Default arithmetic precision for requests that omit it.
        default_deadline: Seconds granted to a request that names none.
        max_deadline: Cap on client-requested deadlines.
        retries: Transient worker-failure retries per request.
        retry_base: First backoff delay, seconds (doubles per attempt,
            jittered to 0.5x-1.5x).
        retry_cap: Upper bound on one backoff delay.
        breaker_threshold: Consecutive pool failures that open the circuit.
        breaker_reset: Circuit cool-down seconds before half-open probing.
        deadline_grace: Parent-side slack past the worker's own deadline
            before the await gives up and declares the worker wedged.
    """

    cache_dir: str | None = None
    workers: int = 2
    inline: bool = False
    precision: str = "int8"
    default_deadline: float = 60.0
    max_deadline: float = 600.0
    retries: int = 2
    retry_base: float = 0.05
    retry_cap: float = 2.0
    breaker_threshold: int = 5
    breaker_reset: float = 10.0
    deadline_grace: float = 0.5


class CompileService:
    """Async orchestration over one worker pool (one event loop only)."""

    def __init__(self, config: ServiceConfig, rng: random.Random | None = None) -> None:
        from repro.cache.store import CompilationCache

        self.config = config
        self.pool = (
            InlineWorkers(config.workers)
            if config.inline
            else CompilePool(config.workers)
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_seconds=config.breaker_reset,
        )
        self.cache = (
            CompilationCache(config.cache_dir) if config.cache_dir is not None else None
        )
        self._inflight: dict[str, asyncio.Future] = {}
        self._rng = rng or random.Random(0x5E12E)

    # ------------------------------------------------------------------
    # Public entry points (called from the event loop)
    # ------------------------------------------------------------------
    async def submit_compile(
        self,
        model: str,
        config_label: str,
        precision: str | None = None,
        deadline_epoch: float | None = None,
    ) -> dict:
        """One compile request end to end (warm path, coalescing, pool)."""
        precision = precision or self.config.precision
        key = await asyncio.to_thread(job_key, model, config_label, precision)
        if self.cache is not None:
            warm = await asyncio.to_thread(
                self._warm_lookup, key, model, config_label, precision
            )
            if warm is not None:
                self._count("serve.warm_hits")
                return warm
        return await self._single_flight(
            key,
            deadline_epoch,
            lambda: self._execute(
                run_compile_job,
                (model, config_label, precision, self.config.cache_dir, deadline_epoch),
                deadline_epoch,
            ),
        )

    async def submit_dse(
        self,
        model: str,
        precision: str | None = None,
        budget_mb: float = 2.0,
        top: int = 5,
        deadline_epoch: float | None = None,
    ) -> dict:
        """One DSE sweep request (single-flight on its full parameter set)."""
        precision = precision or self.config.precision
        from repro.models.zoo import get_model

        await asyncio.to_thread(get_model, model)  # validate before queueing
        key = f"dse:{model}:{precision}:{budget_mb}:{top}"
        return await self._single_flight(
            key,
            deadline_epoch,
            lambda: self._execute(
                run_dse_job,
                (model, precision, budget_mb, top, self.config.cache_dir, deadline_epoch),
                deadline_epoch,
            ),
        )

    async def close(self) -> None:
        """Shut the pool down (idempotent)."""
        await asyncio.to_thread(self.pool.close)

    def snapshot(self) -> dict:
        """Service state for ``/v1/stats``."""
        return {
            "inflight_keys": len(self._inflight),
            "pool": {
                "kind": type(self.pool).__name__,
                "workers": self.pool.workers,
                "warm": self.pool.is_warm(),
                "generation": self.pool.generation,
                "init_seconds_total": self.pool.init_seconds_total,
            },
            "breaker": self.breaker.snapshot(),
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
        }

    # ------------------------------------------------------------------
    # Warm path (runs in a thread)
    # ------------------------------------------------------------------
    def _warm_lookup(
        self, key: str, model: str, config_label: str, precision: str
    ) -> dict | None:
        from repro.fingerprint import fingerprint

        start = time.perf_counter()
        result = self.cache.get(key)
        if result is None:
            return None
        return {
            "model": model,
            "config": config_label,
            "precision": precision,
            "compile_key": key,
            "cache_hit": True,
            "latency": result.latency,
            "degradation_level": result.degradation_level,
            "degradation_path": list(result.degradation_path),
            "fingerprint": fingerprint(result),
            "seconds": time.perf_counter() - start,
        }

    # ------------------------------------------------------------------
    # Single-flight
    # ------------------------------------------------------------------
    async def _single_flight(
        self,
        key: str,
        deadline_epoch: float | None,
        thunk: Callable[[], Awaitable[dict]],
    ) -> dict:
        existing = self._inflight.get(key)
        if existing is not None:
            self._count("serve.coalesced")
            payload = dict(await self._await_shared(existing, deadline_epoch))
            payload["coalesced"] = True
            return payload
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            payload = await thunk()
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # leader re-raises; mark retrieved here
            raise
        else:
            if not future.done():
                future.set_result(payload)
            return payload
        finally:
            self._inflight.pop(key, None)

    async def _await_shared(
        self, future: asyncio.Future, deadline_epoch: float | None
    ) -> dict:
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self._timeout_for(deadline_epoch)
            )
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                "deadline expired awaiting the coalesced leader",
                details={"checkpoint": "serve.coalesce"},
            ) from None

    # ------------------------------------------------------------------
    # Pool execution: breaker -> submit -> retry
    # ------------------------------------------------------------------
    async def _execute(
        self, fn: Callable, args: tuple, deadline_epoch: float | None
    ) -> dict:
        if not self.breaker.allow():
            retry_after = self.breaker.retry_after()
            raise OverloadedError(
                "compile pool circuit open",
                details={"reason": "breaker", "retry_after": round(retry_after, 3)},
            )
        attempt = 0
        while True:
            try:
                payload = await self._submit_once(fn, args, deadline_epoch)
            except DeadlineExceeded:
                raise  # breaker accounting already settled in _submit_once
            except WorkerError:
                self.breaker.record_failure()
                await asyncio.to_thread(self.pool.refresh)
                if attempt >= self.config.retries or self._expired(deadline_epoch):
                    raise
                delay = min(
                    self.config.retry_cap, self.config.retry_base * (2**attempt)
                ) * (0.5 + self._rng.random())
                attempt += 1
                self._count("serve.retries")
                await asyncio.sleep(delay)
            else:
                self.breaker.record_success()
                if payload.get("degradation_level"):
                    self._count("serve.degraded_results")
                return payload

    async def _submit_once(
        self, fn: Callable, args: tuple, deadline_epoch: float | None
    ) -> dict:
        try:
            executor, _ = await asyncio.to_thread(self.pool.ensure)
        except ReproError:
            raise
        except (OSError, RuntimeError) as exc:
            raise WorkerError(
                f"worker pool unavailable: {exc}", details={"phase": "ensure"}
            ) from exc
        future = executor.submit(fn, *args)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future), self._timeout_for(deadline_epoch)
            )
        except asyncio.TimeoutError:
            # The worker blew past its own cooperative deadline plus
            # grace: treat it as wedged.  Refreshing strands the stuck
            # job with the old executor instead of the slot.
            future.cancel()
            self.breaker.record_failure()
            await asyncio.to_thread(self.pool.refresh)
            raise DeadlineExceeded(
                "job ran past the request deadline",
                details={
                    "checkpoint": "serve.await",
                    "grace": self.config.deadline_grace,
                },
            ) from None
        except BrokenExecutor as exc:
            raise WorkerError(
                f"worker pool broke mid-job: {exc}", details={"phase": "run"}
            ) from exc
        except asyncio.CancelledError:
            if future.cancelled():
                # The concurrent future was cancelled under us (pool
                # shutdown mid-flight) — a pool failure, not a task
                # cancellation.
                raise WorkerError(
                    "job cancelled by pool shutdown", details={"phase": "run"}
                ) from None
            raise

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _timeout_for(self, deadline_epoch: float | None) -> float | None:
        if deadline_epoch is None:
            return None
        return max(0.0, deadline_epoch - time.time()) + self.config.deadline_grace

    @staticmethod
    def _expired(deadline_epoch: float | None) -> bool:
        return deadline_epoch is not None and time.time() >= deadline_epoch

    @staticmethod
    def _count(name: str, **labels: Any) -> None:
        registry().counter(name).inc(**labels)

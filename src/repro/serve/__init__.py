"""The ``lcmm serve`` compilation service.

A zero-dependency daemon (stdlib asyncio, hand-rolled HTTP/1.1) that
turns the compiler into a shared front door: compile and DSE jobs
arrive as JSON, identical in-flight requests coalesce onto one job,
warm artifacts come straight from the content-addressed
:class:`~repro.cache.store.CompilationCache`, and misses run on a
bounded worker pool under per-request deadlines.

The module split mirrors the request's journey:

* :mod:`repro.serve.http` — wire format (parsing, limits, responses).
* :mod:`repro.serve.server` — admission: drain gate, tenant quotas,
  bounded queue, slot wait; plus the read-only endpoints
  (``/healthz``, ``/readyz``, ``/metrics``, ``/v1/stats``, traces).
* :mod:`repro.serve.service` — execution: warm path, single-flight,
  deadline propagation, retries, circuit breaker.
* :mod:`repro.serve.jobs` — the picklable job bodies and worker pools.
* :mod:`repro.serve.breaker` / :mod:`repro.serve.quota` — the two
  self-contained protection primitives.

Operational semantics (deadlines, shedding, breaker states, the full
API) are documented in ``docs/serving.md``.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.quota import QuotaManager, TokenBucket
from repro.serve.server import CompileServer, ServerConfig, ServerThread
from repro.serve.service import CompileService, ServiceConfig

__all__ = [
    "CircuitBreaker",
    "CompileServer",
    "CompileService",
    "QuotaManager",
    "ServerConfig",
    "ServerThread",
    "ServiceConfig",
    "TokenBucket",
]

"""Per-tenant token-bucket quotas for the serving front door.

A shared compile daemon has one scarce resource — worker slots — and one
failure mode worth preventing at admission time: a single chatty client
starving everyone else.  Each tenant (the ``tenant`` field of a request,
defaulting to ``"default"``) gets a token bucket refilled at
``rate`` requests/second up to ``burst`` capacity; an empty bucket sheds
the request with 429 and an honest ``Retry-After``.

The bucket map is LRU-bounded so an adversarial stream of fresh tenant
names cannot grow memory without bound — the oldest idle bucket is
evicted, which at worst re-grants an evicted tenant one fresh burst.

Clocks are injectable; tests step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.errors import ConfigError

__all__ = ["QuotaManager", "TokenBucket"]


class TokenBucket:
    """One tenant's budget: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigError(
                "token bucket rate and burst must be positive",
                details={"rate": rate, "burst": burst},
            )
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; ``False`` sheds the request."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` would be available (0 if now)."""
        self._refill()
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)


class QuotaManager:
    """LRU-bounded map of per-tenant buckets (thread-safe).

    Args:
        rate: Tokens/second per tenant; ``None`` disables quotas
            entirely (every ``admit`` allows).
        burst: Bucket capacity per tenant (defaults to ``max(rate, 1)``).
        max_tenants: Bound on tracked buckets.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        max_tenants: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_tenants < 1:
            raise ConfigError(
                "max_tenants must be at least 1", details={"max_tenants": max_tenants}
            )
        self.rate = rate
        self.burst = burst if burst is not None else (max(rate, 1.0) if rate else 1.0)
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def admit(self, tenant: str) -> tuple[bool, float]:
        """``(allowed, retry_after_seconds)`` for one request by ``tenant``."""
        if self.rate is None:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
                while len(self._buckets) > self.max_tenants:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(tenant)
            if bucket.try_acquire():
                return True, 0.0
            return False, bucket.retry_after()

    def snapshot(self) -> dict:
        """State for /v1/stats."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst if self.enabled else None,
                "tenants": len(self._buckets),
            }

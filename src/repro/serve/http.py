"""Minimal HTTP/1.1 on asyncio streams — the daemon's only wire format.

Hand-rolled on purpose: the project ships with zero runtime
dependencies, and the compile service needs exactly one verb pair
(``GET``/``POST``), JSON bodies, keep-alive, and hard input limits.
``http.server`` is thread-per-connection and ``aiohttp`` is a
dependency, so the front door speaks the protocol itself.

Hardening rules (the front door is the trust boundary):

* The request head (request line + headers) is capped at
  :data:`MAX_HEADER_BYTES`; a client that streams an unbounded header
  block is rejected with 431 before anything is buffered past the cap.
* Bodies are capped at :data:`MAX_BODY_BYTES` (413) and must be
  ``Content-Length``-framed; ``Transfer-Encoding: chunked`` is refused
  with 501 rather than half-implemented.
* A malformed request line or header never raises past
  :class:`HttpError` — the connection handler turns it into a labeled
  4xx and closes, so no client input can wedge the accept loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "json_response",
    "read_request",
    "response_bytes",
]

#: Cap on the request line + headers, bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Cap on a request body, bytes.
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level rejection: carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request.

    Attributes:
        method: Upper-cased verb.
        path: Decoded path, query string stripped.
        query: Decoded query parameters (last value wins).
        headers: Headers with lower-cased names.
        body: Raw body bytes (``b""`` when none).
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON.

        Raises:
            HttpError: 400 on an empty or undecodable body.
        """
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """The raw head up to the blank line, or ``None`` on clean EOF."""
    head = b""
    while b"\r\n\r\n" not in head:
        if len(head) > MAX_HEADER_BYTES:
            raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")
        chunk = await reader.read(4096)
        if not chunk:
            if head.strip():
                raise HttpError(400, "connection closed mid-request")
            return None
        head += chunk
    if head.index(b"\r\n\r\n") > MAX_HEADER_BYTES:
        raise HttpError(431, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    return head


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean connection end.

    Raises:
        HttpError: On any malformed or over-limit input (the caller
            answers with the carried status and closes).
    """
    head = await _read_head(reader)
    if head is None:
        return None
    head, _, spill = head.partition(b"\r\n\r\n")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise HttpError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise HttpError(400, f"invalid Content-Length {raw_length!r}") from exc
    if length < 0:
        raise HttpError(400, f"invalid Content-Length {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = spill
    while len(body) < length:
        chunk = await reader.read(length - len(body))
        if not chunk:
            raise HttpError(400, "connection closed mid-body")
        body += chunk
    parts = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query={k: v for k, v in parse_qsl(parts.query)},
        headers=headers,
        body=body[:length],
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    *,
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize a JSON response (sorted keys, trailing newline)."""
    body = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode()
    return response_bytes(status, body, headers=headers, keep_alive=keep_alive)

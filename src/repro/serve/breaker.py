"""Circuit breaker around the compile pool.

When the pool starts failing repeatedly — crashed workers, warm-up
timeouts, a machine that cannot spawn processes — retrying every
incoming request just queues more work behind a dead executor and turns
one fault into a full-queue outage.  The breaker converts that failure
mode into fast, honest shedding:

* **closed** — normal operation; consecutive failures are counted.
* **open** — after :attr:`failure_threshold` consecutive failures the
  breaker rejects submissions outright for :attr:`reset_seconds`
  (callers answer 429 with ``Retry-After``), giving the pool time to
  rebuild without a thundering herd.
* **half-open** — once the cool-down elapses, up to
  :attr:`half_open_probes` requests are let through as probes.  One
  success closes the circuit; one failure re-opens it and restarts the
  cool-down.

Warm cache hits never consult the breaker — a broken pool is no reason
to refuse results that are already on disk.

The clock is injectable so the chaos tests can step time instead of
sleeping through cool-downs.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing (thread-safe).

    Args:
        failure_threshold: Consecutive failures that open the circuit.
        reset_seconds: Cool-down before half-open probing starts.
        half_open_probes: Concurrent probes allowed while half-open.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        #: Times the circuit transitioned to open (for /v1/stats).
        self.opens = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """Current state, applying the open -> half-open timeout (locked)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probes = 0
        return self._state

    def allow(self) -> bool:
        """Whether a new submission may proceed right now.

        In half-open state each ``True`` consumes one probe slot; the
        caller must follow up with :meth:`record_success` or
        :meth:`record_failure`.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        """A submission completed; half-open success closes the circuit."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probes = 0

    def record_failure(self) -> None:
        """A submission failed; enough of them (re-)open the circuit."""
        with self._lock:
            state = self._effective_state()
            if state == HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probes = 0
        self.opens += 1

    def retry_after(self) -> float:
        """Seconds until the circuit would next admit a probe (>= 0)."""
        with self._lock:
            if self._effective_state() != OPEN:
                return 0.0
            return max(0.0, self.reset_seconds - (self._clock() - self._opened_at))

    def snapshot(self) -> dict:
        """State for /v1/stats."""
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._failures,
                "opens": self.opens,
            }

"""Compile/DSE job bodies and the worker pools that run them.

Everything a job needs crosses the process boundary as plain picklable
arguments, and everything it returns is a JSON-ready dict — the service
layer never ships live objects to or from workers.

Key compatibility is deliberate: a served compile derives the same
content key as ``batch_compile`` and ``lcmm run --cache`` (via
:func:`repro.cache.batch._job_key`), so a daemon pointed at a
pre-warmed batch cache directory answers from it immediately, and
artifacts the daemon writes warm later batch runs.

Two pools, one lifecycle (:class:`repro.perf.pool.ResilientPool`):

* :class:`CompilePool` — process workers.  Survives worker crashes (the
  service refreshes it), supports the ``"crash"`` chaos mode, isolates
  compile bugs from the event loop.
* :class:`InlineWorkers` — thread workers in the server process.  No
  spawn cost, so tests and benchmarks exercise the full admission /
  single-flight / deadline machinery in milliseconds.  ``"crash"``
  faults must not be armed inline — ``os._exit`` would take the server
  down with the job.

The ``serve.worker`` fault point fires inside the job body (worker
side), after the request deadline is installed: ``raise`` exercises the
structured-error path, ``hang`` the cooperative deadline, ``crash`` the
broken-pool recovery.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable

from repro.perf.pool import ResilientPool
from repro.robustness import inject
from repro.robustness.deadline import check_deadline, deadline_scope
from repro.robustness.inject import declare_fault_point, fault_point, install_plans

__all__ = [
    "CompilePool",
    "InlineWorkers",
    "job_key",
    "run_compile_job",
    "run_dse_job",
]

declare_fault_point("serve.worker", "one compile/DSE job body in a serve worker")


def job_key(model: str, config: str, precision: str) -> str:
    """The content key a compile job will use (validates its inputs).

    Raises:
        repro.errors.ModelNotFoundError: Unknown model.
        repro.errors.ConfigError: Unknown configuration label.
    """
    from repro.cache.batch import _job_key
    from repro.models.zoo import get_model

    get_model(model)  # raises ModelNotFoundError before any queueing
    return _job_key(model, config, precision)


def run_compile_job(
    model: str,
    config: str,
    precision: str,
    cache_dir: str | None,
    deadline_epoch: float | None = None,
) -> dict:
    """Compile one (model, configuration) pair under a request deadline.

    Top-level so process pools can pickle it.  Mirrors
    :func:`repro.cache.batch._compile_job` — shared cache directory,
    identical content keys, only clean (level-0) results written back —
    plus the serving concerns: the caller's wall-clock deadline is
    re-anchored onto this process and checked at every pass boundary,
    and the ``serve.worker`` fault point runs under it.

    Returns a JSON-ready payload including ``degradation_level`` /
    ``degradation_path`` — a degraded result is always labeled, never
    silently served.
    """
    from repro.cache.batch import _design, _job_key, standard_options
    from repro.cache.store import CompilationCache
    from repro.fingerprint import fingerprint
    from repro.lcmm.framework import run_lcmm, umm_only_result

    start = time.perf_counter()
    with deadline_scope(None, epoch=deadline_epoch):
        fault_point("serve.worker", model=model, config=config)
        check_deadline("serve.worker")
        key = _job_key(model, config, precision)
        cache = CompilationCache(cache_dir) if cache_dir is not None else None
        result = cache.get(key) if cache is not None else None
        hit = result is not None
        if result is None:
            graph, accel = _design(model, precision)
            options = standard_options(config)
            if options is None:
                result = umm_only_result(graph, accel)
                if cache is not None:
                    cache.put(key, result)
            else:
                result = run_lcmm(graph, accel, options=options)
                if cache is not None and result.degradation_level == 0:
                    cache.put(key, result)
    return {
        "model": model,
        "config": config,
        "precision": precision,
        "compile_key": key,
        "cache_hit": hit,
        "latency": result.latency,
        "degradation_level": result.degradation_level,
        "degradation_path": list(result.degradation_path),
        "fingerprint": fingerprint(result),
        "seconds": time.perf_counter() - start,
    }


def run_dse_job(
    model: str,
    precision: str,
    budget_mb: float,
    top: int,
    cache_dir: str | None,
    deadline_epoch: float | None = None,
) -> dict:
    """One serial tile-DSE sweep under a request deadline.

    The sweep runs ``workers=1`` inside this worker — the daemon's
    parallelism lives at the request level, and nesting a process pool
    inside a pool worker would not survive the spawn limits anyway.
    Sweep-score warm-starts come from the shared cache directory.
    """
    from repro.analysis.experiments import BENCHMARKS, reference_design
    from repro.cache.store import CompilationCache
    from repro.hw.precision import precision_by_name
    from repro.models.zoo import get_model
    from repro.perf.dse import explore_designs

    start = time.perf_counter()
    with deadline_scope(None, epoch=deadline_epoch):
        fault_point("serve.worker", model=model, config="dse")
        check_deadline("serve.worker")
        graph = get_model(model)
        base = reference_design(
            model if model in BENCHMARKS else "resnet152",
            precision_by_name(precision),
            "lcmm",
        )
        cache = CompilationCache(cache_dir) if cache_dir is not None else None
        points = explore_designs(
            graph, base, int(budget_mb * 2**20), cache=cache
        )
    return {
        "model": model,
        "precision": precision,
        "budget_mb": budget_mb,
        "feasible_points": len(points),
        "points": [
            {
                "tile": str(point.accel.tile),
                "umm_latency": point.umm_latency,
                "tile_buffer_bytes": point.tile_buffer_bytes,
            }
            for point in points[:top]
        ],
        "seconds": time.perf_counter() - start,
    }


def _serve_worker_init(plans: tuple) -> None:
    """Process-pool initializer: arm exactly the pool's fault plans.

    Forked workers inherit whatever was armed in the server process at
    fork time; disarming first makes the pool's captured plan set
    authoritative, so clearing ``CompilePool.plans`` between
    generations genuinely clears the fault.
    """
    inject.disarm_all()
    install_plans(plans)


class CompilePool(ResilientPool):
    """Process workers for serve jobs (crash-isolated from the loop).

    Fault plans armed in the server process at construction time follow
    the jobs into every worker generation, so a chaos test arming
    ``serve.worker`` before the pool spins up sees it fire worker-side.
    """

    def __init__(self, workers: int, plans: Iterable | None = None) -> None:
        super().__init__(workers)
        self.plans = tuple(plans) if plans is not None else inject.active_plans()

    def _build_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_serve_worker_init,
            initargs=(self.plans,),
        )


class InlineWorkers(ResilientPool):
    """Thread workers in the server process (tests and benchmarks).

    Jobs see whatever fault plans are armed in-process; ``"crash"``
    plans must not be armed in this mode.
    """

    def _build_executor(self) -> ThreadPoolExecutor:  # type: ignore[override]
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-inline"
        )

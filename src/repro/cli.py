"""Command-line interface: regenerate the paper's experiments.

Installed as the ``lcmm`` console script::

    lcmm table1              # UMM vs LCMM across the benchmark matrix
    lcmm table2              # on-chip memory utilisation + POL
    lcmm table3              # comparison with published designs
    lcmm fig2a               # Inception-v4 roofline characterisation
    lcmm fig2b --stride 16   # per-block allocation design space
    lcmm fig8                # GoogLeNet per-block breakdown
    lcmm run resnet152 --precision int16   # one design pair in detail
    lcmm run googlenet --explain           # executed pipeline + diagnostics
    lcmm passes              # registered compilation passes
    lcmm sweep googlenet     # speedup vs on-chip memory budget
    lcmm simulate googlenet  # event-driven timeline (Gantt)
    lcmm export resnet50 -o alloc.json     # allocation report for codegen
    lcmm doublebuffer        # legacy double-buffer baseline on linear nets
    lcmm batch resnet152 --images 16       # steady-state throughput
    lcmm pipeline resnet152 --devices 4 --link-gbps 12.5   # multi-die chain
    lcmm run googlenet --trace trace.json  # Chrome trace of the compilation
    lcmm stats googlenet     # span/metric profile of one compilation
    lcmm run googlenet --cache .lcmm-cache # content-addressed result cache
    lcmm batch-compile --cache .lcmm-cache --workers 4   # precompile the zoo
    lcmm serve --cache .lcmm-cache --workers 4           # compilation daemon

Exit codes follow the error taxonomy (see the README table): 0 success,
1 internal failure, 2 user/configuration error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.design_space import enumerate_design_space
from repro.analysis.experiments import (
    BENCHMARKS,
    reference_design,
    run_comparison,
    run_fig2a,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.analysis.metrics import average_speedup
from repro.analysis.report import format_table
from repro.errors import ReproError, exit_code
from repro.hw.precision import precision_by_name
from repro.ir.graph import ComputationGraph
from repro.models.zoo import get_model, list_models


def _load_model(name: str) -> ComputationGraph:
    """Build and structurally validate a model at the CLI boundary.

    Unknown names and malformed graphs surface as :class:`ReproError`
    subclasses, which :func:`main` turns into a one-line message and a
    non-zero exit instead of a traceback.
    """
    graph = get_model(name)
    graph.validate()
    return graph


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = run_table1()
    print(
        format_table(
            ("Benchmark", "Prec", "Design", "Latency(ms)", "Tops", "MHz", "DSP", "SRAM", "Speedup"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.latency_ms:.3f}",
                    f"{r.tops:.3f}",
                    int(r.frequency_mhz),
                    f"{r.dsp_utilization:.0%}",
                    f"{r.sram_utilization:.0%}",
                    f"{r.speedup:.2f}",
                )
                for r in rows
            ],
        )
    )
    speedups = [r.speedup for r in rows if r.design == "LCMM"]
    print(f"\nAverage speedup: {average_speedup(speedups):.2f}x (paper: 1.36x)")


def _cmd_table2(args: argparse.Namespace) -> None:
    rows = run_table2()
    print(
        format_table(
            ("Benchmark", "Prec", "Design", "BRAM", "URAM", "POL"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.bram_utilization:.0%}",
                    f"{r.uram_utilization:.0%}",
                    f"{r.percentage_onchip_layers:.0%}",
                )
                for r in rows
            ],
        )
    )


def _cmd_table3(args: argparse.Namespace) -> None:
    rows = run_table3()
    print(
        format_table(
            ("Design", "Model", "MHz", "Tops", "Latency(ms)", "Source"),
            [
                (
                    r.design,
                    r.dnn_model,
                    int(r.frequency_mhz),
                    f"{r.throughput_tops:.3f}",
                    f"{r.latency_ms:.2f}",
                    "published" if r.published else "measured",
                )
                for r in rows
            ],
        )
    )


def _cmd_fig2a(args: argparse.Namespace) -> None:
    roofline = run_fig2a(precision_by_name(args.precision))
    bound, total = roofline.memory_bound_count(convs_only=True)
    print(f"Ridge point: {roofline.ridge_point():.1f} ops/byte")
    print(f"Memory-bound conv layers: {bound}/{total} ({bound / total:.0%})")
    if args.points:
        print(
            format_table(
                ("Layer", "OI(ops/B)", "Attainable(Tops)", "BW need(GB/s)", "Bound"),
                [
                    (
                        p.node,
                        f"{p.operation_intensity:.1f}",
                        f"{p.attainable_ops / 1e12:.3f}",
                        f"{p.bandwidth_requirement / 1e9:.1f}",
                        "memory" if p.memory_bound else "compute",
                    )
                    for p in roofline.points(convs_only=True)
                ],
            )
        )


def _cmd_fig2b(args: argparse.Namespace) -> None:
    graph = get_model("inception_v4")
    accel = reference_design("inception_v4", precision_by_name(args.precision), "lcmm")
    points = enumerate_design_space(graph, accel, stride=args.stride)
    best = max(points, key=lambda p: p.tops)
    print(f"Evaluated {len(points)} allocation points")
    print(f"Best: {best.tops:.3f} Tops at {best.onchip_bytes / 2**20:.1f} MB on-chip")
    print(
        "Pareto sample (memory MB -> best Tops at or under it):"
    )
    points.sort(key=lambda p: p.onchip_bytes)
    best_so_far = 0.0
    shown = 0
    for p in points:
        if p.tops > best_so_far:
            best_so_far = p.tops
            print(f"  {p.onchip_bytes / 2**20:8.1f} MB  {p.tops:.3f} Tops")
            shown += 1
            if shown >= 20:
                break


def _cmd_fig8(args: argparse.Namespace) -> None:
    series = run_fig8()
    headers = ("Design",) + series[0].blocks
    rows = [
        (s.label,) + tuple(f"{v:.2f}" for v in s.tops) for s in series
    ]
    print(format_table(headers, rows))


def _traced(trace_path, body) -> None:
    """Run ``body`` under tracing when ``--trace`` was given.

    Dumps the run's spans plus a metrics snapshot as a Chrome trace JSON
    (openable in ``chrome://tracing`` or https://ui.perfetto.dev).
    """
    from repro import obs

    if not trace_path:
        body()
        return
    obs.reset_registry()
    with obs.tracing("main") as tracer:
        body()
    count = obs.write_chrome_trace(
        trace_path, tracer, metrics=obs.registry().snapshot()
    )
    print(f"\nWrote Chrome trace ({count} spans) to {trace_path}")


def _open_cache(path):
    """Build a :class:`CompilationCache` for ``--cache PATH`` (None if unset)."""
    if not path:
        return None
    from repro.cache import CompilationCache

    return CompilationCache(path)


def _cmd_run(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _run_body(args))


def _run_body(args: argparse.Namespace) -> None:
    cache = _open_cache(args.cache)
    options = None
    if args.fuse or args.schedule_transfers:
        from repro.lcmm.options import LCMMOptions

        options = LCMMOptions(
            fuse_layers=args.fuse, transfer_schedule=args.schedule_transfers
        )
    cmp = run_comparison(
        args.model,
        precision_by_name(args.precision),
        options=options,
        strict=args.strict,
        fallback=not args.no_fallback,
        cache=cache,
    )
    print(f"Model:      {cmp.model_name} ({args.precision})")
    print(f"UMM:        {cmp.umm.latency * 1e3:.3f} ms  ({cmp.umm.tops:.3f} Tops)")
    print(f"LCMM:       {cmp.lcmm.latency * 1e3:.3f} ms  ({cmp.lcmm.tops:.3f} Tops)")
    print(f"Speedup:    {cmp.speedup:.2f}x")
    print(f"On-chip tensors: {len(cmp.lcmm.onchip_tensors)}")
    print(f"Physical buffers: {len(cmp.lcmm.physical_buffers)}")
    print(f"SRAM: {cmp.lcmm.sram_utilization:.0%}  "
          f"(URAM {cmp.lcmm.sram_usage.uram_utilization:.0%}, "
          f"BRAM {cmp.lcmm.sram_usage.bram_utilization:.0%})")
    print(f"POL:  {cmp.lcmm.percentage_onchip_layers(cmp.lcmm_model):.0%}")
    if cmp.lcmm.fused_edges:
        shortcuts = sum(1 for e in cmp.lcmm.fused_edges if e.shortcut)
        saved = sum(e.bytes_saved for e in cmp.lcmm.fused_edges)
        print(
            f"Fused edges: {len(cmp.lcmm.fused_edges)} "
            f"({shortcuts} shortcut-aware, {saved / 1e6:.2f} MB DDR elided)"
        )
    if cmp.lcmm.transfer_timeline is not None:
        tl = cmp.lcmm.transfer_timeline
        print(
            f"Transfer schedule: {len(tl.records)} DMA streams, "
            f"{tl.improvement * 1e3:.3f} ms hidden by prefetch windows"
        )
    if cache is not None:
        print(f"Cache: {cache.stats.hits} hits, {cache.stats.misses} misses "
              f"({args.cache})")
    if args.explain:
        result = cmp.lcmm
        print(f"\nPipeline: {result.pipeline_description}")
        for name, seconds in result.pass_timings:
            print(f"  {name:18s} {seconds * 1e3:9.3f} ms")
        if result.degradation_level:
            path = " -> ".join(result.degradation_path) or "-"
            print(
                f"Degradation: level {result.degradation_level} "
                f"(failed attempts: {path})"
            )
        else:
            print("Degradation: none (requested pipeline succeeded)")
        recovery = [
            d for d in result.diagnostics
            if d.category in ("pass-failed", "degraded")
        ]
        if recovery:
            print(f"Recovery events ({len(recovery)}):")
            for diag in recovery:
                print(f"  {diag}")
        if result.diagnostics:
            print(f"Diagnostics ({len(result.diagnostics)}):")
            for diag in result.diagnostics:
                print(f"  {diag}")
        else:
            print("Diagnostics: none")
    if args.profile_passes:
        stats = cmp.lcmm.engine_stats
        if stats is None:
            print("\n(no engine stats: the evaluation engine was disabled)")
            return
        print("\nEvaluation engine profile:")
        for name, seconds in stats.pass_seconds.items():
            print(f"  {name:16s} {seconds * 1e3:9.3f} ms")
        print(f"  node evaluations: {stats.node_evaluations}")
        print(f"  full rescores:    {stats.full_rescores}")
        print(f"  applies/undos:    {stats.applies}/{stats.undos}")
        hits, misses = stats.gain_cache_hits, stats.gain_cache_misses
        total = hits + misses
        rate = hits / total if total else 0.0
        print(f"  gain cache:       {hits}/{total} hits ({rate:.0%})")


def _cmd_passes(args: argparse.Namespace) -> None:
    from repro.lcmm.options import LCMMOptions
    from repro.lcmm.passes import default_pipeline, registered_passes

    print("Registered compilation passes:")
    for name, cls in sorted(registered_passes().items()):
        instance = cls()
        requires = ", ".join(instance.requires) or "-"
        produces = ", ".join(instance.produces) or "-"
        print(f"  {name:18s} {instance.describe()}")
        print(f"  {'':18s} requires: {requires}  produces: {produces}")
    default = " -> ".join(p.name for p in default_pipeline(LCMMOptions()))
    print(f"\nDefault pipeline: {default}")


def _cmd_sweep(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _sweep_body(args))


def _sweep_body(args: argparse.Namespace) -> None:
    from repro.lcmm.framework import LCMMOptions, run_lcmm
    from repro.perf.latency import LatencyModel

    graph = get_model(args.model)
    accel = reference_design(args.model, precision_by_name(args.precision), "lcmm")
    model = LatencyModel(graph, accel)
    umm_latency = model.umm_latency()
    tile = accel.tile_buffer_bytes()
    print(f"Speedup vs on-chip memory budget ({args.model}, {args.precision}):")
    total = accel.device.sram_bytes
    for fraction in (0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0):
        budget = tile + int((total - tile) * fraction)
        result = run_lcmm(
            graph, accel, options=LCMMOptions(sram_budget=budget), model=model
        )
        print(
            f"  {budget / 2**20:6.1f} MB  speedup {umm_latency / result.latency:5.2f}x  "
            f"({len(result.onchip_tensors)} tensors on chip)"
        )


def _cmd_simulate(args: argparse.Namespace) -> None:
    from repro.analysis.plots import simulation_gantt
    from repro.lcmm.framework import run_lcmm
    from repro.perf.latency import LatencyModel
    from repro.sim import simulate

    graph = get_model(args.model)
    accel = reference_design(args.model, precision_by_name(args.precision), "lcmm")
    model = LatencyModel(graph, accel)
    lcmm = run_lcmm(graph, accel, model=model)
    sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
    print(f"Simulated {graph.name}: makespan {sim.total_latency * 1e3:.3f} ms "
          f"(analytical {lcmm.latency * 1e3:.3f} ms, "
          f"stalls {sim.stall_time * 1e6:.1f} us)")
    for kind in ("if", "wt", "of"):
        print(f"  {kind} channel busy: {sim.channel_utilization(kind):.0%}")
    print()
    print(simulation_gantt(sim, max_rows=args.rows))


def _cmd_export(args: argparse.Namespace) -> None:
    from repro.io import save_allocation_report
    from repro.lcmm.framework import run_lcmm
    from repro.perf.latency import LatencyModel

    graph = _load_model(args.model)
    accel = reference_design(
        args.model if args.model in BENCHMARKS else "resnet152",
        precision_by_name(args.precision),
        "lcmm",
    )
    model = LatencyModel(graph, accel)
    lcmm = run_lcmm(graph, accel, model=model)
    save_allocation_report(lcmm, args.output)
    print(f"Wrote allocation report for {graph.name} to {args.output}")
    print(f"  {len(lcmm.physical_buffers)} buffers, "
          f"{len(lcmm.onchip_tensors)} tensors, "
          f"{len(lcmm.residuals)} unhidden prefetches")


def _cmd_doublebuffer(args: argparse.Namespace) -> None:
    from repro.lcmm.double_buffer import LinearityError, run_double_buffer
    from repro.lcmm.umm import run_umm
    from repro.perf.latency import LatencyModel

    accel = reference_design("resnet152", precision_by_name(args.precision), "lcmm")
    for name in ("alexnet", "vgg16", "resnet152", "googlenet"):
        graph = get_model(name)
        model = LatencyModel(graph, accel)
        umm = run_umm(graph, accel, model)
        try:
            db = run_double_buffer(graph, accel, model)
            print(f"{name:12s} linear: double-buffer {db.latency * 1e3:8.3f} ms "
                  f"({umm.latency / db.latency:.2f}x over UMM, "
                  f"2 x {db.buffer_bytes / 2**20:.2f} MB buffers)")
        except LinearityError:
            print(f"{name:12s} NON-LINEAR: traditional double buffering "
                  "does not apply (the paper's motivation for LCMM)")


def _cmd_batch(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _batch_body(args))


def _batch_body(args: argparse.Namespace) -> None:
    from repro.lcmm.framework import run_lcmm
    from repro.perf.batching import batched_latency, umm_batched_latency
    from repro.perf.latency import LatencyModel

    graph = get_model(args.model)
    accel = reference_design(args.model, precision_by_name(args.precision), "lcmm")
    model = LatencyModel(graph, accel)
    lcmm = run_lcmm(graph, accel, model=model)
    batch = batched_latency(model, lcmm, args.images)
    umm = umm_batched_latency(model, args.images)
    print(f"Batch of {args.images} images on {graph.name} ({args.precision}):")
    print(f"  LCMM first image:  {batch.first_image_latency * 1e3:8.3f} ms")
    print(f"  LCMM steady state: {batch.steady_image_latency * 1e3:8.3f} ms "
          f"({batch.images_per_second:.1f} img/s)")
    print(f"  LCMM amortized:    {batch.amortized_latency * 1e3:8.3f} ms/img")
    print(f"  UMM  per image:    {umm.steady_image_latency * 1e3:8.3f} ms")
    print(f"  Steady-state speedup: "
          f"{umm.steady_image_latency / batch.steady_image_latency:.2f}x")


def _cmd_pipeline(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _pipeline_body(args))


def _pipeline_body(args: argparse.Namespace) -> None:
    from repro.perf.partition import (
        InterDieLink,
        design_partition,
        partition_batched_latency,
    )

    graph = _load_model(args.model)
    design_key = args.model if args.model in BENCHMARKS else "resnet152"
    accel = reference_design(design_key, precision_by_name(args.precision), "lcmm")
    try:
        link = None if args.no_link else InterDieLink(
            gbps=args.link_gbps, efficiency=args.link_efficiency
        )
    except ValueError as exc:
        from repro.errors import ConfigError

        raise ConfigError(str(exc)) from exc
    result = design_partition(graph, accel, args.devices, link=link)
    print(
        f"Multi-die pipeline on {graph.name} ({args.precision}), "
        f"{result.num_devices} of {result.devices_requested} requested dies"
    )
    if result.link is not None:
        print(
            f"Inter-die link: {result.link.gbps:g} GB/s at "
            f"{result.link.efficiency:.0%} efficiency"
        )
    if result.fell_back:
        print(f"Fell back to single die: {result.fell_back}")
    print(
        format_table(
            ("Die", "Nodes", "SRAM", "Compute(ms)", "Recv(MB)", "Send(MB)",
             "Link(ms)", "Stage(ms)", "Bound"),
            [
                (
                    s.index,
                    len(s.nodes),
                    f"{s.lcmm.sram_utilization:.0%}",
                    f"{s.steady_compute_latency * 1e3:.3f}",
                    f"{s.recv_bytes / 2**20:.2f}",
                    f"{s.send_bytes / 2**20:.2f}",
                    f"{max(s.recv_latency, s.send_latency) * 1e3:.3f}",
                    f"{s.steady_latency * 1e3:.3f}",
                    "link" if s.link_bound else "compute",
                )
                for s in result.stages
            ],
        )
    )
    batch = partition_batched_latency(result, args.images)
    print(f"Image latency (pipeline fill): {result.image_latency * 1e3:.3f} ms")
    print(f"Steady-state period:           {result.period * 1e3:.3f} ms "
          f"({result.steady_state_throughput:.1f} img/s)")
    if result.num_devices > 1:
        print(f"Speedup vs single die:         {result.speedup_vs_single:.2f}x")
    print(f"Batch of {batch.batch}: {batch.total_latency * 1e3:.3f} ms total, "
          f"{batch.amortized_latency * 1e3:.3f} ms/img amortized")


def _cmd_batch_compile(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _batch_compile_body(args))


def _batch_compile_body(args: argparse.Namespace) -> None:
    from repro.cache import batch_compile

    configs = args.configs.split(",") if args.configs else None
    report = batch_compile(
        models=args.models or None,
        configs=configs,
        precision=args.precision,
        cache_dir=args.cache,
        workers=args.workers,
    )
    print(
        format_table(
            ("Model", "Config", "Latency(ms)", "Cache", "Seconds"),
            [
                (
                    o.model,
                    o.config,
                    f"{o.latency * 1e3:.3f}",
                    "hit" if o.cache_hit else "miss",
                    f"{o.seconds:.3f}",
                )
                for o in report.outcomes
            ],
        )
    )
    print(
        f"\n{len(report.outcomes)} jobs in {report.seconds:.2f}s "
        f"(workers={report.workers}): "
        f"{report.hits} cache hits, {report.misses} misses"
        + (", pool unavailable (ran serially)" if report.pool_unavailable else "")
    )
    if args.verify_golden:
        problems = report.verify_golden(args.verify_golden)
        if problems:
            for problem in problems:
                print(f"  golden mismatch: {problem}", file=sys.stderr)
            raise ReproError(
                f"{len(problems)} cached result(s) disagree with the golden "
                f"fingerprints in {args.verify_golden}"
            )
        print(f"All results match the golden fingerprints in {args.verify_golden}")
    if args.require_all_hits and not report.all_hits:
        raise ReproError(
            f"--require-all-hits: {report.misses} of {len(report.outcomes)} "
            "jobs missed the cache"
        )


def _cmd_dot(args: argparse.Namespace) -> None:
    from repro.analysis.dot import (
        computation_graph_dot,
        interference_graph_dot,
        prefetch_graph_dot,
    )
    from repro.lcmm.framework import run_lcmm
    from repro.perf.latency import LatencyModel

    graph = _load_model(args.model)
    design_key = args.model if args.model in BENCHMARKS else "resnet152"
    accel = reference_design(design_key, precision_by_name(args.precision), "lcmm")
    model = LatencyModel(graph, accel)
    if args.view == "graph":
        bound = frozenset(model.memory_bound_nodes())
        output = computation_graph_dot(graph, highlight=bound)
    else:
        lcmm = run_lcmm(graph, accel, model=model)
        if args.view == "interference":
            output = interference_graph_dot(lcmm.feature_result.interference)
        else:
            output = prefetch_graph_dot(lcmm.prefetch_result)
    with open(args.output, "w") as handle:
        handle.write(output + "\n")
    print(f"Wrote {args.view} DOT for {graph.name} to {args.output}")


def _cmd_dse(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _dse_body(args))


def _dse_body(args: argparse.Namespace) -> None:
    from repro.perf.dse import WorkerStats, explore_designs

    graph = _load_model(args.model)
    budget = int(args.budget * 2**20)
    stats = WorkerStats()
    cache = _open_cache(args.cache)
    if args.space:
        from repro.perf.space import explore_space, large_space, small_space

        space = small_space() if args.space == "small" else large_space()
        swept = space if args.sample is None else space.sample(args.sample)
        result = explore_space(
            graph,
            swept,
            budget,
            workers=args.workers,
            prune=args.prune,
            top=args.top,
            stats=stats,
            cache=cache,
            pool_mode=args.pool,
        )
        sample_note = f", {args.sample}-point sample" if args.sample else ""
        print(
            f"Design-space DSE on {graph.name} ({args.space} space{sample_note}), "
            f"{args.budget:.1f} MB tile-buffer budget:"
        )
        print(
            f"  {result.total_points} feasible points, "
            f"{result.scored_points} scored, {result.pruned_points} pruned "
            f"({result.pruned_dominated} tile-dominated, "
            f"{result.pruned_bounded} roofline-bounded, "
            f"{result.bases_pruned}/{result.bases_total} bases skipped whole)"
        )
        for point in result.points[: args.top]:
            print(
                f"  {point.accel.name:38s} {str(point.accel.tile):24s} "
                f"UMM {point.umm_latency * 1e3:8.3f} ms"
            )
    else:
        base = reference_design(
            args.model if args.model in BENCHMARKS else "resnet152",
            precision_by_name(args.precision),
            "lcmm",
        )
        points = explore_designs(
            graph,
            base,
            budget,
            workers=args.workers,
            stats=stats,
            cache=cache,
            pool_mode=args.pool,
        )
        print(
            f"Tile DSE on {graph.name} ({args.precision}), "
            f"{args.budget:.1f} MB tile-buffer budget, "
            f"{len(points)} feasible points, workers={args.workers}:"
        )
        for point in points[: args.top]:
            print(
                f"  {str(point.accel.tile):28s} "
                f"UMM {point.umm_latency * 1e3:8.3f} ms  "
                f"tile buffers {point.tile_buffer_bytes / 2**20:5.2f} MB"
            )
    if args.workers > 1:
        print(
            f"Pool ({args.pool}): {stats.chunks} chunks, "
            f"{stats.chunks_reused_pool} on an already-warm pool, "
            f"{stats.init_seconds:.2f}s spinning up workers"
        )
    if stats.recovered():
        print(
            "Worker recovery: "
            f"{stats.retries} retries, {stats.timeouts} timeouts, "
            f"{stats.serial_chunks} chunks re-scored serially"
            + (", pool broken" if stats.pool_broken else "")
            + (", pool unavailable" if stats.pool_unavailable else "")
        )


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio

    from repro.serve import (
        CompileServer,
        CompileService,
        ServerConfig,
        ServiceConfig,
    )

    service_config = ServiceConfig(
        cache_dir=args.cache,
        workers=args.workers,
        inline=args.inline,
        precision=args.precision,
        default_deadline=args.deadline,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
    )
    server_config = ServerConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        drain_seconds=args.drain_seconds,
    )

    async def _serve() -> bool:
        service = CompileService(service_config)
        server = CompileServer(service, server_config)
        host, port = await server.start()
        mode = "inline threads" if args.inline else "process pool"
        print(
            f"lcmm serve listening on {host}:{port} "
            f"({args.workers} workers, {mode})",
            flush=True,
        )
        clean = await server.run()
        print(
            "lcmm serve drained cleanly"
            if clean
            else "lcmm serve drain timed out; in-flight work abandoned",
            flush=True,
        )
        return clean

    asyncio.run(_serve())


def _cmd_cotune(args: argparse.Namespace) -> None:
    _traced(args.trace, lambda: _cotune_body(args))


def _cotune_body(args: argparse.Namespace) -> None:
    from repro.lcmm.cotuning import cotune

    graph = get_model(args.model)
    base = reference_design(args.model, precision_by_name(args.precision), "lcmm")
    result = cotune(graph, base)
    print(f"Tile/allocation co-tuning on {graph.name} ({args.precision}):")
    for point in sorted(result.points, key=lambda p: p.lcmm_latency):
        marker = " <-- best" if point.tile == result.best_accel.tile else ""
        print(
            f"  {str(point.tile):28s} UMM {point.umm_latency * 1e3:8.3f} ms  "
            f"LCMM {point.lcmm_latency * 1e3:8.3f} ms{marker}"
        )


def _cmd_stats(args: argparse.Namespace) -> None:
    from repro import obs
    from repro.lcmm.framework import run_lcmm
    from repro.perf.latency import LatencyModel

    graph = _load_model(args.model)
    accel = reference_design(
        args.model if args.model in BENCHMARKS else "resnet152",
        precision_by_name(args.precision),
        "lcmm",
    )
    model = LatencyModel(graph, accel)
    obs.reset_registry()
    with obs.tracing("main") as tracer:
        result = run_lcmm(graph, accel, model=model)
    print(f"LCMM on {graph.name} ({args.precision}): "
          f"{result.latency * 1e3:.3f} ms, "
          f"degradation level {result.degradation_level}\n")
    print(obs.stats_table(tracer.records, obs.registry().snapshot()))
    if args.trace:
        count = obs.write_chrome_trace(
            args.trace, tracer, metrics=obs.registry().snapshot()
        )
        print(f"\nWrote Chrome trace ({count} spans) to {args.trace}")


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.analysis.report_generator import write_report

    target = write_report(args.output)
    print(f"Wrote live experiment report to {target}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="lcmm",
        description="Reproduce the DAC 2019 LCMM paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="UMM vs LCMM main results").set_defaults(func=_cmd_table1)
    sub.add_parser("table2", help="on-chip memory utilisation").set_defaults(func=_cmd_table2)
    sub.add_parser("table3", help="state-of-the-art comparison").set_defaults(func=_cmd_table3)

    p2a = sub.add_parser("fig2a", help="Inception-v4 roofline")
    p2a.add_argument("--precision", default="int8")
    p2a.add_argument("--points", action="store_true", help="print every layer")
    p2a.set_defaults(func=_cmd_fig2a)

    p2b = sub.add_parser("fig2b", help="per-block design space")
    p2b.add_argument("--precision", default="int8")
    p2b.add_argument("--stride", type=int, default=1, help="evaluate every Nth point")
    p2b.set_defaults(func=_cmd_fig2b)

    sub.add_parser("fig8", help="GoogLeNet per-block breakdown").set_defaults(func=_cmd_fig8)

    prun = sub.add_parser("run", help="one design pair in detail")
    prun.add_argument("model", choices=list_models())
    prun.add_argument("--precision", default="int8")
    prun.add_argument(
        "--profile-passes",
        action="store_true",
        help="print per-pass wall time and evaluation-engine counters",
    )
    prun.add_argument(
        "--explain",
        action="store_true",
        help="print the executed pipeline, per-pass timings and diagnostics",
    )
    prun.add_argument(
        "--fuse",
        action="store_true",
        help="enable the fused-layer tiling pass (fuse_layers)",
    )
    prun.add_argument(
        "--schedule-transfers",
        action="store_true",
        help="enable the DMA transfer scheduling pass (transfer_schedule)",
    )
    prun.add_argument(
        "--strict",
        action="store_true",
        help="run invariant checks after every pass (fail fast on corruption)",
    )
    prun.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the degradation chain: a pipeline failure is fatal",
    )
    prun.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace (chrome://tracing) of the run to PATH",
    )
    prun.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="reuse/populate a content-addressed compilation cache under DIR",
    )
    prun.set_defaults(func=_cmd_run)

    sub.add_parser(
        "passes", help="list registered compilation passes"
    ).set_defaults(func=_cmd_passes)

    psweep = sub.add_parser("sweep", help="speedup vs on-chip memory budget")
    psweep.add_argument("model", choices=list(BENCHMARKS))
    psweep.add_argument("--precision", default="int16")
    psweep.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the sweep to PATH",
    )
    psweep.set_defaults(func=_cmd_sweep)

    psim = sub.add_parser("simulate", help="event-driven timeline (Gantt)")
    psim.add_argument("model", choices=list(BENCHMARKS))
    psim.add_argument("--precision", default="int8")
    psim.add_argument("--rows", type=int, default=30, help="Gantt rows to show")
    psim.set_defaults(func=_cmd_simulate)

    pexp = sub.add_parser("export", help="write a JSON allocation report")
    pexp.add_argument("model")
    pexp.add_argument("--precision", default="int16")
    pexp.add_argument("-o", "--output", default="allocation.json")
    pexp.set_defaults(func=_cmd_export)

    pdb = sub.add_parser(
        "doublebuffer", help="legacy double-buffer baseline on linear nets"
    )
    pdb.add_argument("--precision", default="int8")
    pdb.set_defaults(func=_cmd_doublebuffer)

    pbatch = sub.add_parser("batch", help="steady-state multi-image throughput")
    pbatch.add_argument("model", choices=list(BENCHMARKS))
    pbatch.add_argument("--precision", default="int8")
    pbatch.add_argument("--images", type=int, default=16)
    pbatch.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the batch analysis to PATH",
    )
    pbatch.set_defaults(func=_cmd_batch)

    ppipe = sub.add_parser(
        "pipeline", help="multi-die layer-pipelined partitioning"
    )
    ppipe.add_argument("model", choices=list_models())
    ppipe.add_argument("--precision", default="int8")
    ppipe.add_argument(
        "--devices", type=int, default=2, help="dies in the chain (1-8)"
    )
    ppipe.add_argument(
        "--link-gbps",
        type=float,
        default=12.5,
        help="per-direction inter-die link bandwidth, GB/s "
        "(12.5 = a 100 GbE chain)",
    )
    ppipe.add_argument(
        "--link-efficiency",
        type=float,
        default=1.0,
        help="achievable fraction of the raw link bandwidth (0, 1]",
    )
    ppipe.add_argument(
        "--no-link",
        action="store_true",
        help="disable the link model (degrades to the single-die design)",
    )
    ppipe.add_argument(
        "--images", type=int, default=16, help="batch size for the fill profile"
    )
    ppipe.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the partitioning to PATH",
    )
    ppipe.set_defaults(func=_cmd_pipeline)

    pbc = sub.add_parser(
        "batch-compile",
        help="compile a model/config matrix through the compilation cache",
    )
    pbc.add_argument(
        "models",
        nargs="*",
        help="models to compile (default: the full zoo)",
    )
    pbc.add_argument(
        "--configs",
        default=None,
        help="comma-separated config labels (default: all standard configs "
        "incl. fused/fused_sched)",
    )
    pbc.add_argument("--precision", default="int8")
    pbc.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent cache directory (omit for a cold in-memory run)",
    )
    pbc.add_argument(
        "--workers", type=int, default=1, help="process count for the compile matrix"
    )
    pbc.add_argument(
        "--verify-golden",
        metavar="PATH",
        default=None,
        help="check results against the golden fingerprints in PATH; "
        "exit non-zero on any mismatch",
    )
    pbc.add_argument(
        "--require-all-hits",
        action="store_true",
        help="exit non-zero unless every job was served from the cache",
    )
    pbc.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the batch compile to PATH",
    )
    pbc.set_defaults(func=_cmd_batch_compile)

    preport = sub.add_parser("report", help="regenerate the full markdown report")
    preport.add_argument("-o", "--output", default="experiment_report.md")
    preport.set_defaults(func=_cmd_report)

    pdse = sub.add_parser("dse", help="tile design-space sweep by UMM latency")
    pdse.add_argument("model")
    pdse.add_argument("--precision", default="int8")
    pdse.add_argument(
        "--budget", type=float, default=8.0, help="tile-buffer budget in MB"
    )
    pdse.add_argument(
        "--workers", type=int, default=1, help="process count for the scoring sweep"
    )
    pdse.add_argument("--top", type=int, default=10, help="design points to print")
    pdse.add_argument(
        "--space",
        choices=("small", "large"),
        default=None,
        help="sweep an exploded design-space preset (arrays x clocks x "
        "precisions x DDR configs x tiles) instead of one base design; "
        "--precision is ignored in this mode",
    )
    pdse.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="with --space: score a uniform random N-point sample of it",
    )
    pdse.add_argument(
        "--prune",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --space: tile-dominance + roofline pre-pruning "
        "(exact: same best design either way; --no-prune scores everything)",
    )
    pdse.add_argument(
        "--pool",
        choices=("keep", "fresh"),
        default="keep",
        help="worker-pool lifetime: 'keep' leaves the pool warm for later "
        "sweeps in this process, 'fresh' builds and closes a private pool",
    )
    pdse.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the sweep (worker spans merged in)",
    )
    pdse.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="warm-start the sweep from cached (graph, tile) scores under DIR",
    )
    pdse.set_defaults(func=_cmd_dse)

    pstats = sub.add_parser(
        "stats", help="profile one LCMM compilation: span/metric summary"
    )
    pstats.add_argument("model")
    pstats.add_argument("--precision", default="int8")
    pstats.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="additionally dump the Chrome trace to PATH",
    )
    pstats.set_defaults(func=_cmd_stats)

    pserve = sub.add_parser(
        "serve", help="compilation daemon: compile/DSE jobs over HTTP/JSON"
    )
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument(
        "--port", type=int, default=8347, help="0 picks an ephemeral port"
    )
    pserve.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="shared artifact cache directory (warm hits skip the pool)",
    )
    pserve.add_argument(
        "--workers", type=int, default=2, help="compile worker count"
    )
    pserve.add_argument(
        "--inline",
        action="store_true",
        help="run jobs on threads in-process (no crash isolation; tests)",
    )
    pserve.add_argument("--precision", default="int8")
    pserve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrent compute requests actually executing",
    )
    pserve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before shedding with 429",
    )
    pserve.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-tenant requests/second (default: quotas off)",
    )
    pserve.add_argument(
        "--quota-burst", type=float, default=None, help="per-tenant burst size"
    )
    pserve.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="default per-request deadline, seconds",
    )
    pserve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="transient worker-failure retries per request",
    )
    pserve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive pool failures that open the circuit",
    )
    pserve.add_argument(
        "--breaker-reset",
        type=float,
        default=10.0,
        help="circuit cool-down seconds before half-open probing",
    )
    pserve.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="grace for in-flight jobs on SIGTERM/SIGINT",
    )
    pserve.set_defaults(func=_cmd_serve)

    pcotune = sub.add_parser("cotune", help="tile/allocation co-tuning sweep")
    pcotune.add_argument("model", choices=list(BENCHMARKS))
    pcotune.add_argument("--precision", default="int16")
    pcotune.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a Chrome trace of the co-tuning sweep to PATH",
    )
    pcotune.set_defaults(func=_cmd_cotune)

    pdot = sub.add_parser("dot", help="export graphviz views of the analysis")
    pdot.add_argument("model")
    pdot.add_argument(
        "--view", choices=("graph", "interference", "pdg"), default="graph"
    )
    pdot.add_argument("--precision", default="int8")
    pdot.add_argument("-o", "--output", default="graph.dot")
    pdot.set_defaults(func=_cmd_dot)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Any :class:`~repro.errors.ReproError` is reported as a single
    actionable line on stderr, and the exit status distinguishes whose
    fault it was (:func:`repro.errors.exit_code`): user/configuration
    errors — unknown model, invalid graph, infeasible budget — exit 2;
    internal failures — pipeline bugs with fallback disabled, worker
    crashes — exit 1.
    """
    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code(exc)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Buffer splitting (Sec. 3.4 of the paper).

Colouring is greedy about sharing: a small tensor with a large latency
reduction can land in the same virtual buffer as a huge tensor, and when
DNNK spills that buffer the small tensor is dragged off-chip with it —
*misspilling*.  The fix is to insert a **false lifespan-overlap edge**
between two buffer-mates so the colouring is forced to separate them, then
re-colour and re-run DNNK.  Each iteration targets the largest spilled
multi-tensor buffer and splits its size-defining tensor away from the
buffer-mate with the most latency to recover; the iteration is kept only
if the exact end-to-end latency improves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.hw.sram import URAM_BYTES
from repro.lcmm.buffers import VirtualBuffer
from repro.lcmm.coloring import color_buffers
from repro.lcmm.dnnk import DNNKResult, dnnk_allocate
from repro.lcmm.interference import InterferenceGraph
from repro.perf.engine import AllocationEngine
from repro.perf.latency import LatencyModel

#: Upper bound on splitting iterations; each adds one false edge.
DEFAULT_MAX_ITERATIONS = 10


@dataclass(frozen=True)
class SplitAttempt:
    """One false-edge trial of the splitting loop.

    Attributes:
        tensor_a: The size-defining tensor separated out.
        tensor_b: The buffer-mate it was split away from.
        latency: Exact end-to-end latency after the re-allocation.
        accepted: Whether the split improved latency and was kept.
    """

    tensor_a: str
    tensor_b: str
    latency: float
    accepted: bool


@dataclass
class SplittingOutcome:
    """Result of the iterative splitting loop.

    Attributes:
        buffers: Final combined virtual buffer list (re-coloured).
        result: DNNK result for that buffer list.
        latency: Exact end-to-end latency of the final allocation.
        iterations: Splitting iterations actually applied (kept ones).
        false_edges: False edges inserted across both interference graphs.
        attempts: Every split trialled, accepted or not, in order —
            the raw material for pipeline diagnostics.
    """

    buffers: list[VirtualBuffer]
    result: DNNKResult
    latency: float
    iterations: int
    false_edges: int
    attempts: tuple[SplitAttempt, ...] = ()


def combine_buffers(groups: list[list[VirtualBuffer]]) -> list[VirtualBuffer]:
    """Concatenate buffer groups into one consistently indexed list."""
    combined = []
    for group in groups:
        for buf in group:
            combined.append(VirtualBuffer(index=len(combined), tensors=buf.tensors))
    return combined


def _pick_split(
    result: DNNKResult,
) -> tuple[VirtualBuffer, str, str] | None:
    """Choose the next false edge: (buffer, size-defining tensor, mate).

    Targets the largest spilled buffer holding more than one tensor; the
    mate is the buffer-mate with the highest latency reduction, the tensor
    most hurt by the misspill.
    """
    candidates = [b for b in result.spilled if len(b.tensors) > 1]
    if not candidates:
        return None
    buf = max(candidates, key=lambda b: b.size_bytes)
    big = max(buf.tensors, key=lambda t: t.size_bytes)
    mates = [t for t in buf.tensors if t.name != big.name]
    mate = max(mates, key=lambda t: t.latency_reduction)
    return buf, big.name, mate.name


def buffer_splitting_pass(
    feature_graph: InterferenceGraph,
    weight_graph: InterferenceGraph,
    model: LatencyModel,
    capacity_bytes: int,
    evaluate: Callable[[frozenset[str]], float],
    granularity: int = URAM_BYTES,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    engine: AllocationEngine | None = None,
) -> SplittingOutcome:
    """Iteratively split misspilled buffers while latency improves.

    Args:
        feature_graph: Feature tensor interference graph (mutated by the
            false edges this pass inserts).
        weight_graph: Weight tensor interference graph (likewise).
        model: Latency model.
        capacity_bytes: On-chip memory available to tensor buffers.
        evaluate: Exact allocation scorer: on-chip tensor set -> seconds.
            Supplied by the framework so prefetch residuals are included.
        granularity: DNNK capacity quantum.
        max_iterations: Bound on false edges inserted.
        engine: Optional :class:`AllocationEngine` forwarded to each
            DNNK retry, so every re-colour/re-allocate iteration runs on
            the incremental hot path.

    Returns:
        The best configuration seen (the initial one if no split helps).
    """

    def recolor_and_allocate() -> tuple[list[VirtualBuffer], DNNKResult, float]:
        buffers = combine_buffers(
            [color_buffers(feature_graph), color_buffers(weight_graph)]
        )
        result = dnnk_allocate(buffers, model, capacity_bytes, granularity, engine=engine)
        return buffers, result, evaluate(result.onchip_tensors)

    buffers, result, latency = recolor_and_allocate()
    best = SplittingOutcome(
        buffers=buffers, result=result, latency=latency, iterations=0, false_edges=0
    )

    edges_added = 0
    attempts: list[SplitAttempt] = []
    for iteration in range(1, max_iterations + 1):
        split = _pick_split(best.result)
        if split is None:
            break
        _, tensor_a, tensor_b = split
        graph = feature_graph if tensor_a in feature_graph.tensors else weight_graph
        if tensor_b not in graph.tensors or graph.interferes(tensor_a, tensor_b):
            break
        graph.add_false_edge(tensor_a, tensor_b)
        edges_added += 1
        buffers, result, latency = recolor_and_allocate()
        accepted = latency < best.latency - 1e-15
        attempts.append(
            SplitAttempt(
                tensor_a=tensor_a,
                tensor_b=tensor_b,
                latency=latency,
                accepted=accepted,
            )
        )
        if accepted:
            best = SplittingOutcome(
                buffers=buffers,
                result=result,
                latency=latency,
                iterations=iteration,
                false_edges=edges_added,
            )
        else:
            # The split did not pay off; keep the edge (it is harmless for
            # correctness) but stop exploring further splits.
            break
    return replace(best, attempts=tuple(attempts))

"""Schedule reordering to shrink feature-tensor liveness (extension).

The paper takes the computation graph's topological order as given; but
within a branching block the order of independent branches is free, and
it changes which feature tensors are live simultaneously — and therefore
how well the colouring of Sec. 3.1 can share buffers.  Scheduling one
branch to completion before starting its sibling (depth-first) retires
each branch's intermediates before the next branch's are born; the
breadth-first order a naive topological sort produces keeps one
intermediate per branch alive at once.

This module implements a Sethi-Ullman-flavoured heuristic: a depth-first
schedule that, at every fan-out, visits the child subtree with the larger
peak feature footprint first.  The reordered graph is a plain
:class:`ComputationGraph` whose definition order *is* the new schedule,
so every downstream pass works unchanged.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import OpType


def _peak_bytes(
    graph: ComputationGraph, node: str, memo: dict[str, int]
) -> int:
    """Heuristic peak feature footprint of the subtree hanging off ``node``."""
    if node in memo:
        return memo[node]
    own = graph.output_shape(node).volume
    child_peaks = sorted(
        (_peak_bytes(graph, succ, memo) for succ in graph.successors(node)),
        reverse=True,
    )
    # Visiting children sequentially: the k-th child's peak coexists with
    # the outputs of the k-1 earlier children (classic Sethi-Ullman).
    peak = own
    for idx, child_peak in enumerate(child_peaks):
        peak = max(peak, own + child_peak + idx * own // 4)
    memo[node] = peak
    return peak


def reorder_depth_first(graph: ComputationGraph) -> ComputationGraph:
    """Rebuild a graph with a liveness-friendly depth-first schedule.

    The result is semantically identical (same layers, same edges) but its
    topological order retires branch intermediates as early as possible.

    Returns:
        A new :class:`ComputationGraph`; the input is left untouched.
    """
    memo: dict[str, int] = {}
    indegree = {
        name: len(graph.layer(name).inputs) for name in graph.schedule()
    }
    ready = [name for name, deg in indegree.items() if deg == 0]
    order: list[str] = []
    # Depth-first: a stack, pushing the heaviest subtree last so it is
    # popped (and fully retired) first among the newly enabled nodes.
    stack = sorted(ready, key=lambda n: _peak_bytes(graph, n, memo))
    while stack:
        node = stack.pop()
        order.append(node)
        enabled = []
        for succ in graph.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                enabled.append(succ)
        enabled.sort(key=lambda n: _peak_bytes(graph, n, memo))
        stack.extend(enabled)

    if len(order) != len(graph):
        raise ValueError(f"graph {graph.name!r} has unreachable or cyclic parts")

    reordered = ComputationGraph(name=graph.name)
    for name in order:
        layer = graph.layer(name)
        # Layers are mutable dataclasses (shape inference writes back);
        # re-adding the same instances to a fresh graph is safe because
        # inference is idempotent for identical input shapes.
        reordered.add(layer)
    reordered.blocks = {k: list(v) for k, v in graph.blocks.items()}
    reordered.validate()
    return reordered


def peak_live_feature_bytes(graph: ComputationGraph, element_bytes: int) -> int:
    """Peak bytes of simultaneously live feature tensors under the
    graph's current schedule — the quantity reordering tries to shrink."""
    from repro.lcmm.liveness import feature_live_ranges

    ranges = feature_live_ranges(graph)
    sizes = {t.name: t.bytes(element_bytes) for t in graph.feature_tensors()}
    if not ranges:
        return 0
    horizon = max(r.end for r in ranges.values())
    peak = 0
    for step in range(horizon + 1):
        live = sum(
            sizes[name]
            for name, rng in ranges.items()
            if rng.start <= step <= rng.end
        )
        peak = max(peak, live)
    return peak

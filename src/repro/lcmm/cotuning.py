"""Co-tuning of tile shape and tensor allocation.

Sec. 4.1 of the paper observes that once LCMM overcomes the off-chip
bottleneck, the design "could use smaller tile size to improve
computation efficiency, leading to less BRAM consumption".  The tile
shape trades two effects against each other:

* **larger tiles** cut reload traffic for the layers that stay off-chip
  (fewer input re-streams, fewer weight re-streams), but
* **smaller tiles** free SRAM for LCMM's tensor buffers, letting more
  tensors move on chip — and once a layer's tensors are resident, its
  reload factors stop mattering entirely.

The UMM-optimal tile (what a baseline DSE picks) is therefore generally
not the LCMM-optimal tile.  This module sweeps candidate tiles, runs the
full LCMM pipeline on each, and returns the jointly best design — the
co-design loop the paper sketches as integration with DSE frameworks
(Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.lcmm.framework import LCMMOptions, LCMMResult, run_lcmm
from repro.perf.dse import candidate_tiles
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig
from repro.perf.tiling import TileConfig


@dataclass(frozen=True)
class CoTuningPoint:
    """One evaluated (tile, allocation) pair.

    Attributes:
        tile: Tile configuration evaluated.
        umm_latency: Baseline latency at this tile (everything off chip).
        lcmm_latency: Latency after the full LCMM pipeline.
        tile_buffer_bytes: SRAM the tile buffers claim at this shape.
    """

    tile: TileConfig
    umm_latency: float
    lcmm_latency: float
    tile_buffer_bytes: int


@dataclass
class CoTuningResult:
    """Outcome of the tile/allocation co-tuning sweep.

    Attributes:
        best_accel: The winning design point.
        best_result: Its LCMM allocation.
        points: All evaluated points, in candidate order.
    """

    best_accel: AcceleratorConfig
    best_result: LCMMResult
    points: list[CoTuningPoint]

    @property
    def best_point(self) -> CoTuningPoint:
        """The evaluated point matching the winning design."""
        return min(self.points, key=lambda p: p.lcmm_latency)


def _with_tile(base: AcceleratorConfig, tile: TileConfig) -> AcceleratorConfig:
    """Clone a design point with a different tile configuration."""
    return AcceleratorConfig(
        name=base.name,
        precision=base.precision,
        array=base.array,
        tile=tile,
        frequency=base.frequency,
        device=base.device,
        ddr=base.ddr,
        ddr_efficiency=base.ddr_efficiency,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


def cotune(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tiles: list[TileConfig] | None = None,
    options: LCMMOptions | None = None,
) -> CoTuningResult:
    """Sweep tile shapes, running full LCMM on each; return the joint best.

    Args:
        graph: The DNN to optimise.
        base: Design point providing everything except the tile shape.
        tiles: Candidate tiles; defaults to the DSE grid plus the base
            design's own tile.
        options: LCMM feature switches applied at every point.

    Raises:
        ValueError: If no candidate tile fits the device at all.
    """
    candidates = list(tiles) if tiles is not None else candidate_tiles()
    if base.tile not in candidates:
        candidates.insert(0, base.tile)

    points: list[CoTuningPoint] = []
    best_accel: AcceleratorConfig | None = None
    best_result: LCMMResult | None = None
    for tile in candidates:
        accel = _with_tile(base, tile)
        if accel.tile_buffer_bytes() >= accel.device.sram_bytes:
            continue
        model = LatencyModel(graph, accel)
        result = run_lcmm(graph, accel, options=options, model=model)
        points.append(
            CoTuningPoint(
                tile=tile,
                umm_latency=model.umm_latency(),
                lcmm_latency=result.latency,
                tile_buffer_bytes=accel.tile_buffer_bytes(),
            )
        )
        if best_result is None or result.latency < best_result.latency:
            best_accel, best_result = accel, result
    if best_accel is None or best_result is None:
        raise ValueError("no candidate tile configuration fits the device")
    return CoTuningResult(
        best_accel=best_accel, best_result=best_result, points=points
    )

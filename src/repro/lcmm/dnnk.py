"""DNNK — the DNN Knapsack on-chip memory allocator (Alg. 1, Sec. 3.3).

The allocation problem is a 0/1 knapsack: items are virtual buffers (size =
largest member tensor), capacity is the on-chip memory left after the tile
buffers, and the value of a buffer is the latency reduction of pinning its
member tensors on chip (Eq. 5).  The complication the paper calls *pivot
compensation* (Eq. 4) is that values are not additive: a node's latency is
the max of its compute and per-interface transfer terms, so the gain of
removing one transfer depends on which of the node's *other* tensors are
already on chip.

Alg. 1 handles this by consulting, while evaluating buffer ``i`` at
capacity column ``j``, the decisions earlier rows made *in the same
column* (``pbuf_table(op.get_idx(d), j)``).  We implement exactly that
context rule, but compute the resulting marginal gain exactly from the
latency model (a per-node max) instead of via the paper's
subtract-the-next-lower-latency bookkeeping — the two coincide where Eq. 4
is well defined, and the exact form extends cleanly to nodes with several
input tensors.  Because the column context is an approximation of the true
knapsack path, the final allocation is always re-scored with the exact
Eq. 1 evaluator; tests compare DNNK against exhaustive search on small
instances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.hw.sram import URAM_BYTES
from repro.ir.tensor import TensorKind
from repro.lcmm.buffers import VirtualBuffer
from repro.perf.latency import LatencyModel


@dataclass
class DNNKResult:
    """Outcome of a DNNK run.

    Attributes:
        allocated: Virtual buffers granted on-chip memory, in input order.
        spilled: Virtual buffers left in DDR.
        onchip_tensors: All tensor values resident on chip.
        predicted_reduction: The DP objective value (approximate — the
            column-context gains; re-score with the latency model for
            exact numbers).
        capacity_bytes: The capacity the run was given.
        used_bytes: Summed size of the allocated buffers.
    """

    allocated: list[VirtualBuffer]
    spilled: list[VirtualBuffer]
    onchip_tensors: frozenset[str]
    predicted_reduction: float
    capacity_bytes: int
    used_bytes: int


class _GainEvaluator:
    """Exact marginal latency gain of taking one buffer, given a context.

    The context is the set of buffers already decided on-chip in the same
    capacity column.  Gains are memoised per buffer on the *relevant*
    sub-mask — the context bits belonging to buffers that touch the same
    nodes — so repeated columns with identical local context hit the cache.
    """

    def __init__(self, model: LatencyModel, buffers: list[VirtualBuffer]) -> None:
        self._model = model
        self._buffers = buffers
        # tensor value name -> index of the buffer holding it.
        self._tensor_buffer: dict[str, int] = {}
        for idx, buf in enumerate(buffers):
            for t in buf.tensors:
                self._tensor_buffer[t.name] = idx
        # node -> (compute, tuple of (kind, tensor, latency)) restricted to
        # slots whose tensor is a candidate (others never change state).
        self._node_info: dict[str, tuple[float, tuple, float]] = {}
        # buffer index -> nodes it affects.
        self._affected: list[tuple[str, ...]] = []
        # buffer index -> bitmask of buffer indices sharing a node with it.
        self._relevant_mask: list[int] = []
        # buffer index -> frozenset of its member tensor names.
        self._member_tensors: list[frozenset[str]] = [
            frozenset(b.tensor_names) for b in buffers
        ]
        node_to_buffers: dict[str, set[int]] = {}
        for idx, buf in enumerate(buffers):
            nodes = sorted({n for t in buf.tensors for n in t.affected_nodes})
            self._affected.append(tuple(nodes))
            for n in nodes:
                node_to_buffers.setdefault(n, set()).add(idx)
        for idx in range(len(buffers)):
            mask = 0
            for n in self._affected[idx]:
                for other in node_to_buffers[n]:
                    mask |= 1 << other
            self._relevant_mask.append(mask)
        self._cache: list[dict[int, float]] = [dict() for _ in buffers]

    def _node_latency(self, node: str, onchip: frozenset[str]) -> float:
        ll = self._model.layer(node)
        return ll.latency(onchip)

    def _context_tensors(self, node: str, context_mask: int) -> set[str]:
        """Tensors of ``node`` resident on-chip under a context mask."""
        resident = set()
        for slot in self._model.layer(node).slots:
            buf_idx = self._tensor_buffer.get(slot.tensor)
            if buf_idx is not None and context_mask >> buf_idx & 1:
                resident.add(slot.tensor)
        return resident

    def node_latency_under_mask(self, node: str, context_mask: int) -> float:
        """Exact Eq. 1 latency of one node given a buffer bitmask."""
        return self._node_latency(node, frozenset(self._context_tensors(node, context_mask)))

    def move_delta(self, context_mask: int, add: int | None, drop: int | None) -> float:
        """Exact latency change of adding/dropping buffers (negative = better)."""
        new_mask = context_mask
        affected: set[str] = set()
        if drop is not None:
            new_mask &= ~(1 << drop)
            affected.update(self._affected[drop])
        if add is not None:
            new_mask |= 1 << add
            affected.update(self._affected[add])
        delta = 0.0
        for node in affected:
            delta += self.node_latency_under_mask(node, new_mask)
            delta -= self.node_latency_under_mask(node, context_mask)
        return delta

    def gain(self, buffer_index: int, context_mask: int) -> float:
        """Marginal latency reduction of taking ``buffer_index``.

        Args:
            buffer_index: Buffer under consideration.
            context_mask: Bitmask of buffers already on-chip in this
                capacity column (earlier rows' decisions).
        """
        key = context_mask & self._relevant_mask[buffer_index]
        cached = self._cache[buffer_index].get(key)
        if cached is not None:
            return cached
        members = self._member_tensors[buffer_index]
        total = 0.0
        for node in self._affected[buffer_index]:
            before = frozenset(self._context_tensors(node, context_mask))
            after = frozenset(before | members)
            total += self._node_latency(node, before) - self._node_latency(node, after)
        self._cache[buffer_index][key] = total
        return total


def dnnk_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    granularity: int = URAM_BYTES,
) -> DNNKResult:
    """Run the DNNK dynamic program (Alg. 1 of the paper).

    Args:
        buffers: Unallocated virtual buffer list (feature + weight).
        model: Latency model supplying the operation latency table.
        capacity_bytes: On-chip memory available for tensor buffers
            (``Rsram`` in the paper).
        granularity: Capacity quantum of the DP sweep; defaults to one
            URAM block, the unit the device allocates buffers in.

    Returns:
        The allocation, with decisions backtraced from the DP memo.
    """
    if capacity_bytes < 0:
        raise ValueError("capacity_bytes must be non-negative")
    if granularity <= 0:
        raise ValueError("granularity must be positive")

    units = capacity_bytes // granularity
    sizes = [math.ceil(b.size_bytes / granularity) for b in buffers]
    evaluator = _GainEvaluator(model, buffers)

    # The DP's column-context gains depend on the order buffers are
    # processed in, so run it under two orderings — the caller's list
    # order (largest-first, from the colouring) and descending
    # value-density — refine each with local search, and keep whichever
    # scores better under the exact Eq. 1 evaluator.
    orders = [list(range(len(buffers)))]
    density_order = sorted(
        range(len(buffers)),
        key=lambda i: -buffers[i].total_latency_reduction / max(1, sizes[i]),
    )
    if density_order != orders[0]:
        orders.append(density_order)

    best_chosen: set[int] = set()
    best_latency = float("inf")
    best_predicted = 0.0
    for order in orders:
        chosen_set, predicted = _dp_pass(order, sizes, units, evaluator)
        chosen_set = _local_search(chosen_set, sizes, units, evaluator, len(buffers))
        onchip = frozenset(
            name for i in chosen_set for name in buffers[i].tensor_names
        )
        latency = model.total_latency(onchip)
        if latency < best_latency - 1e-18:
            best_latency = latency
            best_chosen = chosen_set
            best_predicted = predicted
    chosen_set = best_chosen
    chosen = sorted(chosen_set)

    allocated = [buffers[i] for i in chosen]
    spilled = [b for i, b in enumerate(buffers) if i not in chosen_set]
    onchip = frozenset(name for i in chosen for name in buffers[i].tensor_names)
    return DNNKResult(
        allocated=allocated,
        spilled=spilled,
        onchip_tensors=onchip,
        predicted_reduction=best_predicted,
        capacity_bytes=capacity_bytes,
        used_bytes=sum(buffers[i].size_bytes for i in chosen),
    )


def _dp_pass(
    order: list[int],
    sizes: list[int],
    units: int,
    evaluator: _GainEvaluator,
) -> tuple[set[int], float]:
    """One pivot-compensated DP sweep over buffers in ``order``.

    Returns the backtraced chosen set (original indices) and the DP's
    predicted total reduction.
    """
    # L[j]: best predicted reduction using buffers processed so far within
    # capacity j.  decisions[k] is the take/skip bit per column for row k.
    best = [0.0] * (units + 1)
    decisions: list[list[bool]] = []
    # Column context: bitmask of buffers taken at each column by earlier
    # rows — the paper's pbuf_table(·, j) pivot-compensation context.
    context = [0] * (units + 1)

    for i in order:
        size = sizes[i]
        row = [False] * (units + 1)
        if size <= units:
            new_best = list(best)
            # Sweep descending so best[j - size] is still the prior row.
            for j in range(units, size - 1, -1):
                gain = evaluator.gain(i, context[j])
                take = best[j - size] + gain
                if take > best[j]:
                    new_best[j] = take
                    row[j] = True
            best = new_best
        decisions.append(row)
        for j in range(units + 1):
            if row[j]:
                context[j] |= 1 << i

    # Standard knapsack backtrace over the stored decisions.
    chosen_set: set[int] = set()
    j = units
    for k in range(len(order) - 1, -1, -1):
        if decisions[k][j]:
            chosen_set.add(order[k])
            j -= sizes[order[k]]
    return chosen_set, best[units]


def _local_search(
    chosen_set: set[int],
    sizes: list[int],
    units: int,
    evaluator: _GainEvaluator,
    num_buffers: int,
) -> set[int]:
    """Exact-gain local-search refinement of a DP allocation.

    The column-context DP has two blind spots: a buffer whose gain only
    materialises once a partner is resident (Eq. 2's second-tier tensors)
    reads as worthless when its row runs, and an early over-valued pick
    can crowd out a better large buffer.  Repair both with exact-gain
    moves against the final allocation — adds first, then adds with
    evictions — each strictly improving and capacity-respecting, until a
    full sweep changes nothing.
    """
    chosen_set = set(chosen_set)
    remaining = units - sum(sizes[i] for i in chosen_set)
    for _ in range(2 * num_buffers + 1):
        context_mask = 0
        for i in chosen_set:
            context_mask |= 1 << i
        improved = False
        for i in range(num_buffers):
            if i in chosen_set or sizes[i] > remaining:
                continue
            if evaluator.gain(i, context_mask) > 1e-15:
                chosen_set.add(i)
                context_mask |= 1 << i
                remaining -= sizes[i]
                improved = True
        if not improved:
            # Pair-add: two complementary buffers (e.g. the if and wt
            # tensors of one operation) can each be worthless alone yet
            # valuable together — no single-add move ever discovers them.
            pair = None
            spilled = [
                i
                for i in range(num_buffers)
                if i not in chosen_set and sizes[i] <= remaining
            ]
            for a_pos, a in enumerate(spilled):
                for b in spilled[a_pos + 1 :]:
                    if sizes[a] + sizes[b] > remaining:
                        continue
                    # Only pairs that share a node can be complementary.
                    if not (evaluator._relevant_mask[a] >> b & 1):
                        continue
                    trial = (context_mask | 1 << a) | 1 << b
                    affected = set(evaluator._affected[a]) | set(
                        evaluator._affected[b]
                    )
                    delta = sum(
                        evaluator.node_latency_under_mask(n, trial)
                        - evaluator.node_latency_under_mask(n, context_mask)
                        for n in affected
                    )
                    if delta < -1e-15:
                        pair = (a, b)
                        break
                if pair:
                    break
            if pair:
                chosen_set.update(pair)
                remaining -= sizes[pair[0]] + sizes[pair[1]]
                improved = True
        if not improved:
            # Add-with-eviction: offer each spilled buffer; evict the
            # cheapest (per block) residents until it fits, and keep the
            # exchange only when the exact Eq. 1 total improves.
            for inc in range(num_buffers):
                if inc in chosen_set or sizes[inc] > units:
                    continue
                eviction_orders = (
                    sorted(
                        chosen_set,
                        key=lambda i: evaluator.move_delta(context_mask, add=None, drop=i)
                        / sizes[i],
                    ),
                    sorted(chosen_set, key=lambda i: -sizes[i]),
                )
                best_delta = 0.0
                best_evict: list[int] | None = None
                for order in eviction_orders:
                    evict: list[int] = []
                    freed = remaining
                    for out in order:
                        if freed >= sizes[inc]:
                            break
                        evict.append(out)
                        freed += sizes[out]
                    if freed < sizes[inc]:
                        continue
                    trial_mask = context_mask | 1 << inc
                    for out in evict:
                        trial_mask &= ~(1 << out)
                    affected = set(evaluator._affected[inc])
                    for out in evict:
                        affected.update(evaluator._affected[out])
                    delta = sum(
                        evaluator.node_latency_under_mask(n, trial_mask)
                        - evaluator.node_latency_under_mask(n, context_mask)
                        for n in affected
                    )
                    if delta < best_delta - 1e-15:
                        best_delta = delta
                        best_evict = evict
                if best_evict is not None:
                    chosen_set.difference_update(best_evict)
                    chosen_set.add(inc)
                    remaining = units - sum(sizes[i] for i in chosen_set)
                    improved = True
                    break
        if not improved:
            break
    return chosen_set


def greedy_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    granularity: int = URAM_BYTES,
) -> DNNKResult:
    """Density-greedy baseline allocator (ablation reference).

    Repeatedly takes the buffer with the best exact marginal
    reduction-per-byte that still fits, with the same block-granular size
    accounting as DNNK.  Used to quantify what the dynamic program buys
    over the obvious heuristic.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    block_sizes = [
        math.ceil(b.size_bytes / granularity) * granularity for b in buffers
    ]
    remaining = (capacity_bytes // granularity) * granularity
    pool = list(range(len(buffers)))
    onchip: set[str] = set()
    chosen: list[int] = []
    total_gain = 0.0
    while pool:
        best_idx, best_density, best_gain = None, 0.0, 0.0
        for i in pool:
            buf = buffers[i]
            if block_sizes[i] > remaining:
                continue
            before = frozenset(onchip)
            after = frozenset(onchip | set(buf.tensor_names))
            nodes = {n for t in buf.tensors for n in t.affected_nodes}
            gain = sum(
                model.node_latency(n, before) - model.node_latency(n, after)
                for n in nodes
            )
            density = gain / buf.size_bytes
            if density > best_density:
                best_idx, best_density, best_gain = i, density, gain
        if best_idx is None:
            break
        pool.remove(best_idx)
        chosen.append(best_idx)
        onchip.update(buffers[best_idx].tensor_names)
        remaining -= block_sizes[best_idx]
        total_gain += best_gain
    chosen_set = set(chosen)
    return DNNKResult(
        allocated=[buffers[i] for i in sorted(chosen_set)],
        spilled=[b for i, b in enumerate(buffers) if i not in chosen_set],
        onchip_tensors=frozenset(onchip),
        predicted_reduction=total_gain,
        capacity_bytes=capacity_bytes,
        used_bytes=capacity_bytes - remaining,
    )


def exhaustive_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    max_buffers: int = 20,
    granularity: int = URAM_BYTES,
) -> DNNKResult:
    """Optimal allocation by exhaustive subset search (test oracle only).

    Scores every fitting subset with the exact Eq. 1 evaluator, using the
    same block-granular size accounting as :func:`dnnk_allocate` so the
    two are comparable.  Guarded to small instances — the search is
    exponential by construction.

    Raises:
        ValueError: If more than ``max_buffers`` buffers are given.
    """
    if len(buffers) > max_buffers:
        raise ValueError(
            f"exhaustive search limited to {max_buffers} buffers, got {len(buffers)}"
        )
    baseline = model.total_latency()
    block_sizes = [
        math.ceil(b.size_bytes / granularity) * granularity for b in buffers
    ]
    best_subset: tuple[int, ...] = ()
    best_latency = baseline
    for r in range(len(buffers) + 1):
        for subset in itertools.combinations(range(len(buffers)), r):
            size = sum(block_sizes[i] for i in subset)
            if size > capacity_bytes:
                continue
            onchip = frozenset(
                name for i in subset for name in buffers[i].tensor_names
            )
            latency = model.total_latency(onchip)
            if latency < best_latency - 1e-15:
                best_latency = latency
                best_subset = subset
    chosen_set = set(best_subset)
    return DNNKResult(
        allocated=[buffers[i] for i in best_subset],
        spilled=[b for i, b in enumerate(buffers) if i not in chosen_set],
        onchip_tensors=frozenset(
            name for i in best_subset for name in buffers[i].tensor_names
        ),
        predicted_reduction=baseline - best_latency,
        capacity_bytes=capacity_bytes,
        used_bytes=sum(buffers[i].size_bytes for i in best_subset),
    )

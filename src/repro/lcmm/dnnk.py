"""DNNK — the DNN Knapsack on-chip memory allocator (Alg. 1, Sec. 3.3).

The allocation problem is a 0/1 knapsack: items are virtual buffers (size =
largest member tensor), capacity is the on-chip memory left after the tile
buffers, and the value of a buffer is the latency reduction of pinning its
member tensors on chip (Eq. 5).  The complication the paper calls *pivot
compensation* (Eq. 4) is that values are not additive: a node's latency is
the max of its compute and per-interface transfer terms, so the gain of
removing one transfer depends on which of the node's *other* tensors are
already on chip.

Alg. 1 handles this by consulting, while evaluating buffer ``i`` at
capacity column ``j``, the decisions earlier rows made *in the same
column* (``pbuf_table(op.get_idx(d), j)``).  We implement exactly that
context rule, but compute the resulting marginal gain exactly from the
latency model (a per-node max) instead of via the paper's
subtract-the-next-lower-latency bookkeeping — the two coincide where Eq. 4
is well defined, and the exact form extends cleanly to nodes with several
input tensors.  Because the column context is an approximation of the true
knapsack path, the final allocation is always re-scored with the exact
Eq. 1 evaluator; tests compare DNNK against exhaustive search on small
instances.

Two interchangeable gain evaluators back the allocators:

* :class:`_GainEvaluator` — the naive oracle, querying the latency model
  through frozensets per node.  Kept bit-for-bit as the reference.
* :class:`_EngineGainEvaluator` — the hot path, reading the flattened
  slot arrays of a :class:`repro.perf.engine.AllocationEngine` so a node
  query is one pass over small int/float tuples.  Pass ``engine=`` to any
  allocator to select it; results are exactly equal to the oracle's
  because both compute identical per-node sums in identical order.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.hw.sram import URAM_BYTES
from repro.ir.tensor import TensorKind
from repro.lcmm.buffers import VirtualBuffer
from repro.perf.engine import AllocationEngine
from repro.perf.latency import LatencyModel

try:  # pragma: no cover - exercised implicitly everywhere numpy exists
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass
class DNNKResult:
    """Outcome of a DNNK run.

    Attributes:
        allocated: Virtual buffers granted on-chip memory, in input order.
        spilled: Virtual buffers left in DDR.
        onchip_tensors: All tensor values resident on chip.
        predicted_reduction: Exact Eq. 1 reduction of the final chosen
            set versus the empty allocation (re-scored after every
            refinement, so local-search moves are reflected).
        capacity_bytes: The capacity the run was given.
        used_bytes: Block-rounded consumption of the allocated buffers —
            each buffer occupies whole capacity quanta, exactly as the DP
            accounts for it.
    """

    allocated: list[VirtualBuffer]
    spilled: list[VirtualBuffer]
    onchip_tensors: frozenset[str]
    predicted_reduction: float
    capacity_bytes: int
    used_bytes: int


class _GainEvaluator:
    """Exact marginal latency gain of taking one buffer, given a context.

    The context is the set of buffers already decided on-chip in the same
    capacity column.  Gains are memoised per buffer on the *relevant*
    sub-mask — the context bits belonging to buffers that touch the same
    nodes — so repeated columns with identical local context hit the cache.

    This is the naive oracle: every node query rebuilds the resident
    frozenset and walks the latency model.  The engine-backed evaluator
    below reproduces its results bit-for-bit from flattened arrays.
    """

    def __init__(self, model: LatencyModel, buffers: list[VirtualBuffer]) -> None:
        self._model = model
        self._buffers = buffers
        # tensor value name -> index of the buffer holding it.
        self._tensor_buffer: dict[str, int] = {}
        for idx, buf in enumerate(buffers):
            for t in buf.tensors:
                self._tensor_buffer[t.name] = idx
        # buffer index -> nodes it affects.
        self._affected: list[tuple[str, ...]] = []
        # buffer index -> bitmask of buffer indices sharing a node with it.
        self._relevant_mask: list[int] = []
        # buffer index -> frozenset of its member tensor names.
        self._member_tensors: list[frozenset[str]] = [
            frozenset(b.tensor_names) for b in buffers
        ]
        node_to_buffers: dict[str, set[int]] = {}
        for idx, buf in enumerate(buffers):
            nodes = sorted({n for t in buf.tensors for n in t.affected_nodes})
            self._affected.append(tuple(nodes))
            for n in nodes:
                node_to_buffers.setdefault(n, set()).add(idx)
        for idx in range(len(buffers)):
            mask = 0
            for n in self._affected[idx]:
                for other in node_to_buffers[n]:
                    mask |= 1 << other
            self._relevant_mask.append(mask)
        self._cache: list[dict[int, float]] = [dict() for _ in buffers]

    def _node_latency(self, node: str, onchip: frozenset[str]) -> float:
        ll = self._model.layer(node)
        return ll.latency(onchip)

    def _context_tensors(self, node: str, context_mask: int) -> set[str]:
        """Tensors of ``node`` resident on-chip under a context mask."""
        resident = set()
        for slot in self._model.layer(node).slots:
            buf_idx = self._tensor_buffer.get(slot.tensor)
            if buf_idx is not None and context_mask >> buf_idx & 1:
                resident.add(slot.tensor)
        return resident

    def node_latency_under_mask(self, node: str, context_mask: int) -> float:
        """Exact Eq. 1 latency of one node given a buffer bitmask."""
        return self._node_latency(node, frozenset(self._context_tensors(node, context_mask)))

    def _affected_union(self, indices: tuple[int, ...]) -> list[str]:
        affected: set[str] = set()
        for i in indices:
            affected.update(self._affected[i])
        return sorted(affected)

    def move_delta(self, context_mask: int, add: int | None, drop: int | None) -> float:
        """Exact latency change of adding/dropping buffers (negative = better)."""
        new_mask = context_mask
        indices = []
        if drop is not None:
            new_mask &= ~(1 << drop)
            indices.append(drop)
        if add is not None:
            new_mask |= 1 << add
            indices.append(add)
        delta = 0.0
        for node in self._affected_union(tuple(indices)):
            delta += self.node_latency_under_mask(node, new_mask)
            delta -= self.node_latency_under_mask(node, context_mask)
        return delta

    def pair_delta(self, context_mask: int, a: int, b: int) -> float:
        """Exact latency change of adding buffers ``a`` and ``b`` together."""
        trial = (context_mask | 1 << a) | 1 << b
        delta = 0.0
        for node in self._affected_union((a, b)):
            delta += self.node_latency_under_mask(node, trial)
            delta -= self.node_latency_under_mask(node, context_mask)
        return delta

    def exchange_delta(self, context_mask: int, inc: int, evict: list[int]) -> float:
        """Exact latency change of adding ``inc`` while evicting ``evict``."""
        trial = context_mask | 1 << inc
        for out in evict:
            trial &= ~(1 << out)
        delta = 0.0
        for node in self._affected_union((inc, *evict)):
            delta += self.node_latency_under_mask(node, trial)
            delta -= self.node_latency_under_mask(node, context_mask)
        return delta

    def relevant_pair(self, a: int, b: int) -> bool:
        """Whether two buffers share a node (can be complementary)."""
        return bool(self._relevant_mask[a] >> b & 1)

    def gain(self, buffer_index: int, context_mask: int) -> float:
        """Marginal latency reduction of taking ``buffer_index``.

        Args:
            buffer_index: Buffer under consideration.
            context_mask: Bitmask of buffers already on-chip in this
                capacity column (earlier rows' decisions).
        """
        key = context_mask & self._relevant_mask[buffer_index]
        cached = self._cache[buffer_index].get(key)
        if cached is not None:
            return cached
        members = self._member_tensors[buffer_index]
        total = 0.0
        for node in self._affected[buffer_index]:
            before = frozenset(self._context_tensors(node, context_mask))
            after = frozenset(before | members)
            total += self._node_latency(node, before) - self._node_latency(node, after)
        self._cache[buffer_index][key] = total
        return total

    def total_latency(self, chosen: set[int]) -> float:
        """Exact end-to-end latency with a chosen buffer set on chip."""
        onchip = frozenset(
            name for i in chosen for name in self._buffers[i].tensor_names
        )
        return self._model.total_latency(onchip)


class _EngineGainEvaluator:
    """Engine-backed gain evaluator — the allocators' hot path.

    Reads the flattened per-node slot arrays of an
    :class:`AllocationEngine` (never its mutable state: DNNK evaluates
    allocations without residuals or fractions, exactly like the naive
    evaluator) and binds each candidate slot to the virtual buffer holding
    its tensor.  A node query is then one pass over small tuples; the
    per-kind sums accumulate in the same slot order as
    ``LayerLatency.slot_latency`` and per-buffer node iteration follows
    the naive evaluator's name-sorted order, so every gain, delta and
    total is bit-for-bit equal to the oracle's.
    """

    def __init__(self, engine: AllocationEngine, buffers: list[VirtualBuffer]) -> None:
        self._engine = engine
        self._buffers = buffers
        node_index = engine.node_index
        node_names = engine.node_names
        self._by_name = node_names.__getitem__

        tid_buffer: dict[int, int] = {}
        for bi, buf in enumerate(buffers):
            for t in buf.tensors:
                tid = engine.tensor_index.get(t.name)
                if tid is not None:
                    tid_buffer[tid] = bi

        # Per-buffer affected nodes as schedule indices, in the naive
        # evaluator's name-sorted order (gains sum per-node differences in
        # exactly that order).
        self._affected: list[tuple[int, ...]] = []
        node_to_buffers: dict[int, set[int]] = {}
        for bi, buf in enumerate(buffers):
            names = sorted({n for t in buf.tensors for n in t.affected_nodes})
            idxs = tuple(node_index[n] for n in names if n in node_index)
            self._affected.append(idxs)
            for ni in idxs:
                node_to_buffers.setdefault(ni, set()).add(bi)
        self._relevant_mask: list[int] = []
        for bi in range(len(buffers)):
            mask = 0
            for ni in self._affected[bi]:
                for other in node_to_buffers[ni]:
                    mask |= 1 << other
            self._relevant_mask.append(mask)

        # Touched nodes only: (kind, owning buffer or -1, latency) tuples,
        # plus the node-local relevant mask (bits of buffers with a slot
        # on this node) — a node's latency depends on those bits alone,
        # which keys the per-node memo.
        self._node_slots: dict[int, tuple[tuple, tuple, tuple]] = {}
        self._node_mask: dict[int, int] = {}
        self._node_cache: dict[int, dict[int, float]] = {}
        for ni in node_to_buffers:
            bufs = tuple(tid_buffer.get(t, -1) for t in engine.slot_tids[ni])
            self._node_slots[ni] = (engine.slot_kinds[ni], bufs, engine.slot_lats[ni])
            local = 0
            for buf in bufs:
                if buf >= 0:
                    local |= 1 << buf
            self._node_mask[ni] = local
            self._node_cache[ni] = {0: engine.base_node_lat[ni]}

        self._cache: list[dict[int, float]] = [dict() for _ in buffers]

    # -- node queries ---------------------------------------------------
    def node_latency_mask(self, ni: int, mask: int) -> float:
        """Eq. 1 latency of the node at schedule index ``ni`` under a mask.

        Memoised on the node-local sub-mask: only the bits of buffers
        with a slot on this node can change the value, and the memoised
        value is exactly the recomputed one, so caching never perturbs
        parity.
        """
        entry = self._node_slots.get(ni)
        if entry is None:
            return self._engine.base_node_lat[ni]
        key = mask & self._node_mask[ni]
        cache = self._node_cache[ni]
        cached = cache.get(key)
        if cached is not None:
            return cached
        kinds, bufs, lats = entry
        s0 = s1 = s2 = 0.0
        for kind, buf, lat in zip(kinds, bufs, lats):
            if buf >= 0 and mask >> buf & 1:
                continue
            if kind == 0:
                s0 += lat
            elif kind == 1:
                s1 += lat
            else:
                s2 += lat
        value = max(self._engine.compute[ni], s0, s1, s2)
        cache[key] = value
        return value

    def node_latency_under_mask(self, node: str, context_mask: int) -> float:
        """Name-keyed variant (API parity with the naive evaluator)."""
        return self.node_latency_mask(self._engine.node_index[node], context_mask)

    def total_latency(self, chosen: set[int]) -> float:
        """Exact end-to-end latency with a chosen buffer set on chip.

        Sums per-node latencies in schedule order — untouched nodes keep
        their all-off-chip value — matching
        ``LatencyModel.total_latency`` bit-for-bit.
        """
        mask = 0
        for i in chosen:
            mask |= 1 << i
        return self.total_latency_mask(mask)

    def total_latency_mask(self, mask: int) -> float:
        node_slots = self._node_slots
        total = 0.0
        for ni, base in enumerate(self._engine.base_node_lat):
            if ni in node_slots:
                total += self.node_latency_mask(ni, mask)
            else:
                total += base
        return total

    # -- move evaluation ------------------------------------------------
    def _affected_union(self, indices: tuple[int, ...]) -> list[int]:
        affected: set[int] = set()
        for i in indices:
            affected.update(self._affected[i])
        return sorted(affected, key=self._by_name)

    def move_delta(self, context_mask: int, add: int | None, drop: int | None) -> float:
        """Exact latency change of adding/dropping buffers (negative = better)."""
        new_mask = context_mask
        indices = []
        if drop is not None:
            new_mask &= ~(1 << drop)
            indices.append(drop)
        if add is not None:
            new_mask |= 1 << add
            indices.append(add)
        delta = 0.0
        for ni in self._affected_union(tuple(indices)):
            delta += self.node_latency_mask(ni, new_mask)
            delta -= self.node_latency_mask(ni, context_mask)
        return delta

    def pair_delta(self, context_mask: int, a: int, b: int) -> float:
        """Exact latency change of adding buffers ``a`` and ``b`` together."""
        trial = (context_mask | 1 << a) | 1 << b
        delta = 0.0
        for ni in self._affected_union((a, b)):
            delta += self.node_latency_mask(ni, trial)
            delta -= self.node_latency_mask(ni, context_mask)
        return delta

    def exchange_delta(self, context_mask: int, inc: int, evict: list[int]) -> float:
        """Exact latency change of adding ``inc`` while evicting ``evict``."""
        trial = context_mask | 1 << inc
        for out in evict:
            trial &= ~(1 << out)
        delta = 0.0
        for ni in self._affected_union((inc, *evict)):
            delta += self.node_latency_mask(ni, trial)
            delta -= self.node_latency_mask(ni, context_mask)
        return delta

    def relevant_pair(self, a: int, b: int) -> bool:
        """Whether two buffers share a node (can be complementary)."""
        return bool(self._relevant_mask[a] >> b & 1)

    def gain(self, buffer_index: int, context_mask: int) -> float:
        """Marginal latency reduction of taking ``buffer_index``."""
        key = context_mask & self._relevant_mask[buffer_index]
        cache = self._cache[buffer_index]
        cached = cache.get(key)
        if cached is not None:
            self._engine.stats.gain_cache_hits += 1
            return cached
        self._engine.stats.gain_cache_misses += 1
        bit = 1 << buffer_index
        node_mask = self._node_mask
        node_cache = self._node_cache
        total = 0.0
        # Inlined node lookups; each per-node term accumulates as a single
        # difference, exactly like the naive evaluator's gain loop.
        for ni in self._affected[buffer_index]:
            nc = node_cache[ni]
            kb = context_mask & node_mask[ni]
            before = nc.get(kb)
            if before is None:
                before = self.node_latency_mask(ni, kb)
            ka = kb | bit
            after = nc.get(ka)
            if after is None:
                after = self.node_latency_mask(ni, ka)
            total += before - after
        cache[key] = total
        return total


def _make_evaluator(
    model: LatencyModel,
    buffers: list[VirtualBuffer],
    engine: AllocationEngine | None,
):
    """Select the gain evaluator: engine-backed hot path or naive oracle."""
    if engine is not None:
        return _EngineGainEvaluator(engine, buffers)
    return _GainEvaluator(model, buffers)


def dnnk_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    granularity: int = URAM_BYTES,
    engine: AllocationEngine | None = None,
) -> DNNKResult:
    """Run the DNNK dynamic program (Alg. 1 of the paper).

    Args:
        buffers: Unallocated virtual buffer list (feature + weight).
        model: Latency model supplying the operation latency table.
        capacity_bytes: On-chip memory available for tensor buffers
            (``Rsram`` in the paper).
        granularity: Capacity quantum of the DP sweep; defaults to one
            URAM block, the unit the device allocates buffers in.
        engine: Optional :class:`AllocationEngine`; when given, gains and
            re-scores run on its flattened arrays (and the DP sweep is
            vectorised over capacity columns) with results identical to
            the naive evaluator's.

    Returns:
        The allocation, with decisions backtraced from the DP memo.
    """
    if capacity_bytes < 0:
        raise ValueError("capacity_bytes must be non-negative")
    if granularity <= 0:
        raise ValueError("granularity must be positive")

    units = capacity_bytes // granularity
    sizes = [math.ceil(b.size_bytes / granularity) for b in buffers]
    evaluator = _make_evaluator(model, buffers, engine)
    dp = _dp_pass
    if engine is not None and _np is not None and len(buffers) <= 63:
        dp = _dp_pass_vector

    # The DP's column-context gains depend on the order buffers are
    # processed in, so run it under two orderings — the caller's list
    # order (largest-first, from the colouring) and descending
    # value-density — refine each with local search, and keep whichever
    # scores better under the exact Eq. 1 evaluator.
    orders = [list(range(len(buffers)))]
    density_order = sorted(
        range(len(buffers)),
        key=lambda i: -buffers[i].total_latency_reduction / max(1, sizes[i]),
    )
    if density_order != orders[0]:
        orders.append(density_order)

    best_chosen: set[int] = set()
    best_latency = float("inf")
    for order in orders:
        chosen_set, _ = dp(order, sizes, units, evaluator)
        chosen_set = _local_search(chosen_set, sizes, units, evaluator, len(buffers))
        latency = evaluator.total_latency(chosen_set)
        if latency < best_latency - 1e-18:
            best_latency = latency
            best_chosen = chosen_set
    chosen_set = best_chosen
    chosen = sorted(chosen_set)

    # Re-score the *final* set exactly: local search may have moved away
    # from the DP's backtraced choice, so the DP objective would be stale.
    baseline = evaluator.total_latency(set())
    allocated = [buffers[i] for i in chosen]
    spilled = [b for i, b in enumerate(buffers) if i not in chosen_set]
    onchip = frozenset(name for i in chosen for name in buffers[i].tensor_names)
    return DNNKResult(
        allocated=allocated,
        spilled=spilled,
        onchip_tensors=onchip,
        predicted_reduction=baseline - best_latency,
        capacity_bytes=capacity_bytes,
        used_bytes=_block_rounded_bytes(buffers, chosen, granularity),
    )


def _block_rounded_bytes(
    buffers: list[VirtualBuffer], chosen, granularity: int
) -> int:
    """Block-granular consumption of a chosen buffer set.

    Every allocator reports this same quantity so ``used_bytes`` is
    comparable across DNNK, greedy, exhaustive and branch-and-bound.
    """
    return sum(
        math.ceil(buffers[i].size_bytes / granularity) * granularity for i in chosen
    )


def _dp_pass(
    order: list[int],
    sizes: list[int],
    units: int,
    evaluator,
) -> tuple[set[int], float]:
    """One pivot-compensated DP sweep over buffers in ``order``.

    Returns the backtraced chosen set (original indices) and the DP's
    predicted total reduction.
    """
    # L[j]: best predicted reduction using buffers processed so far within
    # capacity j.  decisions[k] is the take/skip bit per column for row k.
    best = [0.0] * (units + 1)
    decisions: list[list[bool]] = []
    # Column context: bitmask of buffers taken at each column by earlier
    # rows — the paper's pbuf_table(·, j) pivot-compensation context.
    context = [0] * (units + 1)

    for i in order:
        size = sizes[i]
        row = [False] * (units + 1)
        if size <= units:
            new_best = list(best)
            # Sweep descending so best[j - size] is still the prior row.
            for j in range(units, size - 1, -1):
                gain = evaluator.gain(i, context[j])
                take = best[j - size] + gain
                if take > best[j]:
                    new_best[j] = take
                    row[j] = True
            best = new_best
        decisions.append(row)
        for j in range(units + 1):
            if row[j]:
                context[j] |= 1 << i

    # Standard knapsack backtrace over the stored decisions.
    chosen_set: set[int] = set()
    j = units
    for k in range(len(order) - 1, -1, -1):
        if decisions[k][j]:
            chosen_set.add(order[k])
            j -= sizes[order[k]]
    return chosen_set, best[units]


def _dp_pass_vector(
    order: list[int],
    sizes: list[int],
    units: int,
    evaluator,
) -> tuple[set[int], float]:
    """Column-vectorised DP sweep — identical decisions to :func:`_dp_pass`.

    The per-column work of a row is one gain lookup keyed on the context's
    relevant sub-mask; across a row most columns share a handful of
    distinct keys, so the sweep reduces to ``np.unique`` over the key
    vector plus one gain evaluation per distinct key.  All arithmetic
    (``best[j - size] + gain`` and the ``>`` comparison) is the same
    float64 operation as the scalar loop, so the backtraced set is
    bit-for-bit the same.
    """
    best = _np.zeros(units + 1)
    context = _np.zeros(units + 1, dtype=_np.uint64)
    decisions: list = []

    for i in order:
        size = sizes[i]
        row = _np.zeros(units + 1, dtype=bool)
        if size <= units:
            rel = _np.uint64(evaluator._relevant_mask[i])
            keys = context[size:] & rel
            uniq, inverse = _np.unique(keys, return_inverse=True)
            gains = _np.fromiter(
                (evaluator.gain(i, int(k)) for k in uniq),
                dtype=_np.float64,
                count=len(uniq),
            )
            take = best[: units + 1 - size] + gains[inverse]
            better = take > best[size:]
            if better.any():
                new_best = best.copy()
                new_best[size:][better] = take[better]
                best = new_best
                row[size:] = better
                context[size:][better] |= _np.uint64(1 << i)
        decisions.append(row)

    chosen_set: set[int] = set()
    j = units
    for k in range(len(order) - 1, -1, -1):
        if decisions[k][j]:
            chosen_set.add(order[k])
            j -= sizes[order[k]]
    return chosen_set, float(best[units])


def _local_search(
    chosen_set: set[int],
    sizes: list[int],
    units: int,
    evaluator,
    num_buffers: int,
) -> set[int]:
    """Exact-gain local-search refinement of a DP allocation.

    The column-context DP has two blind spots: a buffer whose gain only
    materialises once a partner is resident (Eq. 2's second-tier tensors)
    reads as worthless when its row runs, and an early over-valued pick
    can crowd out a better large buffer.  Repair both with exact-gain
    moves against the final allocation — adds first, then adds with
    evictions — each strictly improving and capacity-respecting, until a
    full sweep changes nothing.
    """
    chosen_set = set(chosen_set)
    remaining = units - sum(sizes[i] for i in chosen_set)
    for _ in range(2 * num_buffers + 1):
        context_mask = 0
        for i in chosen_set:
            context_mask |= 1 << i
        improved = False
        for i in range(num_buffers):
            if i in chosen_set or sizes[i] > remaining:
                continue
            if evaluator.gain(i, context_mask) > 1e-15:
                chosen_set.add(i)
                context_mask |= 1 << i
                remaining -= sizes[i]
                improved = True
        if not improved:
            # Pair-add: two complementary buffers (e.g. the if and wt
            # tensors of one operation) can each be worthless alone yet
            # valuable together — no single-add move ever discovers them.
            pair = None
            spilled = [
                i
                for i in range(num_buffers)
                if i not in chosen_set and sizes[i] <= remaining
            ]
            for a_pos, a in enumerate(spilled):
                for b in spilled[a_pos + 1 :]:
                    if sizes[a] + sizes[b] > remaining:
                        continue
                    # Only pairs that share a node can be complementary.
                    if not evaluator.relevant_pair(a, b):
                        continue
                    if evaluator.pair_delta(context_mask, a, b) < -1e-15:
                        pair = (a, b)
                        break
                if pair:
                    break
            if pair:
                chosen_set.update(pair)
                remaining -= sizes[pair[0]] + sizes[pair[1]]
                improved = True
        if not improved:
            # Add-with-eviction: offer each spilled buffer; evict the
            # cheapest (per block) residents until it fits, and keep the
            # exchange only when the exact Eq. 1 total improves.
            for inc in range(num_buffers):
                if inc in chosen_set or sizes[inc] > units:
                    continue
                eviction_orders = (
                    sorted(
                        chosen_set,
                        key=lambda i: evaluator.move_delta(context_mask, add=None, drop=i)
                        / sizes[i],
                    ),
                    sorted(chosen_set, key=lambda i: -sizes[i]),
                )
                best_delta = 0.0
                best_evict: list[int] | None = None
                for order in eviction_orders:
                    evict: list[int] = []
                    freed = remaining
                    for out in order:
                        if freed >= sizes[inc]:
                            break
                        evict.append(out)
                        freed += sizes[out]
                    if freed < sizes[inc]:
                        continue
                    delta = evaluator.exchange_delta(context_mask, inc, evict)
                    if delta < best_delta - 1e-15:
                        best_delta = delta
                        best_evict = evict
                if best_evict is not None:
                    chosen_set.difference_update(best_evict)
                    chosen_set.add(inc)
                    remaining = units - sum(sizes[i] for i in chosen_set)
                    improved = True
                    break
        if not improved:
            break
    return chosen_set


def greedy_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    granularity: int = URAM_BYTES,
    engine: AllocationEngine | None = None,
) -> DNNKResult:
    """Density-greedy baseline allocator (ablation reference).

    Repeatedly takes the buffer with the best exact marginal
    reduction-per-byte that still fits, with the same block-granular size
    accounting as DNNK.  Used to quantify what the dynamic program buys
    over the obvious heuristic.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    evaluator = _make_evaluator(model, buffers, engine)
    block_sizes = [
        math.ceil(b.size_bytes / granularity) * granularity for b in buffers
    ]
    remaining = (capacity_bytes // granularity) * granularity
    pool = list(range(len(buffers)))
    chosen: list[int] = []
    context_mask = 0
    while pool:
        best_idx, best_density, best_gain = None, 0.0, 0.0
        for i in pool:
            if block_sizes[i] > remaining:
                continue
            gain = evaluator.gain(i, context_mask)
            density = gain / buffers[i].size_bytes
            if density > best_density:
                best_idx, best_density, best_gain = i, density, gain
        if best_idx is None:
            break
        pool.remove(best_idx)
        chosen.append(best_idx)
        context_mask |= 1 << best_idx
        remaining -= block_sizes[best_idx]
    chosen_set = set(chosen)
    onchip = frozenset(
        name for i in chosen_set for name in buffers[i].tensor_names
    )
    # Report the exact reduction of the final set, not the accumulated
    # marginal gains (which drift by pair effects and float rounding).
    reduction = (
        evaluator.total_latency(set()) - evaluator.total_latency(chosen_set)
    )
    return DNNKResult(
        allocated=[buffers[i] for i in sorted(chosen_set)],
        spilled=[b for i, b in enumerate(buffers) if i not in chosen_set],
        onchip_tensors=onchip,
        predicted_reduction=reduction,
        capacity_bytes=capacity_bytes,
        used_bytes=_block_rounded_bytes(buffers, chosen_set, granularity),
    )


def exhaustive_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    max_buffers: int = 20,
    granularity: int = URAM_BYTES,
    engine: AllocationEngine | None = None,
) -> DNNKResult:
    """Optimal allocation by exhaustive subset search (test oracle only).

    Scores every fitting subset with the exact Eq. 1 evaluator, using the
    same block-granular size accounting as :func:`dnnk_allocate` so the
    two are comparable.  Guarded to small instances — the search is
    exponential by construction.

    Without an engine, subsets are enumerated by ascending size through
    ``itertools.combinations`` and each is scored from scratch.  With an
    engine, the sweep walks the binary-reflected Gray code so consecutive
    subsets differ by one buffer: each step recomputes only that buffer's
    affected nodes, and full totals are only re-summed when the running
    total signals a potential improvement.  Both modes find a subset of
    the same optimal latency (tie subsets may differ with the visit
    order).

    Raises:
        ValueError: If more than ``max_buffers`` buffers are given.
    """
    if len(buffers) > max_buffers:
        raise ValueError(
            f"exhaustive search limited to {max_buffers} buffers, got {len(buffers)}"
        )
    block_sizes = [
        math.ceil(b.size_bytes / granularity) * granularity for b in buffers
    ]
    if engine is not None:
        best_subset, best_latency, baseline = _gray_code_sweep(
            _EngineGainEvaluator(engine, buffers), block_sizes, capacity_bytes
        )
    else:
        baseline = model.total_latency()
        best_subset = set()
        best_latency = baseline
        for r in range(len(buffers) + 1):
            for subset in itertools.combinations(range(len(buffers)), r):
                size = sum(block_sizes[i] for i in subset)
                if size > capacity_bytes:
                    continue
                onchip = frozenset(
                    name for i in subset for name in buffers[i].tensor_names
                )
                latency = model.total_latency(onchip)
                if latency < best_latency - 1e-15:
                    best_latency = latency
                    best_subset = set(subset)
    chosen = sorted(best_subset)
    return DNNKResult(
        allocated=[buffers[i] for i in chosen],
        spilled=[b for i, b in enumerate(buffers) if i not in best_subset],
        onchip_tensors=frozenset(
            name for i in chosen for name in buffers[i].tensor_names
        ),
        predicted_reduction=baseline - best_latency,
        capacity_bytes=capacity_bytes,
        used_bytes=_block_rounded_bytes(buffers, chosen, granularity),
    )


#: Gray-code sweep: steps between exact re-sums of the running total.
#: Per-node latencies are always exact (each toggle recomputes affected
#: nodes from their slots); only the accumulated sum can drift, by at most
#: ~one ulp per step, so re-summing every 1024 steps keeps the drift well
#: under the improvement margin the pre-filter guards.
_GRAY_RESYNC_STEPS = 1024


def _gray_code_sweep(
    evaluator: _EngineGainEvaluator,
    block_sizes: list[int],
    capacity_bytes: int,
) -> tuple[set[int], float, float]:
    """Visit all subsets in Gray-code order with O(affected) step cost.

    Returns ``(best_subset, best_latency, baseline)`` where latencies are
    exact (re-summed, never trusted from the incremental accumulator).
    """
    n = len(block_sizes)
    base_lat = evaluator._engine.base_node_lat
    node_lat = {ni: base_lat[ni] for ni in evaluator._node_slots}

    def exact_total() -> float:
        total = 0.0
        for ni, base in enumerate(base_lat):
            total += node_lat.get(ni, base)
        return total

    baseline = exact_total()
    best_latency = baseline
    best_mask = 0
    running = baseline
    mask = 0
    size = 0
    since_sync = 0
    for g in range(1, 1 << n):
        bit = (g & -g).bit_length() - 1
        flip = 1 << bit
        mask ^= flip
        size += block_sizes[bit] if mask & flip else -block_sizes[bit]
        for ni in evaluator._affected[bit]:
            new = evaluator.node_latency_mask(ni, mask)
            running += new - node_lat[ni]
            node_lat[ni] = new
        since_sync += 1
        if since_sync >= _GRAY_RESYNC_STEPS:
            running = exact_total()
            since_sync = 0
        if size > capacity_bytes:
            continue
        # Pre-filter on the (possibly drifted) running total with a guard
        # band tighter than the resync drift bound; confirm with an exact
        # re-sum before accepting, using the same margin as the naive
        # enumeration.
        if running < best_latency - 8e-16:
            exact = exact_total()
            running = exact
            since_sync = 0
            if exact < best_latency - 1e-15:
                best_latency = exact
                best_mask = mask
    best_subset = {i for i in range(n) if best_mask >> i & 1}
    return best_subset, best_latency, baseline

"""The LCMM framework — a thin driver over the pass pipeline (Fig. 4).

The four techniques of the paper's flow diagram — feature buffer reuse
(Sec. 3.1), weight buffer prefetching (Sec. 3.2), DNNK allocation
(Sec. 3.3) and buffer splitting (Sec. 3.4) — live in
:mod:`repro.lcmm.passes` as registered :class:`~repro.lcmm.passes.Pass`
classes.  :func:`run_lcmm` only assembles the pipeline
(:func:`~repro.lcmm.passes.default_pipeline` from the options, or a
caller-supplied pass list), executes it through a
:class:`~repro.lcmm.passes.PassManager`, and packages the context
artifacts into an :class:`LCMMResult`.

**Fault tolerance.**  The paper's value proposition is that LCMM never
does worse than UMM, so a crashing pass must degrade, not abort: by
default :func:`run_lcmm` falls back along a degradation chain — the
requested pipeline, then plain DNNK, then the greedy allocator, then a
pure UMM result built without any pass machinery at all — and records
the level it landed on in :attr:`LCMMResult.degradation_level` plus a
``degraded`` diagnostic per abandoned attempt.  ``fallback=False``
restores fail-fast behaviour; ``strict=True`` additionally runs each
pass's invariant check in-line (see
:class:`~repro.lcmm.passes.PassManager`).

The result carries the exact end-to-end latency (Eq. 1 with prefetch
residuals), the physical buffer map, the utilisation metrics Tab. 1,
Tab. 2 and Fig. 8 report — and, new with the pipeline, the structured
per-pass diagnostics and the executed pipeline description that
``lcmm run <model> --explain`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import DeadlineExceeded, PassError, PipelineError, ReproError
from repro.fingerprint import compile_key
from repro.hw.sram import BRAM36_BYTES, SRAMUsage, blocks_for
from repro.obs.metrics import registry as obs_registry
from repro.obs.spans import annotate as obs_annotate
from repro.obs.spans import enabled as obs_enabled
from repro.obs.spans import span as obs_span
from repro.ir.graph import ComputationGraph
from repro.lcmm.buffers import PhysicalBuffer
from repro.lcmm.feature_reuse import FeatureReuseResult
from repro.lcmm.options import LCMMOptions
from repro.lcmm.dnnk import DNNKResult
from repro.lcmm.passes import (
    CompilationContext,
    Pass,
    PassDiagnostic,
    PassManager,
    default_pipeline,
    empty_dnnk_result,
    empty_feature_result,
    empty_prefetch_result,
)
from repro.lcmm.prefetch import PrefetchResult
from repro.perf.engine import EngineStats
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig

if TYPE_CHECKING:
    from repro.cache.store import CompilationCache

__all__ = ["LCMMOptions", "LCMMResult", "run_lcmm", "umm_only_result"]


@dataclass
class LCMMResult:
    """Outcome of an LCMM run.

    Attributes:
        graph_name: Model evaluated.
        accel: The design point.
        latency: Exact end-to-end latency (Eq. 1 + prefetch residuals).
        throughput: Ops/second over the network's nominal operations.
        onchip_tensors: Tensor values resident on chip.
        residuals: Unhidden prefetch seconds per on-chip weight tensor.
        node_latencies: Per executed node latency under the allocation.
        feature_result: Feature reuse pass output.
        prefetch_result: Weight prefetching pass output.
        dnnk_result: Final allocator decision.
        physical_buffers: On-chip buffers with block placement.
        sram_usage: Block-level memory consumption (tile + tensor buffers).
        splitting_iterations: Buffer splits that were kept.
    """

    graph_name: str
    accel: AcceleratorConfig
    latency: float
    throughput: float
    onchip_tensors: frozenset[str]
    residuals: dict[str, float]
    node_latencies: dict[str, float]
    feature_result: FeatureReuseResult
    prefetch_result: PrefetchResult
    dnnk_result: DNNKResult
    physical_buffers: list[PhysicalBuffer]
    sram_usage: SRAMUsage
    splitting_iterations: int
    #: Partial residency per spilled tensor (extension; empty unless
    #: ``LCMMOptions.fractional_fill`` is enabled).
    fractions: dict[str, float] = field(default_factory=dict)
    #: Evaluation-engine counters and per-pass wall time (``None`` when
    #: the run used the naive evaluator).
    engine_stats: EngineStats | None = None
    #: Structured per-pass records (splits kept, refinement verdicts,
    #: stranded capacity, ...) in emission order.
    diagnostics: tuple[PassDiagnostic, ...] = ()
    #: The executed pipeline as ``"feature_reuse -> ... -> placement"``.
    pipeline_description: str = ""
    #: Per-pass wall seconds in execution order (available on the naive
    #: path too, unlike ``engine_stats.pass_seconds``).
    pass_timings: tuple[tuple[str, float], ...] = ()
    #: How far the fallback chain had to degrade: 0 = the requested
    #: pipeline succeeded, each +1 is one abandoned attempt (see
    #: ``degradation_path``); the floor is a pure UMM result.
    degradation_level: int = 0
    #: Labels of the abandoned attempts, in order (e.g. ``("dnnk-splitting",)``).
    degradation_path: tuple[str, ...] = ()
    #: Accepted fused-layer tiling edges (empty unless
    #: ``LCMMOptions.fuse_layers`` ran and improved the objective).
    fused_edges: tuple = ()
    #: Scheduled DMA timeline (``None`` unless
    #: ``LCMMOptions.transfer_schedule`` ran).
    transfer_timeline: object | None = None

    @property
    def tops(self) -> float:
        """Throughput in tera-ops/second."""
        return self.throughput / 1e12

    @property
    def sram_utilization(self) -> float:
        """Fraction of device SRAM consumed (tile + tensor buffers)."""
        return self.sram_usage.used_bytes / self.accel.device.sram_bytes

    def percentage_onchip_layers(self, model: LatencyModel) -> float:
        """POL metric of Tab. 2: memory-bound layers that benefit.

        A memory-bound layer benefits when at least one of its tensors is
        resident on chip.
        """
        bound = model.memory_bound_nodes()
        if not bound:
            return 0.0
        benefiting = 0
        for node in bound:
            slots = model.layer(node).slots
            if any(s.tensor in self.onchip_tensors for s in slots):
                benefiting += 1
        return benefiting / len(bound)


def package_result(ctx: CompilationContext, manager: PassManager) -> LCMMResult:
    """Assemble an :class:`LCMMResult` from an executed pipeline's context.

    Raises:
        repro.lcmm.passes.PipelineError: When the pipeline did not
            produce the ``"allocation"``, ``"score"`` and ``"placement"``
            artifacts a result requires.
    """
    allocation = ctx.require("allocation")
    score = ctx.require("score")
    placement = ctx.require("placement")
    feature = ctx.get("feature")
    prefetch = ctx.get("prefetch")
    fusion = ctx.get("fusion")
    return LCMMResult(
        graph_name=ctx.graph.name,
        accel=ctx.accel,
        latency=score.latency,
        throughput=ctx.model.throughput(score.latency),
        onchip_tensors=score.onchip,
        residuals=score.residuals,
        node_latencies=score.node_latencies,
        feature_result=feature if feature is not None else empty_feature_result(),
        prefetch_result=prefetch if prefetch is not None else empty_prefetch_result(),
        dnnk_result=allocation.result,
        physical_buffers=placement.buffers,
        sram_usage=placement.usage,
        splitting_iterations=allocation.splitting_iterations,
        fractions=ctx.get("fractions", {}),
        engine_stats=ctx.stats,
        diagnostics=tuple(ctx.diagnostics),
        pipeline_description=manager.description(),
        pass_timings=manager.timings(),
        fused_edges=fusion.edges if fusion is not None else (),
        transfer_timeline=ctx.get("transfer_schedule"),
    )


def umm_only_result(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    model: LatencyModel | None = None,
) -> LCMMResult:
    """The degradation floor: a UMM schedule packaged as an LCMM result.

    Built with plain loops over the pure latency model — no passes, no
    engine, no colouring — so it stays reachable when any of that
    machinery is the thing that is failing.  Every tensor streams from
    DDR; latency equals the UMM latency by construction, which satisfies
    every invariant :func:`repro.lcmm.validate.validate_result` checks.
    """
    model = model or LatencyModel(graph, accel)
    latency = model.umm_latency()
    usage = SRAMUsage(budget=accel.device.sram)
    usage.bram36_used += blocks_for(accel.tile_buffer_bytes(), BRAM36_BYTES)
    return LCMMResult(
        graph_name=graph.name,
        accel=accel,
        latency=latency,
        throughput=model.throughput(latency),
        onchip_tensors=frozenset(),
        residuals={},
        node_latencies={name: model.node_latency(name) for name in model.nodes()},
        feature_result=empty_feature_result(),
        prefetch_result=empty_prefetch_result(),
        dnnk_result=empty_dnnk_result(),
        physical_buffers=[],
        sram_usage=usage,
        splitting_iterations=0,
        pipeline_description="umm-only",
    )


#: Default per-pass recovery policy of the fallback-enabled driver: the
#: optional improvement passes are skippable (the pipeline is already in
#: a valid scored state when they run), everything else degrades the
#: whole attempt.
_DEFAULT_RECOVERY = {"refinement": "skip", "fractional_fill": "skip"}


def _degradation_chain(
    options: LCMMOptions,
    pipeline: Sequence[Pass] | None,
) -> list[tuple[str, LCMMOptions | None]]:
    """The attempts :func:`run_lcmm` makes, strongest first.

    Each entry is ``(label, attempt_options)``; ``attempt_options`` is
    ``None`` for the final UMM-only floor, which bypasses the pass
    machinery entirely.  Levels identical to the requested configuration
    are dropped so the chain never repeats a failed attempt.
    """
    if pipeline is not None:
        primary = "custom"
    elif options.use_greedy:
        primary = "greedy"
    elif options.splitting:
        primary = "dnnk-splitting"
    else:
        primary = "dnnk"
    if pipeline is None and (options.fuse_layers or options.transfer_schedule):
        primary = f"fused-{primary}"
    safe = replace(
        options,
        splitting=False,
        use_greedy=False,
        prefetch_refinement=0,
        fractional_fill=False,
        fuse_layers=False,
        transfer_schedule=False,
    )
    chain: list[tuple[str, LCMMOptions | None]] = [(primary, options)]
    if primary != "dnnk":
        chain.append(("dnnk", safe))
    if primary != "greedy":
        chain.append(("greedy", replace(safe, use_greedy=True)))
    chain.append(("umm-only", None))
    return chain


def run_lcmm(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    options: LCMMOptions | None = None,
    model: LatencyModel | None = None,
    pipeline: Sequence[Pass] | None = None,
    strict: bool = False,
    fallback: bool = True,
    cache: "CompilationCache | None" = None,
) -> LCMMResult:
    """Run the full LCMM pipeline on a model and design point.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point (from DSE).
        options: Feature switches; defaults enable everything.
        model: Optional pre-built latency model to reuse.
        pipeline: Optional explicit pass list, overriding the default
            assembled from ``options`` — the entry point for custom and
            ablation pipelines (it must still produce the
            ``"allocation"``, ``"score"`` and ``"placement"`` artifacts).
        strict: Run each pass's invariant check in-line (checked
            execution); violations fail the attempt like any other pass
            error.
        fallback: Degrade along the chain *requested pipeline -> DNNK ->
            greedy -> UMM-only* instead of raising; the landed level is
            recorded in :attr:`LCMMResult.degradation_level`.  With
            ``False``, the first failure propagates.
        cache: Optional :class:`~repro.cache.store.CompilationCache`.
            When given, the compilation is short-circuited by a
            content-addressed lookup (key: canonical graph + every
            design-point field + options + cache schema version) and
            healthy results are stored back.  Off by default; custom
            ``pipeline`` objects cannot be fingerprinted, so they bypass
            the cache, and only ``degradation_level == 0`` results are
            ever stored — a degraded artifact must not mask a fixed
            fault on the next run.

    Raises:
        repro.errors.ReproError: With ``fallback=False``, whatever the
            failing pass raised; with ``fallback=True`` only if even the
            UMM-only floor cannot be built (e.g. the tile buffers do not
            fit the device at all).
    """
    options = options or LCMMOptions()
    cache_key: str | None = None
    if cache is not None and pipeline is None:
        cache_key = compile_key(graph, accel, options, extra={"strict": strict})
        cached = cache.get(cache_key)
        if cached is not None:
            with obs_span("lcmm.run", graph=graph.name, cached=True) as run_span:
                run_span.annotate(
                    "lcmm.result",
                    landed=cached.pipeline_description or "umm-only",
                    degradation_level=cached.degradation_level,
                    cached=True,
                )
                if obs_enabled():
                    _publish_run_metrics(cached, graph.name)
                return cached
    recovery = _DEFAULT_RECOVERY if fallback else None
    attempts = _degradation_chain(options, pipeline)
    failed: list[str] = []
    carried: list[PassDiagnostic] = []
    with obs_span(
        "lcmm.run", graph=graph.name, strict=strict, fallback=fallback
    ) as run_span:
        for label, attempt_options in attempts:
            if attempt_options is None:
                with obs_span("lcmm.attempt", label=label, graph=graph.name):
                    result = umm_only_result(graph, accel, model=model)
            else:
                attempt_pipeline = (
                    list(pipeline)
                    if pipeline is not None and label == attempts[0][0]
                    else default_pipeline(attempt_options)
                )
                ctx = CompilationContext.create(
                    graph, accel, options=attempt_options, model=model
                )
                manager = PassManager(
                    attempt_pipeline, strict=strict, recovery=recovery
                )
                try:
                    with obs_span("lcmm.attempt", label=label, graph=graph.name):
                        manager.run(ctx)
                        result = package_result(ctx, manager)
                except PipelineError:
                    # A malformed pipeline (unknown pass, broken artifact
                    # contract) is a caller error, not a runtime fault —
                    # degrading would silently ignore the caller's request.
                    raise
                except DeadlineExceeded:
                    # An expired request budget must fail fast: degrading
                    # would burn more of a budget that is already spent
                    # (every weaker attempt would trip the same check).
                    raise
                except ReproError as exc:
                    if not fallback:
                        raise
                    failed.append(label)
                    carried.extend(ctx.diagnostics)
                    carried.append(
                        PassDiagnostic(
                            pass_name="framework",
                            category="degraded",
                            message=(
                                f"attempt {label!r} failed "
                                f"({type(exc).__name__}: {exc}); degrading"
                            ),
                            data={"attempt": label, "error": type(exc).__name__},
                        )
                    )
                    obs_annotate(
                        "degraded", attempt=label, error=type(exc).__name__
                    )
                    continue
            result.degradation_level = len(failed)
            result.degradation_path = tuple(failed)
            if carried:
                result.diagnostics = tuple(carried) + result.diagnostics
            if cache_key is not None and result.degradation_level == 0:
                cache.put(cache_key, result)
            run_span.annotate(
                "lcmm.result",
                landed=result.pipeline_description or "umm-only",
                degradation_level=result.degradation_level,
            )
            if obs_enabled():
                _publish_run_metrics(result, graph.name)
            return result
    raise PassError(  # pragma: no cover — the UMM floor never raises ReproError
        "all degradation levels failed", details={"attempts": [a[0] for a in attempts]}
    )


def _publish_run_metrics(result: LCMMResult, graph_name: str) -> None:
    """Mirror one run's outcome into the process metrics registry.

    Only called while observation is on (``lcmm run --trace``, ``lcmm
    stats``, tests) — the plain compile path records nothing.
    """
    registry = obs_registry()
    registry.counter("lcmm.runs", "LCMM compilations completed").inc(
        graph=graph_name
    )
    registry.gauge(
        "lcmm.degradation_level", "fallback-chain level of the last run"
    ).set(result.degradation_level, graph=graph_name)
    registry.histogram("lcmm.latency_seconds", "end-to-end Eq. 1 latency").observe(
        result.latency, graph=graph_name
    )
    registry.gauge("lcmm.used_bytes", "block-rounded SRAM consumption").set(
        result.sram_usage.used_bytes, graph=graph_name
    )
    registry.gauge("lcmm.onchip_tensors", "tensor values resident on chip").set(
        len(result.onchip_tensors), graph=graph_name
    )
    if result.engine_stats is not None:
        result.engine_stats.publish(registry, graph=graph_name)

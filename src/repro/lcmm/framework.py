"""The LCMM framework — orchestrates the four techniques (Fig. 4).

Pipeline, exactly as the paper's flow diagram:

1. the DSE-provided design point fixes the PE array and tile buffers;
2. **feature buffer reuse** colours lifetime-disjoint feature tensors into
   shared virtual buffers (Sec. 3.1);
3. **weight buffer prefetching** builds the PDG, bounds weight lifespans
   and colours weight buffers (Sec. 3.2);
4. **DNNK** allocates physical on-chip memory to the virtual buffers
   (Sec. 3.3);
5. **buffer splitting** retries with false interference edges when a
   high-value tensor was misspilled (Sec. 3.4).

The result carries the exact end-to-end latency (Eq. 1 with prefetch
residuals), the physical buffer map and the utilisation metrics Tab. 1,
Tab. 2 and Fig. 8 report.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.hw.sram import SRAMBudget, SRAMUsage, blocks_for, BRAM36_BYTES, URAM_BYTES
from repro.ir.graph import ComputationGraph
from repro.ir.tensor import weight_tensor_name
from repro.lcmm.buffers import PhysicalBuffer, VirtualBuffer
from repro.lcmm.coloring import color_buffers
from repro.lcmm.dnnk import DNNKResult, dnnk_allocate, greedy_allocate
from repro.lcmm.feature_reuse import FeatureReuseResult, feature_reuse_pass
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.prefetch import PrefetchResult, weight_prefetch_pass
from repro.lcmm.splitting import buffer_splitting_pass, combine_buffers
from repro.lcmm.umm import UMMResult, run_umm
from repro.perf.engine import AllocationEngine, EngineStats
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


@dataclass
class LCMMOptions:
    """Feature switches of the framework (used by the ablation benches).

    Attributes:
        feature_reuse: Enable the feature buffer reuse pass.
        weight_prefetch: Enable the weight prefetching pass.
        splitting: Enable the buffer splitting pass.
        use_greedy: Replace DNNK with the density-greedy allocator.
        granularity: DNNK capacity quantum in bytes.
        sram_budget: Override the on-chip memory available to LCMM
            (tile buffers included); defaults to the whole device.
        prefetch_refinement: Extra fixpoint iterations of the prefetch
            pass.  The paper computes hiding windows once, against UMM
            latencies; each refinement recomputes them against the
            latencies of the current allocation (which are shorter, so
            windows shrink and spans lengthen) and re-allocates.  Kept at
            0 by default for paper fidelity.
        fractional_fill: After DNNK, fill leftover capacity with *partial*
            pins of spilled feature tensors — the resident channel slice
            stops streaming, the remainder still pays DDR.  An extension
            beyond the paper (off by default): whole-tensor knapsacks
            strand capacity smaller than any remaining tensor.
        use_engine: Evaluate allocations on the incremental
            :class:`AllocationEngine` instead of walking the latency model
            per query.  Results are bit-for-bit identical either way; the
            naive route exists as the test oracle.
    """

    feature_reuse: bool = True
    weight_prefetch: bool = True
    splitting: bool = True
    use_greedy: bool = False
    granularity: int = URAM_BYTES
    sram_budget: int | None = None
    prefetch_refinement: int = 0
    fractional_fill: bool = False
    use_engine: bool = True


@dataclass
class LCMMResult:
    """Outcome of an LCMM run.

    Attributes:
        graph_name: Model evaluated.
        accel: The design point.
        latency: Exact end-to-end latency (Eq. 1 + prefetch residuals).
        throughput: Ops/second over the network's nominal operations.
        onchip_tensors: Tensor values resident on chip.
        residuals: Unhidden prefetch seconds per on-chip weight tensor.
        node_latencies: Per executed node latency under the allocation.
        feature_result: Feature reuse pass output.
        prefetch_result: Weight prefetching pass output.
        dnnk_result: Final allocator decision.
        physical_buffers: On-chip buffers with block placement.
        sram_usage: Block-level memory consumption (tile + tensor buffers).
        splitting_iterations: Buffer splits that were kept.
    """

    graph_name: str
    accel: AcceleratorConfig
    latency: float
    throughput: float
    onchip_tensors: frozenset[str]
    residuals: dict[str, float]
    node_latencies: dict[str, float]
    feature_result: FeatureReuseResult
    prefetch_result: PrefetchResult
    dnnk_result: DNNKResult
    physical_buffers: list[PhysicalBuffer]
    sram_usage: SRAMUsage
    splitting_iterations: int
    #: Partial residency per spilled tensor (extension; empty unless
    #: ``LCMMOptions.fractional_fill`` is enabled).
    fractions: dict[str, float] = field(default_factory=dict)
    #: Evaluation-engine counters and per-pass wall time (``None`` when
    #: the run used the naive evaluator).
    engine_stats: EngineStats | None = None

    @property
    def tops(self) -> float:
        """Throughput in tera-ops/second."""
        return self.throughput / 1e12

    @property
    def sram_utilization(self) -> float:
        """Fraction of device SRAM consumed (tile + tensor buffers)."""
        return self.sram_usage.used_bytes / self.accel.device.sram_bytes

    def percentage_onchip_layers(self, model: LatencyModel) -> float:
        """POL metric of Tab. 2: memory-bound layers that benefit.

        A memory-bound layer benefits when at least one of its tensors is
        resident on chip.
        """
        bound = model.memory_bound_nodes()
        if not bound:
            return 0.0
        benefiting = 0
        for node in bound:
            slots = model.layer(node).slots
            if any(s.tensor in self.onchip_tensors for s in slots):
                benefiting += 1
        return benefiting / len(bound)


def _empty_feature_result() -> FeatureReuseResult:
    return FeatureReuseResult(
        candidates=[], interference=InterferenceGraph(), buffers=[]
    )


def _empty_prefetch_result() -> PrefetchResult:
    return PrefetchResult(
        edges={}, candidates=[], interference=InterferenceGraph(), buffers=[]
    )


def _compute_residuals(
    model: LatencyModel,
    prefetch: PrefetchResult,
    onchip: frozenset[str],
    engine: AllocationEngine | None = None,
) -> dict[str, float]:
    """Unhidden prefetch time per on-chip weight tensor.

    Hiding capacity is re-measured on the *post-allocation* schedule:
    pinning tensors on chip makes earlier nodes faster, which shrinks the
    window a prefetch can hide behind.

    With an engine, the per-node latencies and weight-interface demands
    are read from its cached state (one incremental jump to ``onchip``)
    instead of re-walking every slot of every node; the numbers are
    bit-for-bit the same.
    """
    from repro.lcmm.prefetch import hiding_capacity

    schedule = model.nodes()
    index_of = {name: idx for idx, name in enumerate(schedule)}
    if engine is not None:
        engine.set_state(onchip)
        latencies = engine.node_latency_list()
        # hiding_capacity's demand term is the node's weight-interface
        # sum under `onchip` — exactly the engine's cached kind-1 sum.
        capacities = [
            max(0.0, lat - engine.weight_demand(ni))
            for ni, lat in enumerate(latencies)
        ]
    else:
        latencies = [model.node_latency(name, onchip) for name in schedule]
        capacities = hiding_capacity(model, latencies, schedule, onchip)
    residuals: dict[str, float] = {}
    for node, edge in prefetch.edges.items():
        wname = weight_tensor_name(node)
        if wname not in onchip:
            continue
        start, end = index_of[edge.start], index_of[node]
        hidden = sum(capacities[start:end])
        residual = max(0.0, edge.load_time - hidden)
        if residual > 0.0:
            residuals[wname] = residual
    return residuals


def run_lcmm(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    options: LCMMOptions | None = None,
    model: LatencyModel | None = None,
) -> LCMMResult:
    """Run the full LCMM pipeline on a model and design point.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point (from DSE).
        options: Feature switches; defaults enable everything.
        model: Optional pre-built latency model to reuse.
    """
    options = options or LCMMOptions()
    model = model or LatencyModel(graph, accel)
    engine = AllocationEngine(model) if options.use_engine else None
    stats = engine.stats if engine is not None else None

    def timed(name: str):
        return stats.time_pass(name) if stats is not None else contextlib.nullcontext()

    with timed("feature_reuse"):
        feature = (
            feature_reuse_pass(graph, model)
            if options.feature_reuse
            else _empty_feature_result()
        )
    with timed("weight_prefetch"):
        prefetch = (
            weight_prefetch_pass(graph, model)
            if options.weight_prefetch
            else _empty_prefetch_result()
        )

    budget = options.sram_budget
    if budget is None:
        budget = accel.device.sram_bytes
    # Tile buffers consume whole BRAM blocks; subtract the block-rounded
    # footprint so the block-level placement below can never overflow.
    tile_bytes = blocks_for(accel.tile_buffer_bytes(), BRAM36_BYTES) * BRAM36_BYTES
    capacity = budget - tile_bytes
    if capacity < 0:
        raise ValueError(
            f"tile buffers alone exceed the SRAM budget ({tile_bytes} > {budget} bytes)"
        )

    def evaluate(onchip: frozenset[str]) -> float:
        residuals = _compute_residuals(model, prefetch, onchip, engine)
        if engine is not None:
            engine.set_state(onchip, residuals)
            return engine.total()
        return model.total_latency(onchip, residuals)

    with timed("allocate"):
        if options.use_greedy:
            buffers = combine_buffers([feature.buffers, prefetch.buffers])
            dnnk = greedy_allocate(buffers, model, capacity, engine=engine)
            splits = 0
        elif options.splitting:
            outcome = buffer_splitting_pass(
                feature.interference,
                prefetch.interference,
                model,
                capacity,
                evaluate,
                granularity=options.granularity,
                engine=engine,
            )
            buffers, dnnk, splits = outcome.buffers, outcome.result, outcome.iterations
            # The splitting loop may have added false edges; refresh the
            # per-pass buffer views so they stay consistent with their graphs.
            feature.buffers = color_buffers(feature.interference)
            prefetch.buffers = color_buffers(prefetch.interference)
        else:
            buffers = combine_buffers([feature.buffers, prefetch.buffers])
            dnnk = dnnk_allocate(
                buffers, model, capacity, options.granularity, engine=engine
            )
            splits = 0

    with timed("score"):
        onchip = dnnk.onchip_tensors
        residuals = _compute_residuals(model, prefetch, onchip, engine)
        if engine is not None:
            engine.set_state(onchip, residuals)
            latency = engine.total()
            node_latencies = engine.node_latencies()
        else:
            latency = model.total_latency(onchip, residuals)
            node_latencies = {
                name: model.node_latency(name, onchip, residuals)
                for name in model.nodes()
            }

    # Optional fixpoint refinement: re-derive prefetch windows from the
    # achieved (faster) schedule, re-colour the weight buffers with the
    # new lifespans and re-allocate; keep each iteration only if the
    # exact latency improves.
    for _ in range(options.prefetch_refinement):
        if not options.weight_prefetch:
            break
        with timed("refinement"):
            refined = weight_prefetch_pass(graph, model, node_latencies)
            refined_buffers = combine_buffers([feature.buffers, refined.buffers])
            if options.use_greedy:
                refined_dnnk = greedy_allocate(
                    refined_buffers, model, capacity, engine=engine
                )
            else:
                refined_dnnk = dnnk_allocate(
                    refined_buffers, model, capacity, options.granularity, engine=engine
                )
            refined_onchip = refined_dnnk.onchip_tensors
            refined_residuals = _compute_residuals(model, refined, refined_onchip, engine)
            if engine is not None:
                engine.set_state(refined_onchip, refined_residuals)
                refined_latency = engine.total()
            else:
                refined_latency = model.total_latency(refined_onchip, refined_residuals)
        if refined_latency >= latency - 1e-15:
            break
        prefetch, dnnk = refined, refined_dnnk
        buffers, onchip = refined_buffers, refined_onchip
        residuals, latency = refined_residuals, refined_latency
        if engine is not None:
            node_latencies = engine.node_latencies()
        else:
            node_latencies = {
                name: model.node_latency(name, onchip, residuals)
                for name in model.nodes()
            }

    # A rejected refinement (or any evaluate() probe) may have left the
    # engine on a trial state; park it on the accepted allocation so the
    # fractional-fill deltas below start from the right baseline.
    if engine is not None:
        engine.set_state(onchip, residuals)

    # Place tile buffers (BRAM) then tensor buffers (URAM first) in blocks.
    usage = SRAMUsage(budget=accel.device.sram)
    usage.bram36_used += blocks_for(accel.tile_buffer_bytes(), BRAM36_BYTES)
    physical = []
    for idx, vbuf in enumerate(dnnk.allocated):
        uram, bram = usage.allocate(vbuf.size_bytes)
        physical.append(
            PhysicalBuffer(
                index=idx, virtual=vbuf, uram_blocks=uram, bram36_blocks=bram
            )
        )

    # Extension: fill the capacity a whole-tensor knapsack strands with
    # partial pins of spilled feature tensors.  The resident channel
    # slice stops streaming; the remainder still pays DDR transfer.
    fractions: dict[str, float] = {}
    if options.fractional_fill:
        with timed("fractional_fill"):
            allocated_bytes = sum(
                blocks_for(b.size_bytes, options.granularity) * options.granularity
                for b in dnnk.allocated
            )
            leftover = capacity - allocated_bytes
            spill_candidates = sorted(
                (
                    c
                    for c in feature.candidates
                    if c.name not in onchip and c.latency_reduction > 0
                ),
                key=lambda c: -c.latency_reduction / c.size_bytes,
            )
            for cand in spill_candidates:
                if leftover < options.granularity:
                    break
                # Partial pins occupy whole blocks: floor the usable slice to
                # the capacity quantum so block-level placement cannot
                # overflow the budget.
                usable = min(
                    (leftover // options.granularity) * options.granularity,
                    blocks_for(cand.size_bytes, options.granularity)
                    * options.granularity,
                )
                fraction = min(1.0, usable / cand.size_bytes)
                if fraction <= 0.0:
                    continue
                trial = dict(fractions)
                trial[cand.name] = fraction
                if engine is not None:
                    # One-tensor incremental pin; rolled back on rejection.
                    engine.apply(fractions={cand.name: fraction})
                    trial_latency = engine.total()
                else:
                    trial_latency = model.total_latency(onchip, residuals, trial)
                accepted = False
                if trial_latency < latency - 1e-15:
                    block_bytes = blocks_for(
                        min(usable, cand.size_bytes), options.granularity
                    ) * options.granularity
                    if block_bytes <= leftover and usage.can_fit(block_bytes):
                        usage.allocate(block_bytes)
                        fractions = trial
                        latency = trial_latency
                        leftover -= block_bytes
                        accepted = True
                if engine is not None and not accepted:
                    engine.undo()
            if fractions:
                if engine is not None:
                    node_latencies = engine.node_latencies()
                else:
                    node_latencies = {
                        name: model.node_latency(name, onchip, residuals, fractions)
                        for name in model.nodes()
                    }

    return LCMMResult(
        graph_name=graph.name,
        accel=accel,
        latency=latency,
        throughput=model.throughput(latency),
        onchip_tensors=onchip,
        residuals=residuals,
        node_latencies=node_latencies,
        feature_result=feature,
        prefetch_result=prefetch,
        dnnk_result=dnnk,
        physical_buffers=physical,
        sram_usage=usage,
        splitting_iterations=splits,
        fractions=fractions,
        engine_stats=stats,
    )

"""The LCMM framework — a thin driver over the pass pipeline (Fig. 4).

The four techniques of the paper's flow diagram — feature buffer reuse
(Sec. 3.1), weight buffer prefetching (Sec. 3.2), DNNK allocation
(Sec. 3.3) and buffer splitting (Sec. 3.4) — live in
:mod:`repro.lcmm.passes` as registered :class:`~repro.lcmm.passes.Pass`
classes.  :func:`run_lcmm` only assembles the pipeline
(:func:`~repro.lcmm.passes.default_pipeline` from the options, or a
caller-supplied pass list), executes it through a
:class:`~repro.lcmm.passes.PassManager`, and packages the context
artifacts into an :class:`LCMMResult`.

The result carries the exact end-to-end latency (Eq. 1 with prefetch
residuals), the physical buffer map, the utilisation metrics Tab. 1,
Tab. 2 and Fig. 8 report — and, new with the pipeline, the structured
per-pass diagnostics and the executed pipeline description that
``lcmm run <model> --explain`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hw.sram import SRAMUsage
from repro.ir.graph import ComputationGraph
from repro.lcmm.buffers import PhysicalBuffer
from repro.lcmm.feature_reuse import FeatureReuseResult
from repro.lcmm.options import LCMMOptions
from repro.lcmm.dnnk import DNNKResult
from repro.lcmm.passes import (
    CompilationContext,
    Pass,
    PassDiagnostic,
    PassManager,
    default_pipeline,
    empty_feature_result,
    empty_prefetch_result,
)
from repro.lcmm.prefetch import PrefetchResult
from repro.perf.engine import EngineStats
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig

__all__ = ["LCMMOptions", "LCMMResult", "run_lcmm"]


@dataclass
class LCMMResult:
    """Outcome of an LCMM run.

    Attributes:
        graph_name: Model evaluated.
        accel: The design point.
        latency: Exact end-to-end latency (Eq. 1 + prefetch residuals).
        throughput: Ops/second over the network's nominal operations.
        onchip_tensors: Tensor values resident on chip.
        residuals: Unhidden prefetch seconds per on-chip weight tensor.
        node_latencies: Per executed node latency under the allocation.
        feature_result: Feature reuse pass output.
        prefetch_result: Weight prefetching pass output.
        dnnk_result: Final allocator decision.
        physical_buffers: On-chip buffers with block placement.
        sram_usage: Block-level memory consumption (tile + tensor buffers).
        splitting_iterations: Buffer splits that were kept.
    """

    graph_name: str
    accel: AcceleratorConfig
    latency: float
    throughput: float
    onchip_tensors: frozenset[str]
    residuals: dict[str, float]
    node_latencies: dict[str, float]
    feature_result: FeatureReuseResult
    prefetch_result: PrefetchResult
    dnnk_result: DNNKResult
    physical_buffers: list[PhysicalBuffer]
    sram_usage: SRAMUsage
    splitting_iterations: int
    #: Partial residency per spilled tensor (extension; empty unless
    #: ``LCMMOptions.fractional_fill`` is enabled).
    fractions: dict[str, float] = field(default_factory=dict)
    #: Evaluation-engine counters and per-pass wall time (``None`` when
    #: the run used the naive evaluator).
    engine_stats: EngineStats | None = None
    #: Structured per-pass records (splits kept, refinement verdicts,
    #: stranded capacity, ...) in emission order.
    diagnostics: tuple[PassDiagnostic, ...] = ()
    #: The executed pipeline as ``"feature_reuse -> ... -> placement"``.
    pipeline_description: str = ""
    #: Per-pass wall seconds in execution order (available on the naive
    #: path too, unlike ``engine_stats.pass_seconds``).
    pass_timings: tuple[tuple[str, float], ...] = ()

    @property
    def tops(self) -> float:
        """Throughput in tera-ops/second."""
        return self.throughput / 1e12

    @property
    def sram_utilization(self) -> float:
        """Fraction of device SRAM consumed (tile + tensor buffers)."""
        return self.sram_usage.used_bytes / self.accel.device.sram_bytes

    def percentage_onchip_layers(self, model: LatencyModel) -> float:
        """POL metric of Tab. 2: memory-bound layers that benefit.

        A memory-bound layer benefits when at least one of its tensors is
        resident on chip.
        """
        bound = model.memory_bound_nodes()
        if not bound:
            return 0.0
        benefiting = 0
        for node in bound:
            slots = model.layer(node).slots
            if any(s.tensor in self.onchip_tensors for s in slots):
                benefiting += 1
        return benefiting / len(bound)


def package_result(ctx: CompilationContext, manager: PassManager) -> LCMMResult:
    """Assemble an :class:`LCMMResult` from an executed pipeline's context.

    Raises:
        repro.lcmm.passes.PipelineError: When the pipeline did not
            produce the ``"allocation"``, ``"score"`` and ``"placement"``
            artifacts a result requires.
    """
    allocation = ctx.require("allocation")
    score = ctx.require("score")
    placement = ctx.require("placement")
    feature = ctx.get("feature")
    prefetch = ctx.get("prefetch")
    return LCMMResult(
        graph_name=ctx.graph.name,
        accel=ctx.accel,
        latency=score.latency,
        throughput=ctx.model.throughput(score.latency),
        onchip_tensors=score.onchip,
        residuals=score.residuals,
        node_latencies=score.node_latencies,
        feature_result=feature if feature is not None else empty_feature_result(),
        prefetch_result=prefetch if prefetch is not None else empty_prefetch_result(),
        dnnk_result=allocation.result,
        physical_buffers=placement.buffers,
        sram_usage=placement.usage,
        splitting_iterations=allocation.splitting_iterations,
        fractions=ctx.get("fractions", {}),
        engine_stats=ctx.stats,
        diagnostics=tuple(ctx.diagnostics),
        pipeline_description=manager.description(),
        pass_timings=manager.timings(),
    )


def run_lcmm(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    options: LCMMOptions | None = None,
    model: LatencyModel | None = None,
    pipeline: Sequence[Pass] | None = None,
) -> LCMMResult:
    """Run the full LCMM pipeline on a model and design point.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point (from DSE).
        options: Feature switches; defaults enable everything.
        model: Optional pre-built latency model to reuse.
        pipeline: Optional explicit pass list, overriding the default
            assembled from ``options`` — the entry point for custom and
            ablation pipelines (it must still produce the
            ``"allocation"``, ``"score"`` and ``"placement"`` artifacts).
    """
    options = options or LCMMOptions()
    ctx = CompilationContext.create(graph, accel, options=options, model=model)
    manager = PassManager(
        list(pipeline) if pipeline is not None else default_pipeline(options)
    )
    manager.run(ctx)
    return package_result(ctx, manager)

"""Size-minimising graph colouring (Sec. 3.1 of the paper).

Classic register allocation minimises the number of colours; the paper's
variant minimises the *total size* of the resulting buffers — "our target
is minimizing total size of buffers rather than the number of
registers/buffers".  Because a colour class costs the size of its largest
member, the greedy strategy is: place tensors in descending size order and
put each into any compatible existing class (its size can then never raise
the class maximum); open a new class only when every existing one
conflicts.  On interval-overlap graphs this is the classic
interval-colouring argument, and ties are broken toward the fullest class
to keep classes few and dense.
"""

from __future__ import annotations

from repro.lcmm.buffers import CandidateTensor, VirtualBuffer
from repro.lcmm.interference import InterferenceGraph


def color_buffers(graph: InterferenceGraph) -> list[VirtualBuffer]:
    """Partition tensors into virtual buffers with no internal interference.

    Args:
        graph: Interference graph over the candidate tensors.

    Returns:
        Virtual buffers ordered by descending size (the order DNNK
        processes them in).  Every tensor appears in exactly one buffer and
        no two tensors within a buffer interfere.
    """
    ordered = sorted(
        graph.tensors.values(), key=lambda t: (-t.size_bytes, t.name)
    )
    classes: list[list[CandidateTensor]] = []
    # Member-name sets alongside the classes: compatibility is one set
    # disjointness test against the tensor's neighbourhood instead of a
    # per-member interference probe.
    class_names: list[set[str]] = []
    for tensor in ordered:
        adjacent = graph.neighbors(tensor.name)
        best_class = -1
        best_occupancy = -1
        for idx, names in enumerate(class_names):
            if not adjacent.isdisjoint(names):
                continue
            # Prefer the fullest compatible class; the first (largest)
            # member fixed the class size, so joining is free.
            if len(names) > best_occupancy:
                best_class = idx
                best_occupancy = len(names)
        if best_class < 0:
            classes.append([tensor])
            class_names.append({tensor.name})
        else:
            classes[best_class].append(tensor)
            class_names[best_class].add(tensor.name)
    buffers = [
        VirtualBuffer(index=idx, tensors=members)
        for idx, members in enumerate(classes)
    ]
    return buffers


def total_buffer_bytes(buffers: list[VirtualBuffer]) -> int:
    """Total storage the buffers need — the colouring objective."""
    return sum(b.size_bytes for b in buffers)


def validate_coloring(
    graph: InterferenceGraph, buffers: list[VirtualBuffer]
) -> None:
    """Check a colouring is a valid interference-free partition.

    Raises:
        ValueError: If a tensor is missing/duplicated or two interfering
            tensors share a buffer.
    """
    seen: set[str] = set()
    for buf in buffers:
        names = buf.tensor_names
        for i, a in enumerate(names):
            if a in seen:
                raise ValueError(f"tensor {a!r} assigned to multiple buffers")
            seen.add(a)
            for b in names[i + 1 :]:
                if graph.interferes(a, b):
                    raise ValueError(
                        f"interfering tensors {a!r} and {b!r} share {buf.name}"
                    )
    missing = set(graph.tensors) - seen
    if missing:
        raise ValueError(f"tensors not assigned to any buffer: {sorted(missing)[:5]}")

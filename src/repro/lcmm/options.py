"""Feature switches of the LCMM framework.

Lives in its own module so both the thin driver
(:mod:`repro.lcmm.framework`) and the pass pipeline
(:mod:`repro.lcmm.passes`) can import it without a cycle; the framework
re-exports :class:`LCMMOptions` for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.sram import URAM_BYTES


@dataclass
class LCMMOptions:
    """Feature switches of the framework (used by the ablation benches).

    :func:`repro.lcmm.passes.default_pipeline` translates an options
    object into the pass list the PassManager executes; ablations can
    bypass the flags entirely and assemble a pipeline by pass name.

    Attributes:
        feature_reuse: Enable the feature buffer reuse pass.
        weight_prefetch: Enable the weight prefetching pass.
        splitting: Enable the buffer splitting pass.
        use_greedy: Replace DNNK with the density-greedy allocator.
        granularity: DNNK capacity quantum in bytes.
        sram_budget: Override the on-chip memory available to LCMM
            (tile buffers included); defaults to the whole device.
        prefetch_refinement: Extra fixpoint iterations of the prefetch
            pass.  The paper computes hiding windows once, against UMM
            latencies; each refinement recomputes them against the
            latencies of the current allocation (which are shorter, so
            windows shrink and spans lengthen) and re-allocates.  Kept at
            0 by default for paper fidelity.
        fractional_fill: After DNNK, fill leftover capacity with *partial*
            pins of spilled feature tensors — the resident channel slice
            stops streaming, the remainder still pays DDR.  An extension
            beyond the paper (off by default): whole-tensor knapsacks
            strand capacity smaller than any remaining tensor.
        use_engine: Evaluate allocations on the incremental
            :class:`repro.perf.engine.AllocationEngine` instead of walking
            the latency model per query.  Results are bit-for-bit
            identical either way; the naive route exists as the test
            oracle.
        fuse_layers: After scoring, run the fused-layer tiling pass
            (:class:`repro.lcmm.passes.standard.FuseLayersPass`):
            producer/consumer chains whose intermediate tile fits the
            provisioned input tile buffer merge their tile loops, so the
            intermediate never round-trips through DRAM (LoopTree-style;
            shortcut tensors get ShortcutFusion-style reuse-aware
            handling).  Off by default — the plain pipeline stays
            byte-identical to the paper's flow.
        transfer_schedule: After placement, run the DMA transfer
            scheduling pass
            (:class:`repro.lcmm.passes.standard.TransferSchedulePass`):
            demand transfers are slotted onto the three interface
            channels with double-buffered prefetch windows (a node's
            loads may start while its predecessor computes), which is
            monotone non-increasing vs the bulk Eq. 1 timeline.  Off by
            default.
    """

    feature_reuse: bool = True
    weight_prefetch: bool = True
    splitting: bool = True
    use_greedy: bool = False
    granularity: int = URAM_BYTES
    sram_budget: int | None = None
    prefetch_refinement: int = 0
    fractional_fill: bool = False
    use_engine: bool = True
    fuse_layers: bool = False
    transfer_schedule: bool = False

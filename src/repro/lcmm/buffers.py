"""Buffer abstractions: candidate tensors, virtual buffers, physical buffers.

The framework's pipeline (Fig. 4 of the paper) moves tensors through three
states:

1. a **candidate tensor** — a feature or weight value of a memory-bound
   layer, with a size, a live range and a latency-reduction metric;
2. a **virtual buffer** — a group of candidates with pairwise-disjoint
   lifespans that the colouring passes decided may share storage; its size
   is the largest member's size;
3. a **physical buffer** — a virtual buffer that DNNK allocated on-chip
   memory; the rest are *spilled* to DDR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lcmm.liveness import LiveRange


class TensorClass(str, enum.Enum):
    """Whether a candidate carries feature-map data or weights."""

    FEATURE = "feature"
    WEIGHT = "weight"


@dataclass
class CandidateTensor:
    """One tensor the allocator may pin on chip.

    Attributes:
        name: Tensor value name (``f:<producer>`` or ``w:<node>``).
        tensor_class: Feature or weight.
        size_bytes: Full tensor footprint at the design precision.
        live_range: Schedule span during which the tensor occupies its
            buffer (production-to-last-use for features, prefetch-start to
            consumer for weights).
        affected_nodes: Nodes whose latency changes when this tensor moves
            on-chip (producer + consumers for features, the single consumer
            for weights).
        latency_reduction: The tensor metric ``L`` of Eq. 2 — seconds saved
            when only this tensor moves on-chip, everything else off-chip.
    """

    name: str
    tensor_class: TensorClass
    size_bytes: int
    live_range: LiveRange
    affected_nodes: tuple[str, ...]
    latency_reduction: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"tensor {self.name!r} has non-positive size")


@dataclass
class VirtualBuffer:
    """A group of lifetime-disjoint tensors sharing one storage slot.

    Attributes:
        index: Position in the allocator's buffer list (``vbuf<k>``).
        tensors: Member candidate tensors.
    """

    index: int
    tensors: list[CandidateTensor]

    def __post_init__(self) -> None:
        if not self.tensors:
            raise ValueError("virtual buffer must contain at least one tensor")

    @property
    def name(self) -> str:
        """Display name, matching the paper's ``vbuf1..n`` convention."""
        return f"vbuf{self.index + 1}"

    @property
    def size_bytes(self) -> int:
        """Buffer size: the largest member tensor (Sec. 3.1)."""
        return max(t.size_bytes for t in self.tensors)

    @property
    def total_latency_reduction(self) -> float:
        """Sum of member latency reductions (DNNK line 4)."""
        return sum(t.latency_reduction for t in self.tensors)

    @property
    def tensor_names(self) -> list[str]:
        """Names of the member tensors."""
        return [t.name for t in self.tensors]

    @property
    def span(self) -> LiveRange:
        """Hull of the member live ranges (virtual buffer table columns)."""
        start = min(t.live_range.start for t in self.tensors)
        end = max(t.live_range.end for t in self.tensors)
        return LiveRange(start, end)


@dataclass
class PhysicalBuffer:
    """An on-chip buffer produced by DNNK.

    Attributes:
        index: Position in the physical buffer list (``pbuf<k>``).
        virtual: The virtual buffer it realises.
        uram_blocks: URAM blocks consumed.
        bram36_blocks: BRAM36 blocks consumed.
    """

    index: int
    virtual: VirtualBuffer
    uram_blocks: int = 0
    bram36_blocks: int = 0

    @property
    def name(self) -> str:
        """Display name, matching the paper's ``pbuf1..n`` convention."""
        return f"pbuf{self.index + 1}"

    @property
    def size_bytes(self) -> int:
        """Payload capacity of the buffer."""
        return self.virtual.size_bytes

    @property
    def tensor_names(self) -> list[str]:
        """Tensor values resident in this buffer (time-multiplexed)."""
        return self.virtual.tensor_names

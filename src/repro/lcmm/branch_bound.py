"""Branch-and-bound exact allocator.

:func:`repro.lcmm.dnnk.exhaustive_allocate` enumerates every subset and
caps out around 20 buffers.  This module solves the same problem exactly
for medium instances (up to roughly 40 buffers) by depth-first search
with pruning.

The pruning bound is built from per-buffer gain ceilings: the marginal
gain of buffer ``b`` in *any* context is at most the total reducible
slack of the nodes it touches — ``sum over affected nodes n of
(lat(n, nothing on-chip) - lat(n, every candidate on-chip))`` — because a
node's latency is monotone in its off-chip set.  The classic
fractional-knapsack relaxation over those ceilings is therefore a valid
optimistic bound for any partial solution.  (A tighter "gain given all
others resident" bound would be invalid: the gains are neither sub- nor
supermodular — pinning one tensor can expose another interface as the
binding term and shrink a later marginal.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.sram import URAM_BYTES
from repro.lcmm.buffers import VirtualBuffer
from repro.lcmm.dnnk import DNNKResult, _GainEvaluator, dnnk_allocate
from repro.perf.latency import LatencyModel

#: Default instance-size guard; the search is still exponential at heart.
DEFAULT_MAX_BUFFERS = 40


@dataclass
class _SearchState:
    """Mutable best-so-far of the DFS."""

    best_gain: float
    best_mask: int
    nodes_visited: int = 0


def branch_and_bound_allocate(
    buffers: list[VirtualBuffer],
    model: LatencyModel,
    capacity_bytes: int,
    granularity: int = URAM_BYTES,
    max_buffers: int = DEFAULT_MAX_BUFFERS,
) -> DNNKResult:
    """Provably optimal allocation for medium instances.

    Args:
        buffers: Virtual buffer list.
        model: Latency model.
        capacity_bytes: On-chip memory available to tensor buffers.
        granularity: Block size buffers are rounded up to (matches DNNK).
        max_buffers: Guard against intractable instances.

    Raises:
        ValueError: If more than ``max_buffers`` buffers are given.
    """
    if len(buffers) > max_buffers:
        raise ValueError(
            f"branch-and-bound limited to {max_buffers} buffers, got {len(buffers)}"
        )
    if capacity_bytes < 0:
        raise ValueError("capacity_bytes must be non-negative")

    units = capacity_bytes // granularity
    sizes = [math.ceil(b.size_bytes / granularity) for b in buffers]
    evaluator = _GainEvaluator(model, buffers)
    n = len(buffers)
    full_mask = (1 << n) - 1

    # Per-buffer gain ceiling: the total reducible slack of the nodes the
    # buffer touches (valid in any context, see module docstring).
    all_on = full_mask
    upper = []
    for i in range(n):
        slack = 0.0
        for node in evaluator._affected[i]:
            slack += evaluator.node_latency_under_mask(node, 0)
            slack -= evaluator.node_latency_under_mask(node, all_on)
        upper.append(slack)

    # Branch in descending bound-density order so good solutions are found
    # early and the fractional bound prunes aggressively.
    order = sorted(
        range(n), key=lambda i: -(upper[i] / sizes[i] if sizes[i] else math.inf)
    )

    # Warm start from DNNK so pruning bites immediately.
    warm = dnnk_allocate(buffers, model, capacity_bytes, granularity)
    warm_mask = 0
    for i, buf in enumerate(buffers):
        if buf in warm.allocated:
            warm_mask |= 1 << i
    baseline = model.total_latency()
    warm_gain = baseline - model.total_latency(warm.onchip_tensors)
    state = _SearchState(best_gain=warm_gain, best_mask=warm_mask)

    def fractional_bound(pos: int, remaining: int) -> float:
        """Optimistic gain from buffers order[pos:] within ``remaining``."""
        bound = 0.0
        for k in range(pos, n):
            i = order[k]
            if upper[i] <= 0:
                continue
            if sizes[i] <= remaining:
                bound += upper[i]
                remaining -= sizes[i]
            else:
                bound += upper[i] * remaining / sizes[i]
                break
        return bound

    def dfs(pos: int, mask: int, gain: float, remaining: int) -> None:
        state.nodes_visited += 1
        if gain > state.best_gain + 1e-15:
            state.best_gain = gain
            state.best_mask = mask
        if pos == n:
            return
        if gain + fractional_bound(pos, remaining) <= state.best_gain + 1e-15:
            return
        i = order[pos]
        # Include branch first (density order makes it the promising one).
        if sizes[i] <= remaining:
            marginal = evaluator.gain(i, mask)
            dfs(pos + 1, mask | 1 << i, gain + marginal, remaining - sizes[i])
        dfs(pos + 1, mask, gain, remaining)

    dfs(0, 0, 0.0, units)

    chosen = [i for i in range(n) if state.best_mask >> i & 1]
    onchip = frozenset(
        name for i in chosen for name in buffers[i].tensor_names
    )
    return DNNKResult(
        allocated=[buffers[i] for i in chosen],
        spilled=[b for i, b in enumerate(buffers) if not state.best_mask >> i & 1],
        onchip_tensors=onchip,
        predicted_reduction=state.best_gain,
        capacity_bytes=capacity_bytes,
        used_bytes=sum(buffers[i].size_bytes for i in chosen),
    )

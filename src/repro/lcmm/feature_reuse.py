"""Feature buffer reuse pass (Sec. 3.1 of the paper).

Selects the feature tensors worth pinning on chip (those whose layers are
transfer-limited — "the computation bounded tensors such as f3 and f5 are
not included in the interference graph"), computes their live ranges by
global liveness analysis, builds the interference graph of Fig. 5(a) and
colours it into virtual buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.layer import OpType
from repro.lcmm.buffers import CandidateTensor, TensorClass
from repro.lcmm.coloring import color_buffers
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.liveness import feature_live_range, schedule_positions
from repro.lcmm.tables import eq2_latency_reduction
from repro.lcmm.buffers import VirtualBuffer
from repro.perf.latency import LatencyModel


@dataclass(frozen=True)
class FeatureReuseResult:
    """Output of the feature buffer reuse pass.

    Frozen: pipeline stages that refine a published result (e.g. the
    splitting recolour) build a new object with ``dataclasses.replace``
    instead of patching fields of one already handed out.

    Attributes:
        candidates: Memory-bound feature tensors with metrics and ranges.
        interference: The feature interference graph (Fig. 5(a)).
        buffers: Virtual buffers from size-minimising colouring (Fig. 5(b)).
    """

    candidates: list[CandidateTensor]
    interference: InterferenceGraph
    buffers: list[VirtualBuffer]


def feature_candidates(
    graph: ComputationGraph, model: LatencyModel
) -> list[CandidateTensor]:
    """Feature tensors that reduce latency when pinned on chip.

    The network input is excluded — it arrives from the host through DDR
    regardless of allocation — and so is any tensor whose move on-chip
    saves nothing (its producer and consumers are all compute bound).
    """
    positions = schedule_positions(graph)
    elem = model.accel.precision.bytes
    candidates = []
    for tensor in graph.feature_tensors():
        if graph.layer(tensor.producer).op_type is OpType.INPUT:
            continue
        affected = (tensor.producer,) + tensor.consumers
        reduction = eq2_latency_reduction(model, tensor.name, affected)
        if reduction <= 0.0:
            continue
        candidates.append(
            CandidateTensor(
                name=tensor.name,
                tensor_class=TensorClass.FEATURE,
                size_bytes=tensor.bytes(elem),
                live_range=feature_live_range(tensor, positions),
                affected_nodes=affected,
                latency_reduction=reduction,
            )
        )
    return candidates


def feature_reuse_pass(
    graph: ComputationGraph, model: LatencyModel
) -> FeatureReuseResult:
    """Run liveness analysis + colouring over the feature tensors."""
    candidates = feature_candidates(graph, model)
    interference = InterferenceGraph.from_tensors(candidates)
    buffers = color_buffers(interference)
    return FeatureReuseResult(
        candidates=candidates, interference=interference, buffers=buffers
    )

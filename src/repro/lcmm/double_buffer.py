"""The traditional double-buffer allocation for linear networks.

The paper's introduction contrasts LCMM against "the traditional double
buffer allocation for linear structures used by previous models like
AlexNet and VGG": two ping-pong feature buffers, each sized for the
largest feature map, alternate between holding a layer's input and its
output, so every intermediate activation stays on chip — but the scheme
only makes sense when the graph is a simple chain.  On ResNet's shortcut
edges or an inception block's branches, a value must outlive the very
next layer and the ping-pong invariant breaks (Sec. 1: "not enough for
DNNs with complex graph topology").

This module implements that legacy allocator precisely so the repository
can demonstrate the motivation: it succeeds on AlexNet/VGG and refuses
non-linear graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.layer import OpType
from repro.ir.tensor import feature_tensor_name
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


class LinearityError(ValueError):
    """Raised when double buffering is applied to a non-linear graph."""


def is_linear(graph: ComputationGraph) -> bool:
    """Whether the graph is a simple chain.

    Linear means: every executed node has at most one feature consumer,
    and that consumer is the next node in the schedule — the condition
    under which two ping-pong buffers suffice.
    """
    schedule = graph.compute_schedule()
    position = {name: idx for idx, name in enumerate(schedule)}
    for tensor in graph.feature_tensors():
        if graph.layer(tensor.producer).op_type is OpType.INPUT:
            continue
        if len(tensor.consumers) != 1:
            return False
        producer_pos = position.get(tensor.producer)
        consumer_pos = position.get(tensor.consumers[0])
        if producer_pos is None or consumer_pos != producer_pos + 1:
            return False
    return True


@dataclass
class DoubleBufferResult:
    """Outcome of the legacy double-buffer allocation.

    Attributes:
        graph_name: Model evaluated.
        latency: End-to-end latency with all intermediate features
            on chip (weights still stream from DDR).
        throughput: Ops/second over the network's nominal operations.
        buffer_bytes: Size of ONE ping-pong buffer (the largest feature
            map); the design instantiates two.
        onchip_tensors: Feature values kept on chip.
    """

    graph_name: str
    latency: float
    throughput: float
    buffer_bytes: int
    onchip_tensors: frozenset[str]

    @property
    def total_buffer_bytes(self) -> int:
        """Footprint of both ping-pong buffers."""
        return 2 * self.buffer_bytes

    @property
    def tops(self) -> float:
        """Throughput in tera-ops/second."""
        return self.throughput / 1e12


def run_double_buffer(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    model: LatencyModel | None = None,
) -> DoubleBufferResult:
    """Evaluate the legacy double-buffer scheme on a linear network.

    Args:
        graph: A linear computation graph (AlexNet/VGG-like).
        accel: The accelerator design point.
        model: Optional pre-built latency model to reuse.

    Raises:
        LinearityError: If the graph has branches, joins or skip edges.
        MemoryError: If two buffers of the largest feature map exceed the
            device's on-chip memory.
    """
    if not is_linear(graph):
        raise LinearityError(
            f"graph {graph.name!r} is not a linear chain; the traditional "
            "double-buffer allocation does not apply (use run_lcmm)"
        )
    model = model or LatencyModel(graph, accel)
    elem = accel.precision.bytes

    # All intermediate features live on chip; the network input still
    # arrives over DDR and the final output still leaves over DDR.
    onchip = set()
    largest = 0
    for tensor in graph.feature_tensors():
        if graph.layer(tensor.producer).op_type is OpType.INPUT:
            continue
        onchip.add(tensor.name)
        largest = max(largest, tensor.bytes(elem))

    if 2 * largest > accel.device.sram_bytes - accel.tile_buffer_bytes():
        raise MemoryError(
            f"two {largest}-byte ping-pong buffers do not fit next to the "
            f"tile buffers on {accel.device.name}"
        )

    onchip_frozen = frozenset(onchip)
    latency = model.total_latency(onchip_frozen)
    return DoubleBufferResult(
        graph_name=graph.name,
        latency=latency,
        throughput=model.throughput(latency),
        buffer_bytes=largest,
        onchip_tensors=onchip_frozen,
    )

"""LCMM — Layer Conscious Memory Management (the paper's contribution).

The four coordinated techniques of Sec. 3:

* :mod:`repro.lcmm.feature_reuse` — liveness analysis + size-minimising
  colouring of feature tensors (Sec. 3.1);
* :mod:`repro.lcmm.prefetch` — weight buffer prefetching and the
  prefetching dependence graph (Sec. 3.2);
* :mod:`repro.lcmm.dnnk` — the DNN-knapsack on-chip memory allocator with
  pivot compensation (Sec. 3.3, Alg. 1);
* :mod:`repro.lcmm.splitting` — buffer splitting against misspilling
  (Sec. 3.4);

plus the UMM baseline, the pass pipeline (:mod:`repro.lcmm.passes`) that
orchestrates them, the thin :func:`run_lcmm` driver and invariant checks.
"""

from repro.lcmm.buffers import (
    CandidateTensor,
    PhysicalBuffer,
    TensorClass,
    VirtualBuffer,
)
from repro.lcmm.liveness import LiveRange, feature_live_ranges, schedule_positions
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.coloring import color_buffers, total_buffer_bytes, validate_coloring
from repro.lcmm.feature_reuse import FeatureReuseResult, feature_reuse_pass
from repro.lcmm.prefetch import PrefetchEdge, PrefetchResult, weight_prefetch_pass
from repro.lcmm.dnnk import (
    DNNKResult,
    dnnk_allocate,
    exhaustive_allocate,
    greedy_allocate,
)
from repro.lcmm.splitting import SplitAttempt, SplittingOutcome, buffer_splitting_pass
from repro.lcmm.passes import (
    CompilationContext,
    Pass,
    PassDiagnostic,
    PassManager,
    PipelineError,
    default_pipeline,
    make_pass,
    pipeline_from_names,
    register_pass,
    registered_passes,
)
from repro.lcmm.tables import (
    OperationLatencyRow,
    operation_latency_table,
    tensor_metric_table,
    virtual_buffer_table,
)
from repro.lcmm.umm import UMMResult, run_umm
from repro.lcmm.double_buffer import (
    DoubleBufferResult,
    LinearityError,
    is_linear,
    run_double_buffer,
)
from repro.lcmm.branch_bound import branch_and_bound_allocate
from repro.lcmm.reorder import peak_live_feature_bytes, reorder_depth_first
from repro.lcmm.cotuning import CoTuningResult, cotune
from repro.lcmm.framework import LCMMOptions, LCMMResult, run_lcmm
from repro.lcmm.validate import AllocationError, validate_buffers, validate_result

__all__ = [
    "CandidateTensor",
    "TensorClass",
    "VirtualBuffer",
    "PhysicalBuffer",
    "LiveRange",
    "schedule_positions",
    "feature_live_ranges",
    "InterferenceGraph",
    "color_buffers",
    "total_buffer_bytes",
    "validate_coloring",
    "FeatureReuseResult",
    "feature_reuse_pass",
    "PrefetchEdge",
    "PrefetchResult",
    "weight_prefetch_pass",
    "DNNKResult",
    "dnnk_allocate",
    "greedy_allocate",
    "exhaustive_allocate",
    "SplitAttempt",
    "SplittingOutcome",
    "buffer_splitting_pass",
    "CompilationContext",
    "Pass",
    "PassDiagnostic",
    "PassManager",
    "PipelineError",
    "default_pipeline",
    "make_pass",
    "pipeline_from_names",
    "register_pass",
    "registered_passes",
    "OperationLatencyRow",
    "operation_latency_table",
    "tensor_metric_table",
    "virtual_buffer_table",
    "UMMResult",
    "run_umm",
    "DoubleBufferResult",
    "LinearityError",
    "is_linear",
    "run_double_buffer",
    "branch_and_bound_allocate",
    "reorder_depth_first",
    "peak_live_feature_bytes",
    "CoTuningResult",
    "cotune",
    "LCMMOptions",
    "LCMMResult",
    "run_lcmm",
    "AllocationError",
    "validate_result",
    "validate_buffers",
]

"""Allocation invariant checks.

A safety net over the whole pipeline: every LCMM result must satisfy a set
of structural invariants regardless of model, precision or option flags.
Tests call :func:`validate_result` on every configuration they run, and
downstream users can call it on their own graphs before trusting a
schedule.
"""

from __future__ import annotations

# Back-compat alias: AllocationError historically lived (and is still
# importable) here, but it now derives from the unified taxonomy in
# repro.errors instead of AssertionError — broad ``except AssertionError``
# handlers can no longer swallow a real invariant violation.
from repro.errors import AllocationError
from repro.lcmm.coloring import validate_coloring
from repro.lcmm.framework import LCMMResult
from repro.lcmm.umm import UMMResult
from repro.perf.latency import LatencyModel

__all__ = ["AllocationError", "validate_result", "validate_buffers"]


def validate_result(
    result: LCMMResult,
    model: LatencyModel,
    umm: UMMResult | None = None,
) -> None:
    """Check all invariants of an LCMM allocation.

    Invariants:

    1. Every on-chip tensor belongs to exactly one allocated buffer, and
       buffers hold only pairwise lifetime-compatible tensors.
    2. The allocated buffer bytes fit the device SRAM next to the tile
       buffers (block-granular).
    3. No node got slower: per-node latency under the allocation is at
       most its UMM latency plus any prefetch residual it owes.
    4. The end-to-end latency never exceeds UMM's, and is bounded below
       by the compute-bound latency.
    5. Prefetch residuals only attach to on-chip weight tensors.

    Raises:
        AllocationError: On the first violated invariant.
    """
    # (1) membership and lifetime compatibility.
    seen: set[str] = set()
    for pbuf in result.physical_buffers:
        tensors = pbuf.virtual.tensors
        for i, a in enumerate(tensors):
            if a.name in seen:
                raise AllocationError(f"tensor {a.name!r} in two physical buffers")
            seen.add(a.name)
            for b in tensors[i + 1 :]:
                if a.live_range.overlaps(b.live_range):
                    interference = (
                        result.feature_result.interference
                        if a.name in result.feature_result.interference.tensors
                        else result.prefetch_result.interference
                    )
                    # A false edge would have separated them; overlapping
                    # live ranges sharing a buffer is always a bug.
                    raise AllocationError(
                        f"live tensors {a.name!r} and {b.name!r} share {pbuf.name}"
                    )
    if seen != set(result.onchip_tensors):
        raise AllocationError(
            "on-chip tensor set does not match physical buffer contents"
        )

    # (2) capacity.
    usage = result.sram_usage
    if usage.uram_used > usage.budget.uram_blocks:
        raise AllocationError("URAM over-committed")
    if usage.bram36_used > usage.budget.bram36_blocks:
        raise AllocationError("BRAM over-committed")

    # (3) per-node monotonicity.
    for node in model.nodes():
        before = model.node_latency(node)
        after = result.node_latencies[node]
        if after > before + 1e-12:
            raise AllocationError(
                f"node {node!r} slower under LCMM: {after} > {before}"
            )

    # (4) end-to-end bounds.
    umm_latency = umm.latency if umm is not None else model.umm_latency()
    if result.latency > umm_latency + 1e-12:
        raise AllocationError(
            f"LCMM latency {result.latency} exceeds UMM latency {umm_latency}"
        )
    floor = model.compute_bound_latency()
    if result.latency < floor - 1e-12:
        raise AllocationError(
            f"LCMM latency {result.latency} below compute bound {floor}"
        )

    # (5) residual sanity.
    for tensor, residual in result.residuals.items():
        if tensor not in result.onchip_tensors:
            raise AllocationError(f"residual on off-chip tensor {tensor!r}")
        if residual < 0:
            raise AllocationError(f"negative residual on {tensor!r}")


def validate_buffers(result: LCMMResult) -> None:
    """Re-check the colourings embedded in a result.

    Raises:
        AllocationError: If either interference graph's colouring is
            inconsistent with its buffers.
    """
    try:
        if result.feature_result.candidates:
            validate_coloring(
                result.feature_result.interference, result.feature_result.buffers
            )
        if result.prefetch_result.candidates:
            validate_coloring(
                result.prefetch_result.interference, result.prefetch_result.buffers
            )
    except ValueError as exc:
        raise AllocationError(str(exc)) from exc

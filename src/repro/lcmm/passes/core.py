"""Pass infrastructure: Pass protocol, CompilationContext, PassManager.

The LCMM flow (Fig. 4 of the paper) is literally a compiler pipeline —
feature reuse, prefetching, knapsack allocation, splitting — so it is
organised as one: each technique is a :class:`Pass` over a shared
:class:`CompilationContext`, and a :class:`PassManager` executes a
declarative pass list with uniform per-pass wall-time accounting,
requires/produces validation and structured :class:`PassDiagnostic`
records.

Passes communicate exclusively through named context *artifacts*
(``"feature"``, ``"prefetch"``, ``"allocation"``, ``"score"``,
``"placement"``, ``"fractions"``).  An artifact is replaced, never
patched in place: a pass that refines an earlier result publishes a new
object under the same key, so every intermediate stays a consistent
value (see the buffer-splitting recolour, which used to mutate
``FeatureReuseResult.buffers`` after the fact).

A module-level registry maps pass names to classes; user-defined passes
register with :func:`register_pass` and slot into any pipeline without
touching the framework (``examples/custom_pipeline.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import CapacityError, PassError, PipelineError
from repro.obs.spans import annotate as obs_annotate
from repro.obs.spans import span, timed_span
from repro.hw.sram import BRAM36_BYTES, blocks_for
from repro.ir.graph import ComputationGraph
from repro.lcmm.options import LCMMOptions
from repro.perf.engine import AllocationEngine, EngineStats
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig
from repro.robustness.deadline import check_deadline
from repro.robustness.inject import declare_fault_point, fault_point

__all__ = [
    "CompilationContext",
    "Pass",
    "PassDiagnostic",
    "PassExecution",
    "PassFailure",
    "PassManager",
    "PipelineError",
    "PASS_REGISTRY",
    "make_pass",
    "pipeline_from_names",
    "register_pass",
    "registered_passes",
]


@dataclass(frozen=True)
class PassDiagnostic:
    """One structured observation emitted by a pass.

    Attributes:
        pass_name: The emitting pass.
        category: Machine-matchable kebab-case tag (e.g.
            ``"split-accepted"``, ``"refinement-rejected"``).
        message: Human-readable one-liner for ``lcmm run --explain``.
        data: Supporting values (byte counts, latency deltas, tensor
            names) for programmatic consumers.
    """

    pass_name: str
    category: str
    message: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.pass_name}] {self.message}"


@dataclass(frozen=True)
class PassExecution:
    """Record of one executed pass: name, wall time, artifacts written."""

    name: str
    seconds: float
    produced: tuple[str, ...]


@dataclass(frozen=True)
class PassFailure:
    """Record of one failed pass and how the manager handled it.

    Attributes:
        name: The failing pass.
        error: The exception (already wrapped in a taxonomy type when it
            was an ad-hoc exception).
        action: ``"skip"`` when the recovery policy let the pipeline
            continue, ``"raise"`` when the failure was propagated.
        seconds: Wall time spent in the pass before it failed.
    """

    name: str
    error: BaseException
    action: str
    seconds: float


@dataclass
class CompilationContext:
    """Everything the passes share: inputs, evaluators, artifacts.

    Attributes:
        graph: The DNN computation graph under compilation.
        accel: The accelerator design point.
        options: Feature switches (passes read their knobs from here).
        model: Exact Eq. 1 latency model.
        engine: Incremental evaluator, or ``None`` on the naive oracle
            path (``options.use_engine=False``).
        stats: The engine's counters/timing sink (``None`` without one).
        budget: Total SRAM bytes available to LCMM (tile buffers
            included).
        capacity: Bytes left for tensor buffers after the block-rounded
            tile-buffer footprint.
        artifacts: Named pass outputs; replaced, never mutated.
        diagnostics: Structured records accumulated across all passes.
    """

    graph: ComputationGraph
    accel: AcceleratorConfig
    options: LCMMOptions
    model: LatencyModel
    engine: AllocationEngine | None
    stats: EngineStats | None
    budget: int
    capacity: int
    artifacts: dict[str, Any] = field(default_factory=dict)
    diagnostics: list[PassDiagnostic] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        graph: ComputationGraph,
        accel: AcceleratorConfig,
        options: LCMMOptions | None = None,
        model: LatencyModel | None = None,
    ) -> "CompilationContext":
        """Build a context: latency model, engine, capacity accounting.

        Raises:
            repro.errors.CapacityError: When the tile buffers alone
                exceed the SRAM budget — no tensor allocation is
                possible (remains catchable as ``ValueError``).
        """
        options = options or LCMMOptions()
        model = model or LatencyModel(graph, accel)
        if options.use_engine:
            with span("engine.build", graph=graph.name, nodes=len(model.nodes())):
                engine = AllocationEngine(model)
        else:
            engine = None
        budget = options.sram_budget
        if budget is None:
            budget = accel.device.sram_bytes
        # Tile buffers consume whole BRAM blocks; subtract the block-rounded
        # footprint so block-level placement can never overflow.
        tile_bytes = blocks_for(accel.tile_buffer_bytes(), BRAM36_BYTES) * BRAM36_BYTES
        capacity = budget - tile_bytes
        if capacity < 0:
            raise CapacityError(
                f"tile buffers alone exceed the SRAM budget ({tile_bytes} > {budget} bytes)",
                details={"tile_bytes": tile_bytes, "budget": budget},
            )
        return cls(
            graph=graph,
            accel=accel,
            options=options,
            model=model,
            engine=engine,
            stats=engine.stats if engine is not None else None,
            budget=budget,
            capacity=capacity,
        )

    # -- artifact access ------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether an artifact has been produced."""
        return key in self.artifacts

    def get(self, key: str, default: Any = None) -> Any:
        """An artifact, or ``default`` when no pass produced it."""
        return self.artifacts.get(key, default)

    def require(self, key: str) -> Any:
        """An artifact that must exist; raises :class:`PipelineError`."""
        try:
            return self.artifacts[key]
        except KeyError:
            raise PipelineError(
                f"artifact {key!r} required but no executed pass produced it"
            ) from None

    def put(self, key: str, value: Any) -> None:
        """Publish (or replace) an artifact."""
        self.artifacts[key] = value

    def diagnose(self, pass_name: str, category: str, message: str, **data: Any) -> None:
        """Append one structured diagnostic record."""
        self.diagnostics.append(
            PassDiagnostic(
                pass_name=pass_name, category=category, message=message, data=data
            )
        )


class Pass(abc.ABC):
    """One stage of the LCMM pipeline.

    Subclasses declare a unique ``name``, the artifacts they consume
    (``requires``) and publish (``produces``), and implement
    :meth:`run`.  Declared artifacts are contracts the PassManager
    enforces before and after each run; optional inputs a pass can
    default (e.g. the allocator treating a missing ``"prefetch"`` as
    empty) are read with ``ctx.get`` and deliberately left undeclared.
    """

    #: Registry identity; also the per-pass timing key.
    name: str = ""
    #: Artifacts that must exist before this pass runs.
    requires: tuple[str, ...] = ()
    #: Artifacts guaranteed to exist after this pass runs.
    produces: tuple[str, ...] = ()

    @abc.abstractmethod
    def run(self, ctx: CompilationContext) -> None:
        """Execute against the shared context."""

    def verify(self, ctx: CompilationContext) -> None:
        """Invariant check run after :meth:`run` under strict execution.

        Implementations must only *read* the context (artifacts and the
        pure latency model) — never touch the engine or republish
        artifacts — and raise :class:`repro.errors.AllocationError` on a
        violated invariant.  The default checks nothing.
        """

    @classmethod
    def describe(cls) -> str:
        """First docstring line — the ``lcmm passes`` summary."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


#: All registered pass classes by name (populated by :func:`register_pass`).
PASS_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator adding a pass to the global registry.

    Raises:
        PipelineError: On a missing or already-registered name.
    """
    if not cls.name:
        raise PipelineError(f"pass class {cls.__name__} has no name")
    if cls.name in PASS_REGISTRY:
        raise PipelineError(f"pass name {cls.name!r} already registered")
    PASS_REGISTRY[cls.name] = cls
    declare_fault_point(f"pass.{cls.name}", cls.describe())
    return cls


def registered_passes() -> dict[str, type[Pass]]:
    """The registry, sorted by pass name."""
    return dict(sorted(PASS_REGISTRY.items()))


def make_pass(name: str) -> Pass:
    """Instantiate a registered pass by name.

    Raises:
        PipelineError: On an unknown name.
    """
    try:
        return PASS_REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise PipelineError(f"unknown pass {name!r}; registered: {known}") from None


def pipeline_from_names(names: Iterable[str]) -> list[Pass]:
    """Assemble a pipeline from registered pass names, in order."""
    return [make_pass(name) for name in names]


class PassManager:
    """Executes a pass list over a context with timing and validation.

    Every pass gets uniform wall-time accounting (mirrored into
    ``EngineStats.pass_seconds`` when an engine is attached, which is
    what ``lcmm run --profile-passes`` prints) and its requires/produces
    contract checked; violations raise :class:`PipelineError` naming the
    pass and the artifact.

    **Checked execution.**  With ``strict=True`` each pass's
    :meth:`Pass.verify` invariant check runs right after the pass, so a
    corrupt intermediate is caught at the pass that produced it rather
    than at the end of the pipeline.  A failing pass (including a failed
    verify) is recorded as a :class:`PassFailure` plus a ``pass-failed``
    :class:`PassDiagnostic`; the per-pass ``recovery`` policy then
    decides what happens:

    * ``"raise"`` (default) — wrap the exception in
      :class:`repro.errors.PassError` (taxonomy exceptions propagate
      as-is) and abort the pipeline.  :func:`repro.lcmm.framework.run_lcmm`
      catches this and falls back along its degradation chain.
    * ``"skip"`` — restore the artifacts published before the pass ran,
      re-park the engine on the last accepted score, and continue.  Only
      meaningful for optional improvement passes (refinement, fractional
      fill) whose output downstream passes can live without.

    Args:
        passes: The pipeline, in execution order.
        observers: Optional callbacks ``(pass_, ctx, seconds)`` invoked
            after each pass — validation or tracing hooks for tests and
            tools.
        strict: Run per-pass invariant verification.
        recovery: Pass name -> ``"raise"`` | ``"skip"``.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        observers: Iterable[Any] = (),
        strict: bool = False,
        recovery: Mapping[str, str] | None = None,
    ) -> None:
        self.passes: list[Pass] = list(passes)
        self.observers = tuple(observers)
        self.strict = strict
        self.recovery: dict[str, str] = dict(recovery or {})
        for name, action in self.recovery.items():
            if action not in ("raise", "skip"):
                raise PipelineError(
                    f"unknown recovery action {action!r} for pass {name!r}; "
                    "expected 'raise' or 'skip'"
                )
        #: Per-pass execution records of the most recent :meth:`run`.
        self.executions: list[PassExecution] = []
        #: Failures seen (and possibly recovered) during the most recent run.
        self.failures: list[PassFailure] = []

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Execute the pipeline; returns the same context for chaining."""
        self.executions = []
        self.failures = []
        for pass_ in self.passes:
            # Cooperative deadline: a budgeted caller (the serving front
            # door) gets control back at the next pass boundary instead
            # of paying for the rest of the pipeline.  Free when no
            # deadline is installed.
            check_deadline(f"pass.{pass_.name}")
            for key in pass_.requires:
                if not ctx.has(key):
                    raise PipelineError(
                        f"pass {pass_.name!r} requires artifact {key!r}, "
                        "which no earlier pass produced",
                        pass_name=pass_.name,
                        artifact=key,
                    )
            snapshot = dict(ctx.artifacts)
            # One span per pass is the *single* timing measurement: its
            # wall time feeds timings(), EngineStats.pass_seconds and the
            # trace record alike, on the success and failure paths both
            # (the old start/except branches each computed their own
            # elapsed).  The span also lands in the active trace with the
            # pass name and, on failure, the error type.
            pass_span = timed_span(
                f"pass.{pass_.name}", graph=ctx.graph.name, strict=self.strict
            )
            try:
                with pass_span:
                    fault_point(f"pass.{pass_.name}", pass_name=pass_.name)
                    pass_.run(ctx)
                    if self.strict:
                        pass_.verify(ctx)
            except PipelineError:
                raise
            except Exception as exc:  # noqa: BLE001 — recovery boundary
                elapsed = pass_span.seconds
                if ctx.stats is not None:
                    ctx.stats.pass_seconds[pass_.name] = (
                        ctx.stats.pass_seconds.get(pass_.name, 0.0) + elapsed
                    )
                self._handle_failure(ctx, pass_, exc, elapsed, snapshot)
                continue
            elapsed = pass_span.seconds
            for key in pass_.produces:
                if not ctx.has(key):
                    raise PipelineError(
                        f"pass {pass_.name!r} declares it produces {key!r} "
                        "but did not publish it",
                        pass_name=pass_.name,
                        artifact=key,
                    )
            if ctx.stats is not None:
                ctx.stats.pass_seconds[pass_.name] = (
                    ctx.stats.pass_seconds.get(pass_.name, 0.0) + elapsed
                )
            self.executions.append(
                PassExecution(
                    name=pass_.name, seconds=elapsed, produced=tuple(pass_.produces)
                )
            )
            for observer in self.observers:
                observer(pass_, ctx, elapsed)
        return ctx

    def _handle_failure(
        self,
        ctx: CompilationContext,
        pass_: Pass,
        exc: Exception,
        elapsed: float,
        snapshot: dict[str, Any],
    ) -> None:
        """Record a failing pass and apply its recovery policy."""
        from repro.errors import ReproError

        action = self.recovery.get(pass_.name, "raise")
        wrapped: BaseException = exc
        if not isinstance(exc, ReproError):
            wrapped = PassError(
                f"pass {pass_.name!r} failed: {exc}", pass_name=pass_.name
            )
            wrapped.__cause__ = exc
        self.failures.append(
            PassFailure(name=pass_.name, error=wrapped, action=action, seconds=elapsed)
        )
        ctx.diagnose(
            pass_.name,
            "pass-failed",
            f"pass {pass_.name!r} failed ({type(exc).__name__}: {exc}); "
            + ("skipping it" if action == "skip" else "aborting the pipeline"),
            error=type(exc).__name__,
            action=action,
        )
        obs_annotate(
            "pass-recovery",
            pass_name=pass_.name,
            action=action,
            error=type(exc).__name__,
        )
        if action != "skip":
            raise wrapped from exc
        # A pass may die mid-flight having republished some artifacts but
        # not others; restore the pre-pass artifact set so downstream
        # passes see a consistent snapshot, and re-park the engine on the
        # last accepted score (the pass may have left it on a trial state).
        ctx.artifacts.clear()
        ctx.artifacts.update(snapshot)
        score = ctx.get("score")
        if ctx.engine is not None and score is not None:
            ctx.engine.set_state(
                score.onchip, score.residuals, ctx.get("fractions")
            )

    def description(self) -> str:
        """The pipeline as ``a -> b -> c`` (executed order when run)."""
        names = [e.name for e in self.executions] or [p.name for p in self.passes]
        return " -> ".join(names)

    def timings(self) -> tuple[tuple[str, float], ...]:
        """Per-pass wall seconds of the most recent run, in order."""
        return tuple((e.name, e.seconds) for e in self.executions)

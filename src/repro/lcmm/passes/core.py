"""Pass infrastructure: Pass protocol, CompilationContext, PassManager.

The LCMM flow (Fig. 4 of the paper) is literally a compiler pipeline —
feature reuse, prefetching, knapsack allocation, splitting — so it is
organised as one: each technique is a :class:`Pass` over a shared
:class:`CompilationContext`, and a :class:`PassManager` executes a
declarative pass list with uniform per-pass wall-time accounting,
requires/produces validation and structured :class:`PassDiagnostic`
records.

Passes communicate exclusively through named context *artifacts*
(``"feature"``, ``"prefetch"``, ``"allocation"``, ``"score"``,
``"placement"``, ``"fractions"``).  An artifact is replaced, never
patched in place: a pass that refines an earlier result publishes a new
object under the same key, so every intermediate stays a consistent
value (see the buffer-splitting recolour, which used to mutate
``FeatureReuseResult.buffers`` after the fact).

A module-level registry maps pass names to classes; user-defined passes
register with :func:`register_pass` and slot into any pipeline without
touching the framework (``examples/custom_pipeline.py``).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.hw.sram import BRAM36_BYTES, blocks_for
from repro.ir.graph import ComputationGraph
from repro.lcmm.options import LCMMOptions
from repro.perf.engine import AllocationEngine, EngineStats
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


class PipelineError(RuntimeError):
    """A pipeline is malformed: unknown pass, or artifact contract broken."""


@dataclass(frozen=True)
class PassDiagnostic:
    """One structured observation emitted by a pass.

    Attributes:
        pass_name: The emitting pass.
        category: Machine-matchable kebab-case tag (e.g.
            ``"split-accepted"``, ``"refinement-rejected"``).
        message: Human-readable one-liner for ``lcmm run --explain``.
        data: Supporting values (byte counts, latency deltas, tensor
            names) for programmatic consumers.
    """

    pass_name: str
    category: str
    message: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.pass_name}] {self.message}"


@dataclass(frozen=True)
class PassExecution:
    """Record of one executed pass: name, wall time, artifacts written."""

    name: str
    seconds: float
    produced: tuple[str, ...]


@dataclass
class CompilationContext:
    """Everything the passes share: inputs, evaluators, artifacts.

    Attributes:
        graph: The DNN computation graph under compilation.
        accel: The accelerator design point.
        options: Feature switches (passes read their knobs from here).
        model: Exact Eq. 1 latency model.
        engine: Incremental evaluator, or ``None`` on the naive oracle
            path (``options.use_engine=False``).
        stats: The engine's counters/timing sink (``None`` without one).
        budget: Total SRAM bytes available to LCMM (tile buffers
            included).
        capacity: Bytes left for tensor buffers after the block-rounded
            tile-buffer footprint.
        artifacts: Named pass outputs; replaced, never mutated.
        diagnostics: Structured records accumulated across all passes.
    """

    graph: ComputationGraph
    accel: AcceleratorConfig
    options: LCMMOptions
    model: LatencyModel
    engine: AllocationEngine | None
    stats: EngineStats | None
    budget: int
    capacity: int
    artifacts: dict[str, Any] = field(default_factory=dict)
    diagnostics: list[PassDiagnostic] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        graph: ComputationGraph,
        accel: AcceleratorConfig,
        options: LCMMOptions | None = None,
        model: LatencyModel | None = None,
    ) -> "CompilationContext":
        """Build a context: latency model, engine, capacity accounting.

        Raises:
            ValueError: When the tile buffers alone exceed the SRAM
                budget — no tensor allocation is possible.
        """
        options = options or LCMMOptions()
        model = model or LatencyModel(graph, accel)
        engine = AllocationEngine(model) if options.use_engine else None
        budget = options.sram_budget
        if budget is None:
            budget = accel.device.sram_bytes
        # Tile buffers consume whole BRAM blocks; subtract the block-rounded
        # footprint so block-level placement can never overflow.
        tile_bytes = blocks_for(accel.tile_buffer_bytes(), BRAM36_BYTES) * BRAM36_BYTES
        capacity = budget - tile_bytes
        if capacity < 0:
            raise ValueError(
                f"tile buffers alone exceed the SRAM budget ({tile_bytes} > {budget} bytes)"
            )
        return cls(
            graph=graph,
            accel=accel,
            options=options,
            model=model,
            engine=engine,
            stats=engine.stats if engine is not None else None,
            budget=budget,
            capacity=capacity,
        )

    # -- artifact access ------------------------------------------------
    def has(self, key: str) -> bool:
        """Whether an artifact has been produced."""
        return key in self.artifacts

    def get(self, key: str, default: Any = None) -> Any:
        """An artifact, or ``default`` when no pass produced it."""
        return self.artifacts.get(key, default)

    def require(self, key: str) -> Any:
        """An artifact that must exist; raises :class:`PipelineError`."""
        try:
            return self.artifacts[key]
        except KeyError:
            raise PipelineError(
                f"artifact {key!r} required but no executed pass produced it"
            ) from None

    def put(self, key: str, value: Any) -> None:
        """Publish (or replace) an artifact."""
        self.artifacts[key] = value

    def diagnose(self, pass_name: str, category: str, message: str, **data: Any) -> None:
        """Append one structured diagnostic record."""
        self.diagnostics.append(
            PassDiagnostic(
                pass_name=pass_name, category=category, message=message, data=data
            )
        )


class Pass(abc.ABC):
    """One stage of the LCMM pipeline.

    Subclasses declare a unique ``name``, the artifacts they consume
    (``requires``) and publish (``produces``), and implement
    :meth:`run`.  Declared artifacts are contracts the PassManager
    enforces before and after each run; optional inputs a pass can
    default (e.g. the allocator treating a missing ``"prefetch"`` as
    empty) are read with ``ctx.get`` and deliberately left undeclared.
    """

    #: Registry identity; also the per-pass timing key.
    name: str = ""
    #: Artifacts that must exist before this pass runs.
    requires: tuple[str, ...] = ()
    #: Artifacts guaranteed to exist after this pass runs.
    produces: tuple[str, ...] = ()

    @abc.abstractmethod
    def run(self, ctx: CompilationContext) -> None:
        """Execute against the shared context."""

    @classmethod
    def describe(cls) -> str:
        """First docstring line — the ``lcmm passes`` summary."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


#: All registered pass classes by name (populated by :func:`register_pass`).
PASS_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator adding a pass to the global registry.

    Raises:
        PipelineError: On a missing or already-registered name.
    """
    if not cls.name:
        raise PipelineError(f"pass class {cls.__name__} has no name")
    if cls.name in PASS_REGISTRY:
        raise PipelineError(f"pass name {cls.name!r} already registered")
    PASS_REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> dict[str, type[Pass]]:
    """The registry, sorted by pass name."""
    return dict(sorted(PASS_REGISTRY.items()))


def make_pass(name: str) -> Pass:
    """Instantiate a registered pass by name.

    Raises:
        PipelineError: On an unknown name.
    """
    try:
        return PASS_REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(PASS_REGISTRY))
        raise PipelineError(f"unknown pass {name!r}; registered: {known}") from None


def pipeline_from_names(names: Iterable[str]) -> list[Pass]:
    """Assemble a pipeline from registered pass names, in order."""
    return [make_pass(name) for name in names]


class PassManager:
    """Executes a pass list over a context with timing and validation.

    Every pass gets uniform wall-time accounting (mirrored into
    ``EngineStats.pass_seconds`` when an engine is attached, which is
    what ``lcmm run --profile-passes`` prints) and its requires/produces
    contract checked; violations raise :class:`PipelineError` naming the
    pass and the artifact.

    Args:
        passes: The pipeline, in execution order.
        observers: Optional callbacks ``(pass_, ctx, seconds)`` invoked
            after each pass — validation or tracing hooks for tests and
            tools.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        observers: Iterable[Any] = (),
    ) -> None:
        self.passes: list[Pass] = list(passes)
        self.observers = tuple(observers)
        #: Per-pass execution records of the most recent :meth:`run`.
        self.executions: list[PassExecution] = []

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Execute the pipeline; returns the same context for chaining."""
        self.executions = []
        for pass_ in self.passes:
            for key in pass_.requires:
                if not ctx.has(key):
                    raise PipelineError(
                        f"pass {pass_.name!r} requires artifact {key!r}, "
                        "which no earlier pass produced"
                    )
            start = time.perf_counter()
            pass_.run(ctx)
            elapsed = time.perf_counter() - start
            for key in pass_.produces:
                if not ctx.has(key):
                    raise PipelineError(
                        f"pass {pass_.name!r} declares it produces {key!r} "
                        "but did not publish it"
                    )
            if ctx.stats is not None:
                ctx.stats.pass_seconds[pass_.name] = (
                    ctx.stats.pass_seconds.get(pass_.name, 0.0) + elapsed
                )
            self.executions.append(
                PassExecution(
                    name=pass_.name, seconds=elapsed, produced=tuple(pass_.produces)
                )
            )
            for observer in self.observers:
                observer(pass_, ctx, elapsed)
        return ctx

    def description(self) -> str:
        """The pipeline as ``a -> b -> c`` (executed order when run)."""
        names = [e.name for e in self.executions] or [p.name for p in self.passes]
        return " -> ".join(names)

    def timings(self) -> tuple[tuple[str, float], ...]:
        """Per-pass wall seconds of the most recent run, in order."""
        return tuple((e.name, e.seconds) for e in self.executions)

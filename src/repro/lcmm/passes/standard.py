"""The standard LCMM passes — Fig. 4 of the paper, one class per stage.

Each technique of the monolithic ``run_lcmm`` is re-expressed as a
registered :class:`~repro.lcmm.passes.core.Pass`:

* :class:`FeatureReusePass` — liveness + colouring of feature tensors
  (Sec. 3.1), publishes ``"feature"``;
* :class:`WeightPrefetchPass` — the PDG and weight buffer colouring
  (Sec. 3.2), publishes ``"prefetch"``;
* :class:`DNNKAllocatePass` / :class:`GreedyAllocatePass` /
  :class:`SplittingAllocatePass` — the allocator variants (Sec. 3.3 /
  ablation baseline / Sec. 3.4), publish ``"allocation"``;
* :class:`ScorePass` — exact Eq. 1 scoring with prefetch residuals,
  publishes ``"score"``;
* :class:`RefinementPass` — the optional prefetch fixpoint, *as a pass*
  rather than a driver loop, republishes ``"prefetch"``/``"allocation"``/
  ``"score"`` on accepted iterations;
* :class:`PlacementPass` — block-granular URAM/BRAM placement, publishes
  ``"placement"``;
* :class:`FractionalFillPass` — the partial-residency extension,
  publishes ``"fractions"`` and republishes ``"score"``;
* :class:`FuseLayersPass` — LoopTree-style fused-layer tiling
  (:mod:`repro.lcmm.fusion`): adjacent producer/consumer pairs whose
  intermediate tile fits the provisioned input tile buffer stream
  through on-chip instead of round-tripping DRAM, with reuse-aware
  shortcut handling; publishes ``"fusion"`` and, when the fused
  candidate wins, swaps the context's model/engine and republishes
  ``"allocation"``/``"score"``;
* :class:`TransferSchedulePass` — SoMa-style DMA scheduling
  (:mod:`repro.sim.schedule`): every transfer is slotted onto its DDR
  channel with a double-buffered prefetch window; publishes
  ``"transfer_schedule"`` and republishes ``"score"`` when the
  scheduled makespan beats the bulk-synchronous Eq. 1 timeline.

All numeric work is byte-identical to the pre-pipeline monolith: the
passes call the same technique functions with the same inputs in the
same order, and the incremental engine never changes arithmetic, only
what gets recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import AllocationError
from repro.hw.sram import SRAMUsage, blocks_for, BRAM36_BYTES
from repro.ir.tensor import TensorKind, weight_tensor_name
from repro.lcmm.buffers import PhysicalBuffer, VirtualBuffer
from repro.lcmm.coloring import color_buffers
from repro.lcmm.dnnk import DNNKResult, dnnk_allocate, greedy_allocate
from repro.lcmm.feature_reuse import FeatureReuseResult, feature_reuse_pass
from repro.lcmm.fusion import FusedEdge, apply_fusion, find_fusion_candidates
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.passes.core import CompilationContext, Pass, register_pass
from repro.lcmm.prefetch import (
    PrefetchResult,
    hiding_capacity,
    weight_prefetch_pass,
)
from repro.lcmm.splitting import buffer_splitting_pass, combine_buffers
from repro.perf.engine import AllocationEngine
from repro.perf.latency import LatencyModel
from repro.sim.schedule import (
    TransferTimeline,
    demand_bytes,
    schedule_transfers,
)


# ---------------------------------------------------------------------------
# Artifact types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllocationDecision:
    """The ``"allocation"`` artifact: what the allocator chose.

    Attributes:
        buffers: Combined virtual buffer list the allocator ran on.
        result: The DNNK (or greedy) outcome.
        splitting_iterations: Buffer splits that were kept (0 for the
            non-splitting variants).
    """

    buffers: list[VirtualBuffer]
    result: DNNKResult
    splitting_iterations: int = 0


@dataclass(frozen=True)
class AllocationScore:
    """The ``"score"`` artifact: the exact evaluation of an allocation.

    Attributes:
        onchip: Tensor values fully resident on chip.
        residuals: Unhidden prefetch seconds per on-chip weight tensor.
        latency: Exact end-to-end latency (Eq. 1 + residuals).
        node_latencies: Per executed node latency under the allocation.
    """

    onchip: frozenset[str]
    residuals: dict[str, float]
    latency: float
    node_latencies: dict[str, float]


@dataclass(frozen=True)
class FusionDecision:
    """The ``"fusion"`` artifact: what the fused-tiling pass decided.

    Attributes:
        edges: Accepted fusion edges (empty when fusion found no legal
            candidates or the fused evaluation did not improve Eq. 1).
        bytes_saved: DDR bytes the accepted edges remove per inference.
        candidates: Legal edges considered (accepted or not).
        reallocated: The winning fused evaluation re-ran the allocator
            on the fused model (vs keeping the incumbent on-chip set).
    """

    edges: tuple[FusedEdge, ...] = ()
    bytes_saved: int = 0
    candidates: int = 0
    reallocated: bool = False

    @property
    def accepted(self) -> bool:
        return bool(self.edges)


@dataclass(frozen=True)
class Placement:
    """The ``"placement"`` artifact: block-level physical memory map.

    ``usage`` is a live ledger: a later pass that claims more blocks
    (fractional fill) allocates from it rather than replacing it.
    """

    usage: SRAMUsage
    buffers: list[PhysicalBuffer] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Shared evaluation helpers
# ---------------------------------------------------------------------------


def empty_feature_result() -> FeatureReuseResult:
    """The no-op feature artifact (feature reuse disabled or not run)."""
    return FeatureReuseResult(
        candidates=[], interference=InterferenceGraph(), buffers=[]
    )


def empty_prefetch_result() -> PrefetchResult:
    """The no-op prefetch artifact (prefetching disabled or not run)."""
    return PrefetchResult(
        edges={}, candidates=[], interference=InterferenceGraph(), buffers=[]
    )


def empty_dnnk_result(capacity_bytes: int = 0) -> DNNKResult:
    """An allocator outcome that keeps every tensor in DDR (UMM-only)."""
    return DNNKResult(
        allocated=[],
        spilled=[],
        onchip_tensors=frozenset(),
        predicted_reduction=0.0,
        capacity_bytes=capacity_bytes,
        used_bytes=0,
    )


def compute_residuals(
    model: LatencyModel,
    prefetch: PrefetchResult,
    onchip: frozenset[str],
    engine: AllocationEngine | None = None,
) -> dict[str, float]:
    """Unhidden prefetch time per on-chip weight tensor.

    Hiding capacity is re-measured on the *post-allocation* schedule:
    pinning tensors on chip makes earlier nodes faster, which shrinks the
    window a prefetch can hide behind.

    With an engine, this performs exactly **one** ``set_state`` jump to
    ``onchip`` and reads the per-node latencies and weight-interface
    demands from the cached state; the engine is left parked there, so
    callers that need residuals folded in patch them incrementally
    (see :func:`evaluate_allocation`) instead of issuing a second
    absolute jump.  The numbers are bit-for-bit the same as the naive
    walk either way.
    """
    schedule = model.nodes()
    index_of = {name: idx for idx, name in enumerate(schedule)}
    if engine is not None:
        engine.set_state(onchip)
        latencies = engine.node_latency_list()
        # hiding_capacity's demand term is the node's weight-interface
        # sum under `onchip` — exactly the engine's cached kind-1 sum.
        capacities = [
            max(0.0, lat - engine.weight_demand(ni))
            for ni, lat in enumerate(latencies)
        ]
    else:
        latencies = [model.node_latency(name, onchip) for name in schedule]
        capacities = hiding_capacity(model, latencies, schedule, onchip)
    residuals: dict[str, float] = {}
    for node, edge in prefetch.edges.items():
        wname = weight_tensor_name(node)
        if wname not in onchip:
            continue
        start, end = index_of[edge.start], index_of[node]
        hidden = sum(capacities[start:end])
        residual = max(0.0, edge.load_time - hidden)
        if residual > 0.0:
            residuals[wname] = residual
    return residuals


def evaluate_allocation(
    model: LatencyModel,
    prefetch: PrefetchResult,
    onchip: frozenset[str],
    engine: AllocationEngine | None = None,
) -> tuple[dict[str, float], float]:
    """Residuals and exact end-to-end latency of one candidate allocation.

    This is the allocator probe.  With an engine it costs a single
    ``set_state`` transition (plus one incremental residual patch only
    when residuals exist) — the old evaluate closure issued a second
    absolute jump per probe, re-diffing the whole on-chip set.  The
    engine is left parked on ``(onchip, residuals)``.
    """
    residuals = compute_residuals(model, prefetch, onchip, engine)
    if engine is not None:
        if residuals:
            engine.apply(residuals=residuals)
        return residuals, engine.total()
    return residuals, model.total_latency(onchip, residuals)


def _node_latencies(
    model: LatencyModel,
    onchip: frozenset[str],
    residuals: dict[str, float],
    engine: AllocationEngine | None,
) -> dict[str, float]:
    """Per-node latencies under the (already engine-synced) state."""
    if engine is not None:
        return engine.node_latencies()
    return {
        name: model.node_latency(name, onchip, residuals)
        for name in model.nodes()
    }


# ---------------------------------------------------------------------------
# Technique passes
# ---------------------------------------------------------------------------


@register_pass
class FeatureReusePass(Pass):
    """Feature buffer reuse: liveness, interference, colouring (Sec. 3.1)."""

    name = "feature_reuse"
    produces = ("feature",)

    def run(self, ctx: CompilationContext) -> None:
        result = feature_reuse_pass(ctx.graph, ctx.model)
        ctx.put("feature", result)
        ctx.diagnose(
            self.name,
            "summary",
            f"{len(result.candidates)} candidate feature tensors -> "
            f"{len(result.buffers)} virtual buffers",
            candidates=len(result.candidates),
            buffers=len(result.buffers),
        )


@register_pass
class WeightPrefetchPass(Pass):
    """Weight prefetching: PDG back-trace and buffer colouring (Sec. 3.2)."""

    name = "weight_prefetch"
    produces = ("prefetch",)

    def run(self, ctx: CompilationContext) -> None:
        result = weight_prefetch_pass(ctx.graph, ctx.model)
        ctx.put("prefetch", result)
        hidden = sum(1 for e in result.edges.values() if e.fully_hidden)
        ctx.diagnose(
            self.name,
            "summary",
            f"{len(result.edges)} prefetch edges ({hidden} fully hidden) -> "
            f"{len(result.buffers)} virtual buffers",
            edges=len(result.edges),
            fully_hidden=hidden,
            buffers=len(result.buffers),
        )


class _AllocateBase(Pass):
    """Shared machinery of the allocator variants."""

    produces = ("allocation",)

    def verify(self, ctx: CompilationContext) -> None:
        """Strict check: the chosen allocation fits and is consistent."""
        allocation: AllocationDecision = ctx.require("allocation")
        result = allocation.result
        if result.used_bytes > result.capacity_bytes:
            raise AllocationError(
                f"allocator used {result.used_bytes} of "
                f"{result.capacity_bytes} capacity bytes",
                pass_name=self.name,
            )
        from_buffers = {
            t.name for buf in result.allocated for t in buf.tensors
        }
        if from_buffers != set(result.onchip_tensors):
            raise AllocationError(
                "on-chip tensor set does not match the allocated buffers",
                pass_name=self.name,
            )

    def _inputs(
        self, ctx: CompilationContext
    ) -> tuple[FeatureReuseResult, PrefetchResult]:
        # The colouring passes are optional (ablations omit them); a
        # missing artifact means an empty tensor population.
        feature = ctx.get("feature")
        if feature is None:
            feature = empty_feature_result()
        prefetch = ctx.get("prefetch")
        if prefetch is None:
            prefetch = empty_prefetch_result()
        return feature, prefetch

    def _summarise(self, ctx: CompilationContext, result: DNNKResult) -> None:
        ctx.diagnose(
            self.name,
            "summary",
            f"{len(result.allocated)} buffers on chip, "
            f"{len(result.spilled)} spilled, "
            f"{result.used_bytes} of {result.capacity_bytes} bytes used",
            allocated=len(result.allocated),
            spilled=len(result.spilled),
            used_bytes=result.used_bytes,
            capacity_bytes=result.capacity_bytes,
        )


@register_pass
class DNNKAllocatePass(_AllocateBase):
    """DNNK: the pivot-compensated 0/1 knapsack allocator (Sec. 3.3)."""

    name = "allocate_dnnk"

    def run(self, ctx: CompilationContext) -> None:
        feature, prefetch = self._inputs(ctx)
        buffers = combine_buffers([feature.buffers, prefetch.buffers])
        result = dnnk_allocate(
            buffers, ctx.model, ctx.capacity, ctx.options.granularity,
            engine=ctx.engine,
        )
        ctx.put("allocation", AllocationDecision(buffers=buffers, result=result))
        self._summarise(ctx, result)


@register_pass
class GreedyAllocatePass(_AllocateBase):
    """Density-greedy allocator — the ablation baseline DNNK is measured against."""

    name = "allocate_greedy"

    def run(self, ctx: CompilationContext) -> None:
        feature, prefetch = self._inputs(ctx)
        buffers = combine_buffers([feature.buffers, prefetch.buffers])
        result = greedy_allocate(buffers, ctx.model, ctx.capacity, engine=ctx.engine)
        ctx.put("allocation", AllocationDecision(buffers=buffers, result=result))
        self._summarise(ctx, result)


@register_pass
class SplittingAllocatePass(_AllocateBase):
    """DNNK with buffer splitting: false-edge retries against misspilling (Sec. 3.4)."""

    name = "allocate_splitting"

    def run(self, ctx: CompilationContext) -> None:
        feature, prefetch = self._inputs(ctx)
        model, engine = ctx.model, ctx.engine

        def evaluate(onchip: frozenset[str]) -> float:
            return evaluate_allocation(model, prefetch, onchip, engine)[1]

        outcome = buffer_splitting_pass(
            feature.interference,
            prefetch.interference,
            model,
            ctx.capacity,
            evaluate,
            granularity=ctx.options.granularity,
            engine=engine,
        )
        ctx.put(
            "allocation",
            AllocationDecision(
                buffers=outcome.buffers,
                result=outcome.result,
                splitting_iterations=outcome.iterations,
            ),
        )
        # The splitting loop may have added false edges; republish the
        # per-technique results with buffer views recoloured against the
        # final graphs.  New objects, not field patches — pass results
        # stay immutable once published.
        ctx.put("feature", replace(feature, buffers=color_buffers(feature.interference)))
        ctx.put(
            "prefetch", replace(prefetch, buffers=color_buffers(prefetch.interference))
        )
        for attempt in outcome.attempts:
            if attempt.accepted:
                ctx.diagnose(
                    self.name,
                    "split-accepted",
                    "misspilling split accepted: separated "
                    f"{attempt.tensor_a!r} from {attempt.tensor_b!r} "
                    f"(latency {attempt.latency:.3e}s)",
                    tensor_a=attempt.tensor_a,
                    tensor_b=attempt.tensor_b,
                    latency=attempt.latency,
                )
            else:
                ctx.diagnose(
                    self.name,
                    "split-rejected",
                    f"split of {attempt.tensor_a!r} from {attempt.tensor_b!r} "
                    "rejected: Δlatency ≥ 0",
                    tensor_a=attempt.tensor_a,
                    tensor_b=attempt.tensor_b,
                    latency=attempt.latency,
                )
        self._summarise(ctx, outcome.result)


@register_pass
class ScorePass(Pass):
    """Exact Eq. 1 scoring of the chosen allocation, residuals included."""

    name = "score"
    requires = ("allocation",)
    produces = ("score",)

    def run(self, ctx: CompilationContext) -> None:
        allocation: AllocationDecision = ctx.require("allocation")
        prefetch = ctx.get("prefetch")
        if prefetch is None:
            prefetch = empty_prefetch_result()
        onchip = allocation.result.onchip_tensors
        residuals, latency = evaluate_allocation(
            ctx.model, prefetch, onchip, ctx.engine
        )
        node_latencies = _node_latencies(ctx.model, onchip, residuals, ctx.engine)
        ctx.put(
            "score",
            AllocationScore(
                onchip=onchip,
                residuals=residuals,
                latency=latency,
                node_latencies=node_latencies,
            ),
        )

    def verify(self, ctx: CompilationContext) -> None:
        _verify_score(self.name, ctx)


def _verify_score(pass_name: str, ctx: CompilationContext) -> None:
    """Strict check shared by the scoring passes.

    The score must sit inside the paper's bounds — never slower than UMM,
    never faster than the compute bound — and residuals may only attach
    to on-chip weight tensors.  Reads only the pure latency model.
    """
    score: AllocationScore = ctx.require("score")
    umm = ctx.model.umm_latency()
    if score.latency > umm + 1e-12:
        raise AllocationError(
            f"scored latency {score.latency} exceeds UMM latency {umm}",
            pass_name=pass_name,
        )
    floor = ctx.model.compute_bound_latency()
    if score.latency < floor - 1e-12:
        raise AllocationError(
            f"scored latency {score.latency} below compute bound {floor}",
            pass_name=pass_name,
        )
    for tensor, residual in score.residuals.items():
        if tensor not in score.onchip:
            raise AllocationError(
                f"residual on off-chip tensor {tensor!r}", pass_name=pass_name
            )
        if residual < 0:
            raise AllocationError(
                f"negative residual on {tensor!r}", pass_name=pass_name
            )


@register_pass
class FuseLayersPass(Pass):
    """Fused-layer tiling: adjacent pairs stream through on-chip.

    Finds every legal fusion edge (:func:`repro.lcmm.fusion.
    find_fusion_candidates`), derives the fused latency model with the
    fused streams zeroed, and evaluates two fused candidates exactly:

    * **keep** — the incumbent on-chip set re-scored on the fused model,
    * **reallocate** — the allocator re-run against the fused model, so
      the knapsack (and through it the DSE sweep and the cache) sees the
      post-fusion marginal gains of every buffer.

    The better of the two replaces the context's model, engine and
    score **only when it strictly improves** the Eq. 1 objective —
    zeroing a shortcut producer's read can shrink prefetch hiding
    windows, so monotonicity is enforced by evaluation, not assumed.
    """

    name = "fuse_layers"
    requires = ("allocation", "score")
    produces = ("fusion",)

    def run(self, ctx: CompilationContext) -> None:
        allocation: AllocationDecision = ctx.require("allocation")
        score: AllocationScore = ctx.require("score")
        prefetch = ctx.get("prefetch")
        if prefetch is None:
            prefetch = empty_prefetch_result()

        edges = find_fusion_candidates(ctx.model)
        if not edges:
            ctx.put("fusion", FusionDecision())
            ctx.diagnose(
                self.name,
                "fusion-none",
                "no legal fusion candidates in the schedule",
            )
            return

        fused_model = apply_fusion(ctx.model, edges)
        fused_engine = (
            AllocationEngine(fused_model, stats=ctx.stats)
            if ctx.engine is not None
            else None
        )
        # Candidate "keep": the incumbent on-chip set on the fused model.
        keep_residuals, keep_latency = evaluate_allocation(
            fused_model, prefetch, score.onchip, fused_engine
        )
        # Candidate "reallocate": the allocator re-run on the fused model.
        if ctx.options.use_greedy:
            fused_dnnk = greedy_allocate(
                allocation.buffers, fused_model, ctx.capacity, engine=fused_engine
            )
        else:
            fused_dnnk = dnnk_allocate(
                allocation.buffers,
                fused_model,
                ctx.capacity,
                ctx.options.granularity,
                engine=fused_engine,
            )
        reall_residuals, reall_latency = evaluate_allocation(
            fused_model, prefetch, fused_dnnk.onchip_tensors, fused_engine
        )

        reallocate = reall_latency < keep_latency - 1e-15
        best = reall_latency if reallocate else keep_latency
        if best >= score.latency - 1e-15:
            ctx.put("fusion", FusionDecision(candidates=len(edges)))
            ctx.diagnose(
                self.name,
                "fusion-rejected",
                f"fusion of {len(edges)} edges rejected: Δlatency ≥ 0 "
                f"(fused {best:.3e}s vs {score.latency:.3e}s)",
                candidates=len(edges),
                fused_latency=best,
                best_latency=score.latency,
            )
            return

        if reallocate:
            onchip, residuals, latency = (
                fused_dnnk.onchip_tensors, reall_residuals, reall_latency,
            )
            ctx.put(
                "allocation",
                AllocationDecision(
                    buffers=allocation.buffers,
                    result=fused_dnnk,
                    splitting_iterations=allocation.splitting_iterations,
                ),
            )
        else:
            onchip, residuals, latency = (
                score.onchip, keep_residuals, keep_latency,
            )
            if fused_engine is not None:
                # The engine is parked on the losing reallocation trial.
                fused_engine.set_state(onchip, residuals)

        # The fused model is now the model of record: every downstream
        # pass (refinement, placement, fractional fill, scheduling) and
        # the packaged result evaluate against the fused transfers.
        ctx.model = fused_model
        ctx.engine = fused_engine
        node_latencies = _node_latencies(
            fused_model, onchip, residuals, fused_engine
        )
        ctx.put(
            "score",
            AllocationScore(
                onchip=onchip,
                residuals=residuals,
                latency=latency,
                node_latencies=node_latencies,
            ),
        )
        decision = FusionDecision(
            edges=tuple(edges),
            bytes_saved=sum(e.bytes_saved for e in edges),
            candidates=len(edges),
            reallocated=reallocate,
        )
        ctx.put("fusion", decision)
        shortcuts = sum(1 for e in edges if e.shortcut)
        ctx.diagnose(
            self.name,
            "fusion-accepted",
            f"fused {len(edges)} edges ({shortcuts} shortcut-aware, "
            f"{decision.bytes_saved} DDR bytes elided): latency "
            f"{score.latency:.3e}s -> {latency:.3e}s"
            + (" via reallocation" if reallocate else ""),
            edges=len(edges),
            shortcuts=shortcuts,
            bytes_saved=decision.bytes_saved,
            latency=latency,
            previous_latency=score.latency,
            reallocated=reallocate,
        )

    def verify(self, ctx: CompilationContext) -> None:
        decision: FusionDecision = ctx.require("fusion")
        if decision.accepted:
            for edge in decision.edges:
                for slot in ctx.model.layer(edge.consumer).slots:
                    if (
                        slot.kind is TensorKind.IFMAP
                        and slot.tensor == edge.tensor
                        and slot.bytes != 0
                    ):
                        raise AllocationError(
                            f"fused edge {edge.producer!r} -> "
                            f"{edge.consumer!r} still streams its read",
                            pass_name=self.name,
                        )
        _verify_score(self.name, ctx)


@register_pass
class RefinementPass(Pass):
    """Prefetch fixpoint: re-derive hiding windows from the achieved schedule.

    Each iteration recomputes prefetch windows against the current
    (faster) node latencies, re-colours the weight buffers with the new
    lifespans and re-allocates; an iteration is kept only if the exact
    latency improves.  The fixpoint lives here as a pass — the driver no
    longer loops.  On exit the engine is parked on the accepted state,
    whatever trial state the last rejected iteration left it in.
    """

    name = "refinement"
    requires = ("allocation", "score")

    def run(self, ctx: CompilationContext) -> None:
        score: AllocationScore = ctx.require("score")
        prefetch = ctx.get("prefetch")
        if prefetch is None:
            ctx.diagnose(
                self.name,
                "refinement-skipped",
                "refinement skipped: no prefetch artifact in the pipeline",
            )
            return
        feature = ctx.get("feature")
        if feature is None:
            feature = empty_feature_result()
        model, engine, options = ctx.model, ctx.engine, ctx.options
        allocation: AllocationDecision = ctx.require("allocation")
        onchip, residuals = score.onchip, score.residuals
        latency, node_latencies = score.latency, score.node_latencies
        dnnk = allocation.result

        for iteration in range(1, options.prefetch_refinement + 1):
            refined = weight_prefetch_pass(ctx.graph, model, node_latencies)
            refined_buffers = combine_buffers([feature.buffers, refined.buffers])
            if options.use_greedy:
                refined_dnnk = greedy_allocate(
                    refined_buffers, model, ctx.capacity, engine=engine
                )
            else:
                refined_dnnk = dnnk_allocate(
                    refined_buffers, model, ctx.capacity, options.granularity,
                    engine=engine,
                )
            refined_onchip = refined_dnnk.onchip_tensors
            refined_residuals, refined_latency = evaluate_allocation(
                model, refined, refined_onchip, engine
            )
            if refined_latency >= latency - 1e-15:
                ctx.diagnose(
                    self.name,
                    "refinement-rejected",
                    f"refinement iteration {iteration} rejected: "
                    "Δlatency ≥ 0",
                    iteration=iteration,
                    latency=refined_latency,
                    best_latency=latency,
                )
                break
            ctx.diagnose(
                self.name,
                "refinement-accepted",
                f"refinement iteration {iteration} accepted: "
                f"latency {latency:.3e}s -> {refined_latency:.3e}s",
                iteration=iteration,
                latency=refined_latency,
                previous_latency=latency,
            )
            prefetch, dnnk = refined, refined_dnnk
            onchip, residuals = refined_onchip, refined_residuals
            latency = refined_latency
            node_latencies = _node_latencies(model, onchip, residuals, engine)
            ctx.put("prefetch", prefetch)
            ctx.put(
                "allocation",
                AllocationDecision(
                    buffers=refined_buffers,
                    result=dnnk,
                    splitting_iterations=allocation.splitting_iterations,
                ),
            )
            ctx.put(
                "score",
                AllocationScore(
                    onchip=onchip,
                    residuals=residuals,
                    latency=latency,
                    node_latencies=node_latencies,
                ),
            )

        # A rejected iteration leaves the engine on its trial state; park
        # it on the accepted allocation so downstream incremental deltas
        # (fractional fill) start from the right baseline.
        if engine is not None:
            engine.set_state(onchip, residuals)

    def verify(self, ctx: CompilationContext) -> None:
        score: AllocationScore = ctx.require("score")
        allocation: AllocationDecision = ctx.require("allocation")
        if score.onchip != allocation.result.onchip_tensors:
            raise AllocationError(
                "refined score and allocation disagree on the on-chip set",
                pass_name=self.name,
            )
        _verify_score(self.name, ctx)


@register_pass
class PlacementPass(Pass):
    """Block-granular physical placement: tile buffers, then URAM-first tensors."""

    name = "placement"
    requires = ("allocation",)
    produces = ("placement",)

    def run(self, ctx: CompilationContext) -> None:
        allocation: AllocationDecision = ctx.require("allocation")
        usage = SRAMUsage(budget=ctx.accel.device.sram)
        usage.bram36_used += blocks_for(ctx.accel.tile_buffer_bytes(), BRAM36_BYTES)
        physical = []
        for idx, vbuf in enumerate(allocation.result.allocated):
            uram, bram = usage.allocate(vbuf.size_bytes)
            physical.append(
                PhysicalBuffer(
                    index=idx, virtual=vbuf, uram_blocks=uram, bram36_blocks=bram
                )
            )
        ctx.put("placement", Placement(usage=usage, buffers=physical))

    def verify(self, ctx: CompilationContext) -> None:
        """Strict check: block-level placement stays within the device."""
        placement: Placement = ctx.require("placement")
        usage = placement.usage
        if usage.uram_used > usage.budget.uram_blocks:
            raise AllocationError("URAM over-committed", pass_name=self.name)
        if usage.bram36_used > usage.budget.bram36_blocks:
            raise AllocationError("BRAM over-committed", pass_name=self.name)
        allocation: AllocationDecision = ctx.require("allocation")
        if len(placement.buffers) != len(allocation.result.allocated):
            raise AllocationError(
                "placement did not place every allocated buffer",
                pass_name=self.name,
            )


@register_pass
class FractionalFillPass(Pass):
    """Partial-residency fill of stranded capacity (extension beyond the paper).

    Whole-tensor knapsacks strand capacity smaller than any remaining
    tensor; this pass pins block-floored *slices* of spilled feature
    tensors into the leftover, best latency-density first, keeping each
    pin only when the exact latency improves.
    """

    name = "fractional_fill"
    requires = ("allocation", "score", "placement")
    produces = ("fractions",)

    def run(self, ctx: CompilationContext) -> None:
        allocation: AllocationDecision = ctx.require("allocation")
        score: AllocationScore = ctx.require("score")
        placement: Placement = ctx.require("placement")
        feature = ctx.get("feature")
        if feature is None:
            feature = empty_feature_result()
        model, engine = ctx.model, ctx.engine
        granularity = ctx.options.granularity
        usage = placement.usage
        onchip, residuals = score.onchip, score.residuals
        latency = score.latency

        fractions: dict[str, float] = {}
        allocated_bytes = sum(
            blocks_for(b.size_bytes, granularity) * granularity
            for b in allocation.result.allocated
        )
        leftover = ctx.capacity - allocated_bytes
        spill_candidates = sorted(
            (
                c
                for c in feature.candidates
                if c.name not in onchip and c.latency_reduction > 0
            ),
            key=lambda c: -c.latency_reduction / c.size_bytes,
        )
        for cand in spill_candidates:
            if leftover < granularity:
                break
            # Partial pins occupy whole blocks: floor the usable slice to
            # the capacity quantum so block-level placement cannot
            # overflow the budget.
            usable = min(
                (leftover // granularity) * granularity,
                blocks_for(cand.size_bytes, granularity) * granularity,
            )
            fraction = min(1.0, usable / cand.size_bytes)
            if fraction <= 0.0:
                continue
            trial = dict(fractions)
            trial[cand.name] = fraction
            if engine is not None:
                # One-tensor incremental pin; rolled back on rejection.
                engine.apply(fractions={cand.name: fraction})
                trial_latency = engine.total()
            else:
                trial_latency = model.total_latency(onchip, residuals, trial)
            accepted = False
            if trial_latency < latency - 1e-15:
                block_bytes = blocks_for(
                    min(usable, cand.size_bytes), granularity
                ) * granularity
                if block_bytes <= leftover and usage.can_fit(block_bytes):
                    usage.allocate(block_bytes)
                    fractions = trial
                    latency = trial_latency
                    leftover -= block_bytes
                    accepted = True
                    ctx.diagnose(
                        self.name,
                        "fraction-accepted",
                        f"pinned {fraction:.0%} of {cand.name!r} "
                        f"({block_bytes} bytes)",
                        tensor=cand.name,
                        fraction=fraction,
                        block_bytes=block_bytes,
                    )
            if engine is not None and not accepted:
                engine.undo()
        if fractions:
            node_latencies = (
                engine.node_latencies()
                if engine is not None
                else {
                    name: model.node_latency(name, onchip, residuals, fractions)
                    for name in model.nodes()
                }
            )
            ctx.put(
                "score",
                replace(score, latency=latency, node_latencies=node_latencies),
            )
        ctx.put("fractions", fractions)
        ctx.diagnose(
            self.name,
            "stranded-capacity",
            f"fractional fill stranded {leftover} bytes "
            f"({len(fractions)} partial pins kept)",
            stranded_bytes=leftover,
            pins=len(fractions),
        )

    def verify(self, ctx: CompilationContext) -> None:
        score: AllocationScore = ctx.require("score")
        for tensor, fraction in ctx.require("fractions").items():
            if not 0.0 < fraction <= 1.0:
                raise AllocationError(
                    f"fraction {fraction} for {tensor!r} outside (0, 1]",
                    pass_name=self.name,
                )
            if tensor in score.onchip:
                raise AllocationError(
                    f"fraction pinned for already-resident tensor {tensor!r}",
                    pass_name=self.name,
                )
        _verify_score(self.name, ctx)


@register_pass
class TransferSchedulePass(Pass):
    """DMA transfer scheduling: rewrite the simulator's transfer timeline.

    Runs after placement with the final allocation fixed; list-schedules
    every transfer onto its DDR channel with double-buffered prefetch
    windows (:func:`repro.sim.schedule.schedule_transfers`) and, when
    the scheduled makespan beats the bulk-synchronous Eq. 1 total,
    republishes the score with the scheduled latency.  The schedule is
    monotone non-increasing by construction, so this pass can only
    tighten the result.
    """

    name = "transfer_schedule"
    requires = ("score", "placement")
    produces = ("transfer_schedule",)

    def run(self, ctx: CompilationContext) -> None:
        score: AllocationScore = ctx.require("score")
        fractions = ctx.get("fractions", {})
        timeline = schedule_transfers(
            ctx.model, score.onchip, score.residuals, fractions
        )
        ctx.put("transfer_schedule", timeline)
        if timeline.makespan < score.latency - 1e-15:
            ctx.put(
                "score",
                replace(
                    score,
                    latency=timeline.makespan,
                    node_latencies=timeline.node_latencies(),
                ),
            )
            ctx.diagnose(
                self.name,
                "schedule-accepted",
                f"scheduled {len(timeline.records)} transfers: latency "
                f"{score.latency:.3e}s -> {timeline.makespan:.3e}s "
                f"({timeline.improvement / score.latency:.1%} hidden by "
                "prefetch windows)",
                transfers=len(timeline.records),
                latency=timeline.makespan,
                previous_latency=score.latency,
            )
        else:
            ctx.diagnose(
                self.name,
                "schedule-neutral",
                f"scheduled {len(timeline.records)} transfers: timeline "
                "already tight (no overlap available)",
                transfers=len(timeline.records),
                latency=score.latency,
            )

    def verify(self, ctx: CompilationContext) -> None:
        timeline: TransferTimeline = ctx.require("transfer_schedule")
        score: AllocationScore = ctx.require("score")
        if timeline.makespan > timeline.baseline + 1e-12:
            raise AllocationError(
                f"scheduled makespan {timeline.makespan} exceeds the "
                f"bulk-synchronous baseline {timeline.baseline}",
                pass_name=self.name,
            )
        expected = demand_bytes(
            ctx.model, score.onchip, score.residuals, ctx.get("fractions", {})
        )
        if timeline.total_bytes != expected:
            raise AllocationError(
                f"scheduled timeline moves {timeline.total_bytes} bytes, "
                f"allocation demands {expected}",
                pass_name=self.name,
            )
        for kind in (TensorKind.IFMAP, TensorKind.WEIGHT, TensorKind.OFMAP):
            recs = timeline.channel_records(kind)
            for a, b in zip(recs, recs[1:]):
                if b.start < a.end - 1e-15:
                    raise AllocationError(
                        f"overlapping transfers on the {kind.value} channel",
                        pass_name=self.name,
                    )
        _verify_score(self.name, ctx)


def default_pipeline(options) -> list[Pass]:
    """The pass list :func:`repro.lcmm.framework.run_lcmm` executes.

    Mirrors the paper's Fig. 4 flow: the enabled colouring techniques,
    one allocator variant, exact scoring, then the optional fixpoint and
    extension passes.  Ablations that used to flip option flags can
    equivalently drop or swap passes here (see
    :func:`repro.lcmm.passes.core.pipeline_from_names`).
    """
    passes: list[Pass] = []
    if options.feature_reuse:
        passes.append(FeatureReusePass())
    if options.weight_prefetch:
        passes.append(WeightPrefetchPass())
    if options.use_greedy:
        passes.append(GreedyAllocatePass())
    elif options.splitting:
        passes.append(SplittingAllocatePass())
    else:
        passes.append(DNNKAllocatePass())
    passes.append(ScorePass())
    if options.fuse_layers:
        passes.append(FuseLayersPass())
    if options.weight_prefetch and options.prefetch_refinement > 0:
        passes.append(RefinementPass())
    passes.append(PlacementPass())
    if options.fractional_fill:
        passes.append(FractionalFillPass())
    if options.transfer_schedule:
        passes.append(TransferSchedulePass())
    return passes

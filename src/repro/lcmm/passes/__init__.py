"""Compiler-style pass pipeline for LCMM.

The framework's Fig. 4 flow as an explicit, explorable pass schedule:
:class:`Pass` implementations over a shared :class:`CompilationContext`,
executed by a :class:`PassManager` with per-pass timing, artifact
validation and structured :class:`PassDiagnostic` records.

Quick tour::

    from repro.lcmm.passes import (
        CompilationContext, PassManager, default_pipeline,
    )

    ctx = CompilationContext.create(graph, accel, options)
    manager = PassManager(default_pipeline(options))
    manager.run(ctx)
    score = ctx.require("score")          # exact latency + residuals

Custom pipelines come from the registry (``pipeline_from_names``) or
plain lists mixing standard and user-defined passes — see
``examples/custom_pipeline.py``.
"""

from repro.lcmm.passes.core import (
    PASS_REGISTRY,
    CompilationContext,
    Pass,
    PassDiagnostic,
    PassExecution,
    PassFailure,
    PassManager,
    PipelineError,
    make_pass,
    pipeline_from_names,
    register_pass,
    registered_passes,
)
from repro.lcmm.passes.standard import (
    AllocationDecision,
    AllocationScore,
    DNNKAllocatePass,
    FeatureReusePass,
    FractionalFillPass,
    FuseLayersPass,
    FusionDecision,
    GreedyAllocatePass,
    Placement,
    PlacementPass,
    RefinementPass,
    ScorePass,
    SplittingAllocatePass,
    TransferSchedulePass,
    WeightPrefetchPass,
    compute_residuals,
    default_pipeline,
    empty_dnnk_result,
    empty_feature_result,
    empty_prefetch_result,
    evaluate_allocation,
)

__all__ = [
    "PASS_REGISTRY",
    "CompilationContext",
    "Pass",
    "PassDiagnostic",
    "PassExecution",
    "PassFailure",
    "PassManager",
    "PipelineError",
    "make_pass",
    "pipeline_from_names",
    "register_pass",
    "registered_passes",
    "AllocationDecision",
    "AllocationScore",
    "FusionDecision",
    "Placement",
    "FeatureReusePass",
    "WeightPrefetchPass",
    "DNNKAllocatePass",
    "GreedyAllocatePass",
    "SplittingAllocatePass",
    "ScorePass",
    "RefinementPass",
    "PlacementPass",
    "FractionalFillPass",
    "FuseLayersPass",
    "TransferSchedulePass",
    "compute_residuals",
    "evaluate_allocation",
    "default_pipeline",
    "empty_dnnk_result",
    "empty_feature_result",
    "empty_prefetch_result",
]

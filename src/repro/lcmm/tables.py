"""The DNNK input tables of Fig. 7 and the tensor metric of Eq. 2.

Three tables drive the allocator:

* the **operation latency table** — per executed node, the compute latency
  and the three per-interface transfer latencies (Fig. 7(c));
* the **tensor metric table** — per candidate tensor, the latency
  reduction ``L`` it brings when moved on-chip alone (Eq. 2, Fig. 7(b));
* the **virtual buffer table** — per virtual buffer, its size and the
  schedule span of its member tensors (Fig. 7(a)).

The latency reduction is computed *exactly* from the latency model rather
than via the paper's next-lower-latency subtraction: for tensor ``t``
affecting nodes ``N(t)``,

    ``L(t) = sum over n in N(t) of  lat(n, nothing on-chip) - lat(n, {t})``

which coincides with Eq. 2 when ``t`` is the unique bottleneck of a node
and extends it cleanly to multi-input nodes whose input streams serialise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.tensor import TensorKind
from repro.lcmm.buffers import VirtualBuffer
from repro.perf.latency import LatencyModel


@dataclass(frozen=True)
class OperationLatencyRow:
    """One row of the operation latency table (Fig. 7(c))."""

    node: str
    lat_compute: float
    lat_ifmap: float
    lat_weight: float
    lat_ofmap: float

    @property
    def bottleneck(self) -> str:
        """Which component dominates the node under UMM."""
        values = {
            "compute": self.lat_compute,
            "if": self.lat_ifmap,
            "wt": self.lat_weight,
            "of": self.lat_ofmap,
        }
        return max(values, key=values.__getitem__)


def operation_latency_table(model: LatencyModel) -> dict[str, OperationLatencyRow]:
    """Build the operation latency table from a latency model."""
    table = {}
    for name in model.nodes():
        ll = model.layer(name)
        table[name] = OperationLatencyRow(
            node=name,
            lat_compute=ll.compute,
            lat_ifmap=ll.slot_latency(TensorKind.IFMAP),
            lat_weight=ll.slot_latency(TensorKind.WEIGHT),
            lat_ofmap=ll.slot_latency(TensorKind.OFMAP),
        )
    return table


def latency_reduction(
    model: LatencyModel, tensor_name: str, affected_nodes: tuple[str, ...]
) -> float:
    """Exact single-tensor latency reduction (see module docs)."""
    onchip = frozenset((tensor_name,))
    total = 0.0
    for node in affected_nodes:
        total += model.node_latency(node) - model.node_latency(node, onchip)
    return total


def eq2_latency_reduction(
    model: LatencyModel, tensor_name: str, affected_nodes: tuple[str, ...]
) -> float:
    """The paper's Eq. 2 tensor metric: the next-lower-latency gap.

    ``L_d(i) = lat_d(i) - max{lat_d'(i) | lat_d'(i) < lat_d(i)}`` — the
    latency a node sheds once tensor ``d`` moves on chip *and every
    slower component has already been dealt with*.  Unlike the exact
    single-tensor reduction, this is non-zero for second-tier tensors
    (a tensor hidden behind a slower one still has value as part of a
    pair), which is exactly why DNNK then needs pivot compensation to
    avoid over-counting when summing these metrics (Eq. 4).

    When several input values share the "if" interface, the if-component
    gap is apportioned between them in proportion to their slot
    latencies.
    """
    total = 0.0
    for node in affected_nodes:
        ll = model.layer(node)
        components = {
            "c": ll.compute,
            TensorKind.IFMAP: ll.slot_latency(TensorKind.IFMAP),
            TensorKind.WEIGHT: ll.slot_latency(TensorKind.WEIGHT),
            TensorKind.OFMAP: ll.slot_latency(TensorKind.OFMAP),
        }
        kind = None
        share = 1.0
        for slot in ll.slots:
            if slot.tensor == tensor_name:
                kind = slot.kind
                kind_total = components[kind]
                share = slot.latency / kind_total if kind_total > 0 else 0.0
                break
        if kind is None or components[kind] <= 0.0:
            continue
        lower = [v for k, v in components.items() if k != kind and v < components[kind]]
        floor = max(lower) if lower else 0.0
        total += (components[kind] - floor) * share
    return total


def tensor_metric_table(
    model: LatencyModel, candidates: list
) -> dict[str, float]:
    """Tensor name -> latency reduction L, for reporting (Fig. 7(b))."""
    return {t.name: t.latency_reduction for t in candidates}


@dataclass(frozen=True)
class VirtualBufferRow:
    """One row of the virtual buffer table (Fig. 7(a))."""

    name: str
    size_bytes: int
    start: int
    end: int
    tensors: tuple[str, ...]


def virtual_buffer_table(buffers: list[VirtualBuffer]) -> list[VirtualBufferRow]:
    """Build the virtual buffer table from a buffer list."""
    rows = []
    for buf in buffers:
        span = buf.span
        rows.append(
            VirtualBufferRow(
                name=buf.name,
                size_bytes=buf.size_bytes,
                start=span.start,
                end=span.end,
                tensors=tuple(buf.tensor_names),
            )
        )
    return rows

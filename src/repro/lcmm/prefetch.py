"""Weight buffer prefetching (Sec. 3.2 of the paper).

For each memory-bound node ``Ck`` that reads weights, compute the time
``T`` to load its full weight tensor from DDR, then back-trace the
schedule to the latest earlier node ``Ck'`` such that the elapsed
execution time between ``Ck'`` and ``Ck`` is at least ``T``.  Starting the
load when ``Ck'`` begins hides it entirely behind the intervening
computation.  The resulting *prefetching dependence graph* (PDG, Fig. 6)
gives every weight tensor a bounded lifespan — the span of its prefetch
edge — so the same liveness/colouring machinery as for features lets
weight buffers be shared between nodes with disjoint spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.tensor import TensorKind, weight_tensor_name
from repro.lcmm.buffers import CandidateTensor, TensorClass, VirtualBuffer
from repro.lcmm.coloring import color_buffers
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.liveness import LiveRange
from repro.lcmm.tables import eq2_latency_reduction
from repro.perf.latency import LatencyModel


@dataclass(frozen=True)
class PrefetchEdge:
    """One edge of the prefetching dependence graph.

    Attributes:
        node: The memory-bound node whose weights are prefetched (``Ck``).
        start: The node at whose start the load begins (``Ck'``).
        load_time: Seconds to load the full weight tensor once.
        hidden_time: Seconds of the load hidden behind intervening
            execution; equals ``load_time`` when fully hidden.
    """

    node: str
    start: str
    load_time: float
    hidden_time: float

    @property
    def fully_hidden(self) -> bool:
        """Whether the intervening execution covers the whole load."""
        return self.hidden_time >= self.load_time

    @property
    def residual(self) -> float:
        """Load time the node still waits for (0 when fully hidden)."""
        return max(0.0, self.load_time - self.hidden_time)


@dataclass(frozen=True)
class PrefetchResult:
    """Output of the weight prefetching pass.

    Frozen: refinements republish a new result object rather than
    mutating one already handed out (see the splitting recolour).

    Attributes:
        edges: Prefetch edges by node name (the PDG).
        candidates: Weight tensors as allocator candidates, live over
            their prefetch spans.
        interference: Weight interference graph (spans that overlap).
        buffers: Virtual weight buffers from colouring.
    """

    edges: dict[str, PrefetchEdge]
    candidates: list[CandidateTensor]
    interference: InterferenceGraph
    buffers: list[VirtualBuffer]

    def edge_for(self, node: str) -> PrefetchEdge | None:
        """The prefetch edge ending at ``node``, if any."""
        return self.edges.get(node)


def _prefetch_edge(
    schedule: list[str],
    index: int,
    hiding_capacities: list[float],
    load_time: float,
) -> tuple[int, float]:
    """Back-trace for the prefetch start of the node at ``index``.

    Returns:
        ``(start_index, hidden_time)`` where hidden_time is the hiding
        capacity between the start of ``start_index`` and the start of
        ``index`` (capped at what the schedule offers).
    """
    elapsed = 0.0
    start = index
    while start > 0 and elapsed < load_time:
        start -= 1
        elapsed += hiding_capacities[start]
    return start, min(elapsed, load_time)


def hiding_capacity(
    model: LatencyModel,
    node_latencies: list[float],
    schedule: list[str],
    onchip: frozenset[str] = frozenset(),
) -> list[float]:
    """Weight-channel idle time per node — the budget a prefetch can use.

    A prefetch shares the weight interface with the demand tile streams
    of the nodes it hides behind, so only the part of each node's latency
    not already consumed by its own weight traffic counts.
    """
    capacities = []
    for name, latency in zip(schedule, node_latencies):
        demand = model.layer(name).slot_latency(TensorKind.WEIGHT, onchip)
        capacities.append(max(0.0, latency - demand))
    return capacities


def weight_prefetch_pass(
    graph: ComputationGraph,
    model: LatencyModel,
    baseline_latencies: dict[str, float] | None = None,
) -> PrefetchResult:
    """Build prefetch edges, weight live ranges and virtual weight buffers.

    Args:
        graph: The DNN computation graph.
        model: Latency model.
        baseline_latencies: Per-node latencies to measure hiding windows
            against.  Defaults to the all-off-chip (UMM) latencies; the
            framework's fixpoint refinement passes post-allocation
            latencies here, because pinning tensors on chip makes earlier
            nodes faster and shrinks the windows a prefetch can hide in.
    """
    schedule = model.nodes()
    index_of = {name: idx for idx, name in enumerate(schedule)}
    if baseline_latencies is None:
        baseline = [model.node_latency(name) for name in schedule]
    else:
        baseline = [baseline_latencies[name] for name in schedule]
    capacities = hiding_capacity(model, baseline, schedule)
    elem = model.accel.precision.bytes
    wt_bandwidth = model.accel.interface_bandwidth(TensorKind.WEIGHT.value)

    edges: dict[str, PrefetchEdge] = {}
    candidates: list[CandidateTensor] = []
    weight_shapes = {t.node: t for t in graph.weight_tensors()}

    for name in schedule:
        tensor = weight_shapes.get(name)
        if tensor is None:
            continue
        ll = model.layer(name)
        if not ll.is_memory_bound:
            # Compute-bound nodes gain nothing from resident weights.
            continue
        wname = weight_tensor_name(name)
        reduction = eq2_latency_reduction(model, wname, (name,))
        if reduction <= 0.0:
            continue
        load_time = tensor.bytes(elem) / wt_bandwidth
        idx = index_of[name]
        start_idx, hidden = _prefetch_edge(schedule, idx, capacities, load_time)
        edge = PrefetchEdge(
            node=name,
            start=schedule[start_idx],
            load_time=load_time,
            hidden_time=hidden,
        )
        edges[name] = edge
        # The buffer is occupied from the moment the load begins until the
        # consumer finishes — that span is the weight tensor's lifespan.
        candidates.append(
            CandidateTensor(
                name=wname,
                tensor_class=TensorClass.WEIGHT,
                size_bytes=tensor.bytes(elem),
                live_range=LiveRange(start_idx, idx),
                affected_nodes=(name,),
                latency_reduction=reduction,
            )
        )

    interference = InterferenceGraph.from_tensors(candidates)
    buffers = color_buffers(interference)
    return PrefetchResult(
        edges=edges,
        candidates=candidates,
        interference=interference,
        buffers=buffers,
    )

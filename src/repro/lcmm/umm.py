"""Uniform memory management — the paper's baseline (Sec. 2.1).

Every layer streams tiles of all three tensors through the double-buffered
tile buffers; no tensor ever stays on chip between layers.  This is the
strategy of the prior accelerators the paper compares against ([10, 12,
18, 22, 23]) and the denominator of every speedup it reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.sram import SRAMBudget, SRAMUsage, blocks_for, BRAM36_BYTES
from repro.ir.graph import ComputationGraph
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


@dataclass
class UMMResult:
    """Performance and resource summary of a UMM design.

    Attributes:
        graph_name: Model evaluated.
        accel: The design point.
        latency: End-to-end inference latency in seconds.
        throughput: Ops/second over the network's nominal operations.
        node_latencies: Per executed node latency, in schedule order.
        sram_used_bytes: On-chip memory consumed (tile buffers only).
        sram_utilization: Fraction of device SRAM consumed.
    """

    graph_name: str
    accel: AcceleratorConfig
    latency: float
    throughput: float
    node_latencies: dict[str, float]
    sram_used_bytes: int
    sram_utilization: float

    @property
    def tops(self) -> float:
        """Throughput in tera-ops/second (the paper's headline unit)."""
        return self.throughput / 1e12


def run_umm(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    model: LatencyModel | None = None,
) -> UMMResult:
    """Evaluate a model under uniform memory management.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point.
        model: Optional pre-built latency model to reuse.
    """
    model = model or LatencyModel(graph, accel)
    latency = model.umm_latency()
    node_latencies = {name: model.node_latency(name) for name in model.nodes()}
    tile_bytes = accel.tile_buffer_bytes()
    # Tile buffers live in BRAM; count whole blocks like the device does.
    used = blocks_for(tile_bytes, BRAM36_BYTES) * BRAM36_BYTES
    return UMMResult(
        graph_name=graph.name,
        accel=accel,
        latency=latency,
        throughput=model.throughput(latency),
        node_latencies=node_latencies,
        sram_used_bytes=used,
        sram_utilization=used / accel.device.sram_bytes,
    )

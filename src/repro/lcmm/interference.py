"""Interference graphs over candidate tensors (Fig. 5(a) of the paper).

Two tensors interfere when their live ranges overlap — they then need
distinct buffers.  The buffer-splitting pass (Sec. 3.4) additionally
inserts *false* interference edges to force apart tensors that liveness
alone would let share, so the graph distinguishes real from false edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.lcmm.buffers import CandidateTensor


@dataclass
class InterferenceGraph:
    """Undirected interference graph over candidate tensors.

    Attributes:
        tensors: Candidate tensors by name (insertion-ordered; the
            colouring pass relies on deterministic iteration).
    """

    tensors: dict[str, CandidateTensor] = field(default_factory=dict)
    _adjacency: dict[str, set[str]] = field(default_factory=dict, repr=False)
    _false_edges: set[frozenset[str]] = field(default_factory=set, repr=False)

    @classmethod
    def from_tensors(cls, tensors: Iterable[CandidateTensor]) -> "InterferenceGraph":
        """Build the graph from live-range overlaps."""
        graph = cls()
        for tensor in tensors:
            graph.add_tensor(tensor)
        return graph

    def add_tensor(self, tensor: CandidateTensor) -> None:
        """Add a tensor, connecting it to every live-range-overlapping peer."""
        if tensor.name in self.tensors:
            raise ValueError(f"duplicate tensor {tensor.name!r}")
        self.tensors[tensor.name] = tensor
        self._adjacency[tensor.name] = set()
        for other_name, other in self.tensors.items():
            if other_name == tensor.name:
                continue
            if tensor.live_range.overlaps(other.live_range):
                self._adjacency[tensor.name].add(other_name)
                self._adjacency[other_name].add(tensor.name)

    def add_false_edge(self, a: str, b: str) -> None:
        """Insert a false lifespan-overlap edge (buffer splitting, Sec. 3.4).

        Idempotent; adding a false edge over an existing real edge keeps
        the real edge and records nothing new.
        """
        if a == b:
            raise ValueError("cannot add a self-interference edge")
        for name in (a, b):
            if name not in self.tensors:
                raise KeyError(f"unknown tensor {name!r}")
        if b not in self._adjacency[a]:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._false_edges.add(frozenset((a, b)))

    def interferes(self, a: str, b: str) -> bool:
        """Whether two tensors may not share a buffer."""
        return b in self._adjacency.get(a, ())

    def neighbors(self, name: str) -> set[str]:
        """Tensors interfering with ``name``."""
        return set(self._adjacency[name])

    def false_edges(self) -> set[frozenset[str]]:
        """The false edges inserted by buffer splitting."""
        return set(self._false_edges)

    def edge_count(self) -> int:
        """Total number of (undirected) interference edges."""
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def __len__(self) -> int:
        return len(self.tensors)

"""Fused-layer tiling: elide DRAM round-trips between adjacent layers.

LCMM's allocation passes decide *where* whole tensors live; this module
adds the orthogonal LoopTree-style lever — merging the tile loops of a
producer/consumer pair so the intermediate feature map streams from the
producer's output tile buffer straight into the consumer's input tile
buffer and never crosses the DDR boundary at all.

A fusion edge is **legal** when

1. the consumer is the very next executed node after the producer (the
   merged loop nest runs both bodies per tile, so the pair must be
   adjacent in the sequential schedule),
2. the consumer streams the producer's tensor exactly once (reload
   factor 1): with an output-channel reload factor above one the
   consumer re-reads tiles the merged nest has already overwritten, and
3. one tile-slice of the intermediate — sized by the *consumer's*
   datapath template — fits the provisioned (double-buffered) input
   tile buffer, so fusion consumes **zero additional SRAM**: it borrows
   the ping-pong input buffer the design already pays for.

**Shortcut handling** (ShortcutFusion-style, reuse-aware): residual /
dense shortcut tensors are read again by a *later* non-adjacent node
(the eltwise add, a dense concat).  Fusing the adjacent edge of such a
tensor elides only the adjacent consumer's *read*; the producer still
writes the tensor out (or the allocator pins it on-chip — the two
compose) so the delayed shortcut reads stay serviceable.  Only a
single-consumer intermediate elides the write as well.

The pass wrapping this module (:class:`~repro.lcmm.passes.standard.
FuseLayersPass`) applies the candidate set speculatively and keeps it
only when the Eq.-1 objective improves, so fusion is monotone by
construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.ir.layer import Attention, ComputeKind, Conv2D, DepthwiseConv2D, Gemm
from repro.ir.tensor import TensorKind, feature_tensor_name
from repro.perf.latency import LatencyModel, LayerLatency, Slot

__all__ = [
    "FusedEdge",
    "apply_fusion",
    "find_fusion_candidates",
    "fusion_slice_bytes",
]


@dataclass(frozen=True)
class FusedEdge:
    """One legal producer/consumer fusion.

    Attributes:
        producer: Node whose output tensor is fused through on-chip.
        consumer: Adjacent node whose read of that tensor is elided.
        tensor: The intermediate feature tensor (``f:<producer>``).
        slice_bytes: On-chip footprint of one fused tile slice.
        bytes_saved: DDR bytes the edge removes from the timeline.
        shortcut: The tensor has later (non-adjacent) readers, so the
            producer's DRAM write is kept for them — only the adjacent
            read is elided.
    """

    producer: str
    consumer: str
    tensor: str
    slice_bytes: int
    bytes_saved: int
    shortcut: bool


def fusion_slice_bytes(model: LatencyModel, consumer: str) -> int:
    """On-chip bytes of one fused intermediate tile slice at a consumer.

    Sized by the consumer's datapath template: a convolution needs its
    full input-channel depth over one spatial tile *with halo*; a
    systolic GEMM needs one token-row tile of the sequence; the
    pointwise templates (pool / eltwise / norm / conv-datapath FC)
    stream one output-shaped tile.
    """
    graph, accel = model.graph, model.accel
    tile, elem = accel.tile, accel.precision.bytes
    layer = graph.layer(consumer)
    kind = layer.compute_kind

    if kind in (ComputeKind.CONV, ComputeKind.DEPTHWISE):
        assert isinstance(layer, (Conv2D, DepthwiseConv2D))
        in_h = tile.th * layer.stride[0] + layer.kernel[0] - layer.stride[0]
        in_w = tile.tw * layer.stride[1] + layer.kernel[1] - layer.stride[1]
        (in_shape, *_rest) = graph.input_shapes(consumer)
        return in_shape.channels * in_h * in_w * elem

    if kind is ComputeKind.ATTENTION or (
        kind is ComputeKind.GEMM and not layer.conv_datapath  # type: ignore[union-attr]
    ):
        assert isinstance(layer, (Gemm, Attention))
        dims = layer.gemm_dims()
        m = (dims[0] if isinstance(dims, (list, tuple)) else dims).m
        (in_shape, *_rest) = graph.input_shapes(consumer)
        total = in_shape.volume * elem
        return math.ceil(total / tile.gemm_row_trips(m))

    # Pointwise streaming templates: pool, eltwise, norm, FC head.
    return tile.ofmap_tile_elems() * elem


def _tile_slice_capacity(model: LatencyModel) -> int:
    """Bytes of the provisioned double-buffered input tile buffer."""
    tile, elem = model.accel.tile, model.accel.precision.bytes
    return 2 * tile.ifmap_tile_elems((3, 3), (1, 1)) * elem


def _if_slot(layer: LayerLatency, tensor: str) -> Slot | None:
    for slot in layer.slots:
        if slot.kind is TensorKind.IFMAP and slot.tensor == tensor:
            return slot
    return None


def find_fusion_candidates(model: LatencyModel) -> list[FusedEdge]:
    """Enumerate every legal fusion edge of a characterised model.

    Walks consecutive pairs of the sequential schedule and applies the
    legality rules in the module docstring.  Chains compose: each edge
    touches only its own (read, write) slots, so ``conv - conv - pool``
    fusing pairwise streams the whole chain through on-chip.
    """
    graph = model.graph
    elem = model.accel.precision.bytes
    capacity = _tile_slice_capacity(model)
    schedule = model.nodes()

    # Reader count per feature tensor across the whole schedule — a
    # tensor with more than one reader is a shortcut (residual add,
    # dense concat fan-out) and keeps its DRAM write.
    readers: dict[str, int] = {}
    for name in schedule:
        for slot in model.layer(name).slots:
            if slot.kind is TensorKind.IFMAP:
                readers[slot.tensor] = readers.get(slot.tensor, 0) + 1

    edges: list[FusedEdge] = []
    for producer, consumer in zip(schedule, schedule[1:]):
        tensor = feature_tensor_name(producer)
        slot = _if_slot(model.layer(consumer), tensor)
        if slot is None or slot.bytes == 0:
            continue  # not a direct edge (or already elided)
        expected = graph.output_shape(producer).volume * elem
        if slot.bytes != expected:
            continue  # consumer re-streams the intermediate (reload > 1)
        slice_bytes = fusion_slice_bytes(model, consumer)
        if slice_bytes > capacity:
            continue  # fused slice overflows the borrowed tile buffer
        shortcut = readers.get(tensor, 0) > 1
        saved = slot.bytes
        if not shortcut:
            producer_layer = model.layer(producer)
            saved += sum(
                s.bytes
                for s in producer_layer.slots
                if s.kind is TensorKind.OFMAP and s.tensor == tensor
            )
        edges.append(
            FusedEdge(
                producer=producer,
                consumer=consumer,
                tensor=tensor,
                slice_bytes=slice_bytes,
                bytes_saved=saved,
                shortcut=shortcut,
            )
        )
    return edges


def _zero(slot: Slot) -> Slot:
    return replace(slot, bytes=0, latency=0.0)


def apply_fusion(
    model: LatencyModel, edges: list[FusedEdge] | tuple[FusedEdge, ...]
) -> LatencyModel:
    """Derive the fused latency model: fused slots stop paying DDR.

    Each edge zeroes the consumer's read slot of the fused tensor and,
    for non-shortcut edges, the producer's write slot.  Slots are kept
    in place (zero bytes, zero latency) so downstream consumers — the
    allocation engine, the tile simulator, the transfer scheduler — see
    the same slot structure with the fused streams removed.
    """
    zero_reads = {(e.consumer, e.tensor) for e in edges}
    zero_writes = {(e.producer, e.tensor) for e in edges if not e.shortcut}
    layers: dict[str, LayerLatency] = {}
    for name in model.nodes():
        ll = model.layer(name)
        slots = []
        for slot in ll.slots:
            key = (name, slot.tensor)
            if slot.kind is TensorKind.IFMAP and key in zero_reads:
                slots.append(_zero(slot))
            elif slot.kind is TensorKind.OFMAP and key in zero_writes:
                slots.append(_zero(slot))
            else:
                slots.append(slot)
        layers[name] = LayerLatency(
            node=name, compute=ll.compute, slots=slots, macs=ll.macs
        )
    return LatencyModel.from_layers(model.graph, model.accel, layers)

"""Liveness analysis over the computation graph (Sec. 3.1).

A feature tensor is *live* from the schedule step of its producer until the
schedule step of its last consumer; two tensors may share a buffer exactly
when their live ranges do not overlap ("the lifespans of f2 and f6 do not
overlap... thus they could share the same buffer").  Ranges are closed
intervals over schedule positions: a tensor consumed at step ``k`` and one
produced at step ``k`` *do* interfere, because during step ``k`` the
consumer reads the former while the producer writes the latter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.tensor import FeatureTensor


@dataclass(frozen=True)
class LiveRange:
    """A closed interval of schedule positions during which data is live."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"live range start must be non-negative, got {self.start}")
        if self.end < self.start:
            raise ValueError(f"live range end {self.end} precedes start {self.start}")

    def overlaps(self, other: "LiveRange") -> bool:
        """Whether two closed intervals intersect."""
        return self.start <= other.end and other.start <= self.end

    @property
    def length(self) -> int:
        """Number of schedule steps covered."""
        return self.end - self.start + 1

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"


def schedule_positions(graph: ComputationGraph) -> dict[str, int]:
    """Map each executed node to its position in the compute schedule.

    Non-executed nodes (input, concat) are assigned the position of the
    step at which their value becomes available: the input image is
    available before step 0, a concat value when its last branch finishes.
    """
    positions = {name: idx for idx, name in enumerate(graph.compute_schedule())}
    for name in graph.schedule():
        if name in positions:
            continue
        preds = graph.predecessors(name)
        if not preds:
            positions[name] = 0
        else:
            positions[name] = max(positions[p] for p in preds)
    return positions


def feature_live_range(
    tensor: FeatureTensor, positions: dict[str, int]
) -> LiveRange:
    """Live range of a feature tensor: producer step to last-consumer step."""
    start = positions[tensor.producer]
    end = max(positions[c] for c in tensor.consumers)
    return LiveRange(start, end)


def feature_live_ranges(graph: ComputationGraph) -> dict[str, LiveRange]:
    """Live ranges of every feature tensor in the graph, by tensor name."""
    positions = schedule_positions(graph)
    return {
        t.name: feature_live_range(t, positions) for t in graph.feature_tensors()
    }

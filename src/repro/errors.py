"""Unified exception taxonomy for the whole compiler stack.

Every failure the reproduction can raise on purpose derives from
:class:`ReproError`, so callers — the CLI, the fallback chain in
:func:`repro.lcmm.framework.run_lcmm`, services embedding the compiler —
can catch one root type and still see *structured* context: which pass
failed, which node or artifact was involved, and any supporting values.

Design rules:

* Subclasses keep a legacy built-in base (``ValueError``, ``KeyError``,
  ``RuntimeError``) where pre-taxonomy code raised one, so existing
  ``except ValueError`` handlers keep working during the migration.
* Nothing here subclasses ``AssertionError``: invariant violations
  (:class:`AllocationError`) must survive ``python -O``-style reasoning
  and must not be swallowed by broad ``except AssertionError`` handlers.
* All classes pickle cleanly (context travels via keyword defaults), so
  they can cross process-pool boundaries intact — the DSE workers rely
  on this.
"""

from __future__ import annotations

from typing import Any, Mapping


class ReproError(Exception):
    """Root of the taxonomy: a message plus optional structured context.

    Attributes:
        message: The human-readable description.
        pass_name: Compilation pass involved, when known.
        node: Graph node involved, when known.
        artifact: Context artifact involved, when known.
        details: Free-form supporting values (byte counts, chunk
            indices, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: str | None = None,
        node: str | None = None,
        artifact: str | None = None,
        details: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.pass_name = pass_name
        self.node = node
        self.artifact = artifact
        self.details: dict[str, Any] = dict(details or {})

    def context(self) -> dict[str, Any]:
        """The non-empty structured context, one flat dict."""
        ctx: dict[str, Any] = {}
        if self.pass_name is not None:
            ctx["pass"] = self.pass_name
        if self.node is not None:
            ctx["node"] = self.node
        if self.artifact is not None:
            ctx["artifact"] = self.artifact
        ctx.update(self.details)
        return ctx

    def __str__(self) -> str:
        ctx = self.context()
        if not ctx:
            return self.message
        rendered = ", ".join(f"{key}={value!r}" for key, value in ctx.items())
        return f"{self.message} [{rendered}]"

    def __reduce__(self):
        # Keyword-only context does not round-trip through the default
        # Exception pickling (which replays positional args); rebuild
        # explicitly so errors cross process-pool boundaries intact.
        return (
            _rebuild_error,
            (
                type(self),
                self.message,
                self.pass_name,
                self.node,
                self.artifact,
                self.details,
            ),
        )


def _rebuild_error(cls, message, pass_name, node, artifact, details):
    return cls(
        message, pass_name=pass_name, node=node, artifact=artifact, details=details
    )


class GraphValidationError(ReproError, ValueError):
    """A computation graph is malformed: cycles, dangling tensor refs,
    duplicate or unreachable layers, missing inputs."""


class ConfigError(ReproError, ValueError):
    """An accelerator/run configuration is invalid (bad worker count,
    unknown style, non-positive parameter...)."""


class ModelNotFoundError(ConfigError, KeyError):
    """A model name matches nothing in the zoo."""


class CapacityError(ReproError, ValueError):
    """A memory budget cannot be satisfied: tile buffers exceed the SRAM
    budget, no tile configuration fits, non-positive budget."""


class PassError(ReproError, RuntimeError):
    """A compilation pass failed; carries the pass name and, via
    ``__cause__``, the original exception."""


class PipelineError(PassError):
    """A pipeline is malformed: unknown pass, or artifact contract broken."""


class AllocationError(ReproError):
    """An LCMM result violates a structural invariant.

    Historically subclassed ``AssertionError``; rebased onto the taxonomy
    so optimized runs and broad ``except AssertionError`` handlers can
    never swallow a real invariant violation.
    """


class WorkerError(ReproError, RuntimeError):
    """A parallel worker (DSE process pool) failed beyond recovery."""


class DeadlineExceeded(ReproError, TimeoutError):
    """A compilation ran past its caller-supplied deadline.

    Raised by :func:`repro.robustness.deadline.check_deadline` at pass
    boundaries (and by the serving front door when a request times out
    end to end).  Deliberately *not* absorbed by the degradation chain:
    once the budget is spent, falling back would only burn more of it,
    so :func:`repro.lcmm.framework.run_lcmm` re-raises instead of
    degrading.
    """


class InjectedFault(ReproError, RuntimeError):
    """Raised by the fault-injection harness at an armed fault point."""


class OverloadedError(ReproError, RuntimeError):
    """The serving front door shed this request (queue full, quota
    exhausted, circuit open, or draining).  Carries ``retry_after``
    seconds in ``details`` when a retry hint is known."""


# ----------------------------------------------------------------------
# Outcome mapping: exceptions -> CLI exit codes and HTTP statuses
# ----------------------------------------------------------------------

#: Exit status for internal failures (worker crashes, pass bugs,
#: injected faults with fallback disabled...).
EXIT_INTERNAL = 1

#: Exit status for user/configuration errors (unknown model, malformed
#: graph, infeasible budget, bad flag values).
EXIT_USER = 2


def _is_user_error(exc: BaseException) -> bool:
    """Whether the failure is the caller's input, not the compiler."""
    return isinstance(exc, (ConfigError, GraphValidationError, CapacityError))


def exit_code(exc: BaseException) -> int:
    """The CLI exit status for an exception (see README error table).

    User and configuration errors — the caller can fix the invocation —
    exit :data:`EXIT_USER` (2); internal and worker failures exit
    :data:`EXIT_INTERNAL` (1).
    """
    return EXIT_USER if _is_user_error(exc) else EXIT_INTERNAL


def http_status(exc: BaseException) -> int:
    """The HTTP status the compilation service maps an exception to.

    * 400 — malformed request: unknown model, bad options, invalid graph.
    * 422 — well-formed but unsatisfiable: a memory budget that cannot fit.
    * 429 — shed by admission control or a tenant quota.
    * 503 — transient internal trouble (worker pool down, circuit open).
    * 504 — the request's deadline expired before a result landed.
    * 500 — any other internal failure.
    """
    if isinstance(exc, CapacityError):
        return 422
    if isinstance(exc, (ConfigError, GraphValidationError)):
        return 400
    if isinstance(exc, OverloadedError):
        return 429
    if isinstance(exc, DeadlineExceeded):
        return 504
    if isinstance(exc, WorkerError):
        return 503
    return 500

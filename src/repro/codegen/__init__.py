"""HLS code generation from LCMM allocations.

The paper's designs are Vivado HLS kernels; the natural downstream
artifact of an allocation is therefore the HLS source that instantiates
it.  This subpackage emits the memory subsystem of an LCMM design as
synthesisable-style C++:

* ``buffers.h`` — one on-chip array per physical buffer with the
  ``bind_storage`` pragma matching its URAM/BRAM placement, plus the
  double-buffered tile buffers;
* ``schedule.cpp`` — the layer execution sequence with per-layer
  tensor-source annotations (on-chip buffer vs DDR stream) and the
  weight prefetch issue points;
* ``lcmm_design.h`` — design constants (array shape, tile shape, clock).

The generator is deterministic and purely textual — it needs no Xilinx
tooling to run or test — but the emitted structure mirrors what the
paper's flow would hand to Vivado HLS.
"""

from repro.codegen.hls import (
    HLSDesign,
    generate_buffers_header,
    generate_design,
    generate_design_header,
    generate_schedule_source,
    write_design,
)

__all__ = [
    "HLSDesign",
    "generate_design",
    "generate_buffers_header",
    "generate_schedule_source",
    "generate_design_header",
    "write_design",
]

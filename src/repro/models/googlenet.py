"""GoogLeNet (Inception-v1) — benchmark "GN" in the paper.

Nine inception blocks (3a, 3b, 4a-4e, 5a, 5b); Fig. 8 of the paper plots
per-block performance for the 16-bit design, so each inception block is
tagged via :meth:`ComputationGraph.begin_block`.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import avg_pool, conv, global_avg_pool, max_pool

#: Inception module configurations from the GoogLeNet paper (Table 1 of
#: Szegedy et al. 2014): (name, #1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5,
#: pool proj).
_INCEPTION_CONFIGS = (
    ("inception_3a", 64, 96, 128, 16, 32, 32),
    ("inception_3b", 128, 128, 192, 32, 96, 64),
    ("inception_4a", 192, 96, 208, 16, 48, 64),
    ("inception_4b", 160, 112, 224, 24, 64, 64),
    ("inception_4c", 128, 128, 256, 24, 64, 64),
    ("inception_4d", 112, 144, 288, 32, 64, 64),
    ("inception_4e", 256, 160, 320, 32, 128, 128),
    ("inception_5a", 256, 160, 320, 32, 128, 128),
    ("inception_5b", 384, 192, 384, 48, 128, 128),
)

#: Names of the nine inception blocks, in execution order.
GOOGLENET_BLOCKS = tuple(cfg[0] for cfg in _INCEPTION_CONFIGS)


def _inception_module(
    g: ComputationGraph,
    name: str,
    src: str,
    n1: int,
    n3r: int,
    n3: int,
    n5r: int,
    n5: int,
    pool_proj: int,
) -> str:
    """Add one inception module and return the concat node name."""
    g.begin_block(name)
    b1 = conv(g, f"{name}/1x1", src, n1, 1)
    b2 = conv(g, f"{name}/3x3_reduce", src, n3r, 1)
    b2 = conv(g, f"{name}/3x3", b2, n3, 3)
    b3 = conv(g, f"{name}/5x5_reduce", src, n5r, 1)
    b3 = conv(g, f"{name}/5x5", b3, n5, 5)
    b4 = max_pool(g, f"{name}/pool", src, kernel=3, stride=1, padding=1)
    b4 = conv(g, f"{name}/pool_proj", b4, pool_proj, 1)
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2, b3, b4)))
    g.end_block()
    return out


def build_googlenet() -> ComputationGraph:
    """Build the GoogLeNet inference graph (224x224x3 input, 1000 classes)."""
    g = ComputationGraph(name="googlenet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    g.begin_block("stem")
    x = conv(g, "conv1/7x7_s2", "data", 64, 7, stride=2, padding=3)
    x = max_pool(g, "pool1/3x3_s2", x, kernel=3, stride=2, padding=1)
    x = conv(g, "conv2/3x3_reduce", x, 64, 1)
    x = conv(g, "conv2/3x3", x, 192, 3)
    x = max_pool(g, "pool2/3x3_s2", x, kernel=3, stride=2, padding=1)
    g.end_block()

    for cfg in _INCEPTION_CONFIGS[:2]:
        x = _inception_module(g, cfg[0], x, *cfg[1:])
    x = max_pool(g, "pool3/3x3_s2", x, kernel=3, stride=2, padding=1)
    for cfg in _INCEPTION_CONFIGS[2:7]:
        x = _inception_module(g, cfg[0], x, *cfg[1:])
    x = max_pool(g, "pool4/3x3_s2", x, kernel=3, stride=2, padding=1)
    for cfg in _INCEPTION_CONFIGS[7:]:
        x = _inception_module(g, cfg[0], x, *cfg[1:])

    g.begin_block("classifier")
    x = global_avg_pool(g, "pool5/global", x)
    g.add(FullyConnected(name="loss3/classifier", inputs=(x,), out_features=1000))
    g.end_block()

    g.validate()
    return g

"""DenseNet-121 — the liveness stress test from the paper's introduction.

The introduction singles out the dense block of DenseNet [5] as a
topology whose "complex data dependency between layers" breaks the
traditional double-buffer allocation: every layer's output is consumed by
*all* subsequent layers of its block (via channel concatenation), so
feature lifetimes overlap heavily and the interference graph approaches a
clique within each block.  That makes DenseNet the worst case for feature
buffer sharing and a good robustness test for the allocator.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import avg_pool, conv, global_avg_pool, max_pool

#: Dense layers per block for DenseNet-121.
_BLOCK_CONFIG = (6, 12, 24, 16)

#: Channels added by each dense layer.
GROWTH_RATE = 32

#: Bottleneck width multiplier (the 1x1 produces 4k channels).
_BOTTLENECK = 4


def _dense_layer(g: ComputationGraph, name: str, src: str) -> str:
    """One BN-ReLU-1x1 / BN-ReLU-3x3 dense layer; returns the 3x3 output."""
    x = conv(g, f"{name}/1x1", src, _BOTTLENECK * GROWTH_RATE, 1)
    return conv(g, f"{name}/3x3", x, GROWTH_RATE, 3)


def _dense_block(g: ComputationGraph, name: str, src: str, layers: int) -> str:
    """A dense block: each layer reads the concat of all previous outputs."""
    g.begin_block(name)
    features = [src]
    for i in range(1, layers + 1):
        if len(features) == 1:
            inp = features[0]
        else:
            inp = f"{name}/concat{i - 1}"
            g.add(Concat(name=inp, inputs=tuple(features)))
        out = _dense_layer(g, f"{name}/layer{i}", inp)
        features.append(out)
    final = f"{name}/concat{layers}"
    g.add(Concat(name=final, inputs=tuple(features)))
    g.end_block()
    return final


def _transition(g: ComputationGraph, name: str, src: str, out_channels: int) -> str:
    """Transition layer: 1x1 halving channels + 2x2 average pooling."""
    g.begin_block(name)
    x = conv(g, f"{name}/1x1", src, out_channels, 1)
    x = avg_pool(g, f"{name}/pool", x, kernel=2, stride=2, padding=0)
    g.end_block()
    return x


def build_densenet121() -> ComputationGraph:
    """Build the DenseNet-121 inference graph (224x224x3, 1000 classes)."""
    g = ComputationGraph(name="densenet121")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    g.begin_block("stem")
    x = conv(g, "conv1", "data", 2 * GROWTH_RATE, 7, stride=2, padding=3)
    x = max_pool(g, "pool1", x, kernel=3, stride=2, padding=1)
    g.end_block()

    channels = 2 * GROWTH_RATE
    for idx, layers in enumerate(_BLOCK_CONFIG, start=1):
        x = _dense_block(g, f"denseblock{idx}", x, layers)
        channels += layers * GROWTH_RATE
        if idx < len(_BLOCK_CONFIG):
            channels //= 2
            x = _transition(g, f"transition{idx}", x, channels)

    g.begin_block("classifier")
    x = global_avg_pool(g, "pool_final", x)
    g.add(FullyConnected(name="fc1000", inputs=(x,), out_features=1000))
    g.end_block()

    g.validate()
    return g

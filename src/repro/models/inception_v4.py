"""Inception-v4 — benchmark "IN" and the motivating example of the paper.

Faithful to Szegedy et al. 2016: the stem, four Inception-A blocks,
Reduction-A, seven Inception-B blocks, Reduction-B and three Inception-C
blocks — the "14 inception blocks" whose on/off-chip choices span the
2^14-point design space of Fig. 2(b).  Every block is tagged.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import avg_pool, conv, global_avg_pool, max_pool

#: The 14 choice blocks of Fig. 2(b), in execution order.
INCEPTION_V4_BLOCKS = (
    tuple(f"inception_a{i}" for i in range(1, 5))
    + tuple(f"inception_b{i}" for i in range(1, 8))
    + tuple(f"inception_c{i}" for i in range(1, 4))
)


def _stem(g: ComputationGraph) -> str:
    """Add the Inception-v4 stem (299x299x3 -> 384x35x35)."""
    g.begin_block("stem")
    x = conv(g, "stem/conv1", "data", 32, 3, stride=2, padding="valid")
    x = conv(g, "stem/conv2", x, 32, 3, padding="valid")
    x = conv(g, "stem/conv3", x, 64, 3)

    pool_a = max_pool(g, "stem/pool1", x, kernel=3, stride=2)
    conv_a = conv(g, "stem/conv4", x, 96, 3, stride=2, padding="valid")
    x = "stem/concat1"
    g.add(Concat(name=x, inputs=(pool_a, conv_a)))

    left = conv(g, "stem/b1_conv1", x, 64, 1)
    left = conv(g, "stem/b1_conv2", left, 96, 3, padding="valid")
    right = conv(g, "stem/b2_conv1", x, 64, 1)
    right = conv(g, "stem/b2_conv2", right, 64, (7, 1), padding=(3, 0))
    right = conv(g, "stem/b2_conv3", right, 64, (1, 7), padding=(0, 3))
    right = conv(g, "stem/b2_conv4", right, 96, 3, padding="valid")
    x = "stem/concat2"
    g.add(Concat(name=x, inputs=(left, right)))

    conv_b = conv(g, "stem/conv5", x, 192, 3, stride=2, padding="valid")
    pool_b = max_pool(g, "stem/pool2", x, kernel=3, stride=2)
    x = "stem/concat3"
    g.add(Concat(name=x, inputs=(conv_b, pool_b)))
    g.end_block()
    return x


def _inception_a(g: ComputationGraph, name: str, src: str) -> str:
    """Add an Inception-A block (384ch, 35x35 -> 384ch)."""
    g.begin_block(name)
    b1 = conv(g, f"{name}/b1_1x1", src, 96, 1)
    b2 = conv(g, f"{name}/b2_1x1", src, 64, 1)
    b2 = conv(g, f"{name}/b2_3x3", b2, 96, 3)
    b3 = conv(g, f"{name}/b3_1x1", src, 64, 1)
    b3 = conv(g, f"{name}/b3_3x3a", b3, 96, 3)
    b3 = conv(g, f"{name}/b3_3x3b", b3, 96, 3)
    b4 = avg_pool(g, f"{name}/pool", src)
    b4 = conv(g, f"{name}/b4_1x1", b4, 96, 1)
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2, b3, b4)))
    g.end_block()
    return out


def _reduction_a(g: ComputationGraph, src: str) -> str:
    """Add Reduction-A (384ch 35x35 -> 1024ch 17x17)."""
    name = "reduction_a"
    g.begin_block(name)
    b1 = max_pool(g, f"{name}/pool", src, kernel=3, stride=2)
    b2 = conv(g, f"{name}/b2_3x3", src, 384, 3, stride=2, padding="valid")
    b3 = conv(g, f"{name}/b3_1x1", src, 192, 1)
    b3 = conv(g, f"{name}/b3_3x3a", b3, 224, 3)
    b3 = conv(g, f"{name}/b3_3x3b", b3, 256, 3, stride=2, padding="valid")
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2, b3)))
    g.end_block()
    return out


def _inception_b(g: ComputationGraph, name: str, src: str) -> str:
    """Add an Inception-B block (1024ch, 17x17 -> 1024ch)."""
    g.begin_block(name)
    b1 = conv(g, f"{name}/b1_1x1", src, 384, 1)
    b2 = conv(g, f"{name}/b2_1x1", src, 192, 1)
    b2 = conv(g, f"{name}/b2_1x7", b2, 224, (1, 7), padding=(0, 3))
    b2 = conv(g, f"{name}/b2_7x1", b2, 256, (7, 1), padding=(3, 0))
    b3 = conv(g, f"{name}/b3_1x1", src, 192, 1)
    b3 = conv(g, f"{name}/b3_7x1a", b3, 192, (7, 1), padding=(3, 0))
    b3 = conv(g, f"{name}/b3_1x7a", b3, 224, (1, 7), padding=(0, 3))
    b3 = conv(g, f"{name}/b3_7x1b", b3, 224, (7, 1), padding=(3, 0))
    b3 = conv(g, f"{name}/b3_1x7b", b3, 256, (1, 7), padding=(0, 3))
    b4 = avg_pool(g, f"{name}/pool", src)
    b4 = conv(g, f"{name}/b4_1x1", b4, 128, 1)
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2, b3, b4)))
    g.end_block()
    return out


def _reduction_b(g: ComputationGraph, src: str) -> str:
    """Add Reduction-B (1024ch 17x17 -> 1536ch 8x8)."""
    name = "reduction_b"
    g.begin_block(name)
    b1 = max_pool(g, f"{name}/pool", src, kernel=3, stride=2)
    b2 = conv(g, f"{name}/b2_1x1", src, 192, 1)
    b2 = conv(g, f"{name}/b2_3x3", b2, 192, 3, stride=2, padding="valid")
    b3 = conv(g, f"{name}/b3_1x1", src, 256, 1)
    b3 = conv(g, f"{name}/b3_1x7", b3, 256, (1, 7), padding=(0, 3))
    b3 = conv(g, f"{name}/b3_7x1", b3, 320, (7, 1), padding=(3, 0))
    b3 = conv(g, f"{name}/b3_3x3", b3, 320, 3, stride=2, padding="valid")
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2, b3)))
    g.end_block()
    return out


def _inception_c(g: ComputationGraph, name: str, src: str) -> str:
    """Add an Inception-C block (1536ch, 8x8 -> 1536ch)."""
    g.begin_block(name)
    b1 = conv(g, f"{name}/b1_1x1", src, 256, 1)
    b2 = conv(g, f"{name}/b2_1x1", src, 384, 1)
    b2a = conv(g, f"{name}/b2_1x3", b2, 256, (1, 3), padding=(0, 1))
    b2b = conv(g, f"{name}/b2_3x1", b2, 256, (3, 1), padding=(1, 0))
    b3 = conv(g, f"{name}/b3_1x1", src, 384, 1)
    b3 = conv(g, f"{name}/b3_3x1", b3, 448, (3, 1), padding=(1, 0))
    b3 = conv(g, f"{name}/b3_1x3", b3, 512, (1, 3), padding=(0, 1))
    b3a = conv(g, f"{name}/b3_1x3b", b3, 256, (1, 3), padding=(0, 1))
    b3b = conv(g, f"{name}/b3_3x1b", b3, 256, (3, 1), padding=(1, 0))
    b4 = avg_pool(g, f"{name}/pool", src)
    b4 = conv(g, f"{name}/b4_1x1", b4, 256, 1)
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(b1, b2a, b2b, b3a, b3b, b4)))
    g.end_block()
    return out


def build_inception_v4() -> ComputationGraph:
    """Build the Inception-v4 inference graph (299x299x3, 1000 classes)."""
    g = ComputationGraph(name="inception_v4")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 299, 299)))

    x = _stem(g)
    for i in range(1, 5):
        x = _inception_a(g, f"inception_a{i}", x)
    x = _reduction_a(g, x)
    for i in range(1, 8):
        x = _inception_b(g, f"inception_b{i}", x)
    x = _reduction_b(g, x)
    for i in range(1, 4):
        x = _inception_c(g, f"inception_c{i}", x)

    g.begin_block("classifier")
    x = global_avg_pool(g, "pool_final", x)
    g.add(FullyConnected(name="fc1000", inputs=(x,), out_features=1000))
    g.end_block()

    g.validate()
    return g

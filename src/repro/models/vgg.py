"""VGG-16 — the second linear-topology baseline from the introduction."""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv, max_pool

#: VGG-16 configuration: (block name, conv count, channels).
_VGG16_STAGES = (
    ("stage1", 2, 64),
    ("stage2", 2, 128),
    ("stage3", 3, 256),
    ("stage4", 3, 512),
    ("stage5", 3, 512),
)


def build_vgg16() -> ComputationGraph:
    """Build the VGG-16 inference graph (224x224x3 input, 1000 classes)."""
    g = ComputationGraph(name="vgg16")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    x = "data"
    for block_name, conv_count, channels in _VGG16_STAGES:
        g.begin_block(block_name)
        for idx in range(1, conv_count + 1):
            x = conv(g, f"{block_name}_conv{idx}", x, channels, 3)
        x = max_pool(g, f"{block_name}_pool", x, kernel=2, stride=2)
        g.end_block()

    g.begin_block("classifier")
    g.add(FullyConnected(name="fc6", inputs=(x,), out_features=4096))
    g.add(FullyConnected(name="fc7", inputs=("fc6",), out_features=4096))
    g.add(FullyConnected(name="fc8", inputs=("fc7",), out_features=1000))
    g.end_block()

    g.validate()
    return g

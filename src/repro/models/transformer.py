"""Transformer zoo models: BERT-base and ViT-B/16.

The second workload family of the reproduction.  Token sequences are laid
out spatially in the feature-map IR — ``channels`` is the model dimension
and ``height x width`` the sequence — so the whole LCMM machinery
(feature interference, weight prefetch, DNNK, splitting) operates on
transformer graphs exactly as on CNNs.

Where CNN activations dwarf their conv kernels, transformer weight
matrices dwarf their activations (each BERT encoder layer carries ~7M
parameters against ~0.3MB of hidden state at int8), so on these graphs
the allocator's decisions shift from feature pinning toward the
weight-streaming regime: which matrices stay resident, which prefetch,
and which stream every time.

Modelling choices, mirroring the accelerator conventions of the CNN zoo:

* Embedding lookup/positional encoding are host-side table reads, not
  accelerator work, so BERT's entry point is the post-embedding hidden
  state (as the CNN builders start at the input image).
* GELU folds into the preceding GEMM; LayerNorm scale/shift folds into
  the normalise pass (see :class:`repro.ir.layer.LayerNorm`).
* ViT uses global-average-pool feature aggregation before the classifier
  instead of a class token — the GAP-ViT variant — because a 197th token
  would break the spatial sequence layout for a <0.5% cost difference.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import add, attention, conv, gemm, global_avg_pool, layer_norm


def _encoder_block(
    graph: ComputationGraph,
    prefix: str,
    src: str,
    num_heads: int,
    mlp_dim: int,
    d_model: int,
    pre_norm: bool,
) -> str:
    """One transformer encoder block; returns the output node name.

    ``pre_norm=False`` is the original BERT ordering (sublayer -> add ->
    norm), ``pre_norm=True`` the ViT ordering (norm -> sublayer -> add).
    """
    graph.begin_block(prefix)
    if pre_norm:
        ln1 = layer_norm(graph, f"{prefix}_ln1", src)
        attn = attention(graph, f"{prefix}_attn", ln1, num_heads)
        res1 = add(graph, f"{prefix}_attn_add", src, attn)
        ln2 = layer_norm(graph, f"{prefix}_ln2", res1)
        fc1 = gemm(graph, f"{prefix}_mlp_fc1", ln2, mlp_dim)
        fc2 = gemm(graph, f"{prefix}_mlp_fc2", fc1, d_model)
        out = add(graph, f"{prefix}_mlp_add", res1, fc2)
    else:
        attn = attention(graph, f"{prefix}_attn", src, num_heads)
        res1 = add(graph, f"{prefix}_attn_add", src, attn)
        ln1 = layer_norm(graph, f"{prefix}_ln1", res1)
        fc1 = gemm(graph, f"{prefix}_mlp_fc1", ln1, mlp_dim)
        fc2 = gemm(graph, f"{prefix}_mlp_fc2", fc1, d_model)
        res2 = add(graph, f"{prefix}_mlp_add", ln1, fc2)
        out = layer_norm(graph, f"{prefix}_ln2", res2)
    graph.end_block()
    return out


def build_bert_base(seq_len: int = 384) -> ComputationGraph:
    """BERT-base encoder: 12 post-norm blocks, d=768, h=12, MLP 3072.

    The default sequence length (384) is the SQuAD fine-tuning setting.
    ~86M encoder parameters; no task head (those are per-task and tiny).
    """
    g = ComputationGraph("bert_base")
    g.add(
        InputLayer(
            name="embeddings", shape=FeatureMapShape(channels=768, height=seq_len, width=1)
        )
    )
    node = "embeddings"
    for i in range(12):
        node = _encoder_block(
            g, f"enc{i}", node, num_heads=12, mlp_dim=3072, d_model=768, pre_norm=False
        )
    g.validate()
    return g


def build_vit_b16(image: int = 224) -> ComputationGraph:
    """ViT-B/16: conv patch embedding, 12 pre-norm blocks, GAP classifier.

    A 16x16/stride-16 convolution embeds the image into a 14x14 grid of
    768-dim patch tokens (196 tokens at 224x224); the classifier head is
    global average pooling over tokens followed by a 1000-way FC.
    """
    g = ComputationGraph("vit_b16")
    g.add(InputLayer(name="image", shape=FeatureMapShape(3, image, image)))
    node = conv(g, "patch_embed", "image", out_channels=768, kernel=16, stride=16, padding="valid")
    for i in range(12):
        node = _encoder_block(
            g, f"enc{i}", node, num_heads=12, mlp_dim=3072, d_model=768, pre_norm=True
        )
    node = layer_norm(g, "final_ln", node)
    node = global_avg_pool(g, "gap", node)
    g.add(FullyConnected(name="head", inputs=(node,), out_features=1000))
    g.validate()
    return g

"""Model zoo: the DNNs used by the paper's evaluation.

The benchmark suite of the paper (Sec. 4) is ResNet-152 (RN), GoogLeNet
(GN) and Inception-v4 (IN); Table 3 additionally uses ResNet-50.  AlexNet
and VGG-16 are included as the linear-topology baselines the introduction
contrasts against.  All builders produce plain
:class:`~repro.ir.graph.ComputationGraph` objects with block tags for the
per-block experiments.
"""

from repro.models.zoo import MODEL_BUILDERS, get_model, list_models
from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg16
from repro.models.googlenet import build_googlenet
from repro.models.resnet import build_resnet, build_resnet50, build_resnet152
from repro.models.inception_v4 import build_inception_v4

__all__ = [
    "MODEL_BUILDERS",
    "get_model",
    "list_models",
    "build_alexnet",
    "build_vgg16",
    "build_googlenet",
    "build_resnet",
    "build_resnet50",
    "build_resnet152",
    "build_inception_v4",
]

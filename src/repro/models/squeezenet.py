"""SqueezeNet 1.0 — small-model branching variety (extension).

Fire modules (a 1x1 squeeze feeding parallel 1x1 and 3x3 expands joined
by concat) give yet another interference pattern: a two-way fan-out whose
branches are single layers, so the squeeze output is live across exactly
two steps.  With only ~1.2 M parameters the whole network's weights fit
on chip at any precision — the opposite capacity regime from VGG.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv, global_avg_pool, max_pool

#: (squeeze, expand1x1, expand3x3) per fire module, SqueezeNet 1.0.
_FIRE_CONFIGS = (
    ("fire2", 16, 64, 64),
    ("fire3", 16, 64, 64),
    ("fire4", 32, 128, 128),
    ("fire5", 32, 128, 128),
    ("fire6", 48, 192, 192),
    ("fire7", 48, 192, 192),
    ("fire8", 64, 256, 256),
    ("fire9", 64, 256, 256),
)


def _fire(g: ComputationGraph, name: str, src: str, s1: int, e1: int, e3: int) -> str:
    """Add one fire module and return the concat node name."""
    g.begin_block(name)
    squeeze = conv(g, f"{name}/squeeze1x1", src, s1, 1)
    left = conv(g, f"{name}/expand1x1", squeeze, e1, 1)
    right = conv(g, f"{name}/expand3x3", squeeze, e3, 3)
    out = f"{name}/concat"
    g.add(Concat(name=out, inputs=(left, right)))
    g.end_block()
    return out


def build_squeezenet() -> ComputationGraph:
    """Build the SqueezeNet 1.0 inference graph (224x224x3, 1000 classes)."""
    g = ComputationGraph(name="squeezenet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    g.begin_block("stem")
    x = conv(g, "conv1", "data", 96, 7, stride=2, padding="valid")
    x = max_pool(g, "pool1", x, kernel=3, stride=2)
    g.end_block()

    for idx, (name, s1, e1, e3) in enumerate(_FIRE_CONFIGS):
        x = _fire(g, name, x, s1, e1, e3)
        if name in ("fire4", "fire8"):
            x = max_pool(g, f"pool_{name}", x, kernel=3, stride=2)

    g.begin_block("classifier")
    # SqueezeNet classifies with a conv, not an FC.
    x = conv(g, "conv10", x, 1000, 1)
    x = global_avg_pool(g, "pool10", x)
    g.end_block()

    g.validate()
    return g

"""MobileNetV1 — the low-operation-intensity stress case (extension).

Depthwise-separable convolutions have almost no data reuse: a depthwise
3x3 performs nine MACs per input element.  On a channel-parallel FPGA
accelerator nearly every depthwise layer is memory bound, which makes
MobileNet the opposite extreme from VGG on the roofline and a good probe
of how much LCMM can recover when *most* of a network starves on DDR.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import DepthwiseConv2D, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv, global_avg_pool

#: (pointwise output channels, depthwise stride) per separable block.
_MOBILENET_BLOCKS = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def _separable_block(
    g: ComputationGraph, name: str, src: str, out_channels: int, stride: int
) -> str:
    """Depthwise 3x3 followed by pointwise 1x1."""
    dw = f"{name}/dw"
    g.add(
        DepthwiseConv2D(
            name=dw,
            inputs=(src,),
            kernel=(3, 3),
            stride=(stride, stride),
            padding=(1, 1),
        )
    )
    return conv(g, f"{name}/pw", dw, out_channels, 1)


def build_mobilenet_v1() -> ComputationGraph:
    """Build the MobileNetV1 inference graph (224x224x3, 1000 classes)."""
    g = ComputationGraph(name="mobilenet_v1")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    g.begin_block("stem")
    x = conv(g, "conv1", "data", 32, 3, stride=2)
    g.end_block()

    for idx, (channels, stride) in enumerate(_MOBILENET_BLOCKS, start=1):
        g.begin_block(f"block{idx}")
        x = _separable_block(g, f"block{idx}", x, channels, stride)
        g.end_block()

    g.begin_block("classifier")
    x = global_avg_pool(g, "pool", x)
    g.add(FullyConnected(name="fc1000", inputs=(x,), out_features=1000))
    g.end_block()

    g.validate()
    return g

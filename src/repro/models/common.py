"""Shared helpers for model builders.

Builders describe networks layer by layer; these helpers cut the noise of
padding arithmetic and name generation.  Batch-norm and activation are
folded into the preceding convolution, as every FPGA inference accelerator
in the paper's comparison set does.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import (
    Attention,
    Conv2D,
    EltwiseAdd,
    Gemm,
    LayerNorm,
    Pooling,
    PoolMode,
)


def same_padding(kernel: tuple[int, int]) -> tuple[int, int]:
    """'Same' padding for odd kernels and stride 1: (Kh//2, Kw//2)."""
    return (kernel[0] // 2, kernel[1] // 2)


def conv(
    graph: ComputationGraph,
    name: str,
    src: str,
    out_channels: int,
    kernel: tuple[int, int] | int,
    stride: tuple[int, int] | int = 1,
    padding: tuple[int, int] | int | str = "same",
) -> str:
    """Add a convolution and return its name.

    Args:
        graph: Graph under construction.
        name: Node name.
        src: Producer node name.
        out_channels: Output channel count.
        kernel: Filter size; an int means a square kernel.
        stride: Stride; an int means the same stride on both axes.
        padding: Explicit padding pair/int, ``"same"`` (half-kernel) or
            ``"valid"`` (zero padding).
    """
    if isinstance(kernel, int):
        kernel = (kernel, kernel)
    if isinstance(stride, int):
        stride = (stride, stride)
    if padding == "same":
        padding = same_padding(kernel)
    elif padding == "valid":
        padding = (0, 0)
    elif isinstance(padding, int):
        padding = (padding, padding)
    graph.add(
        Conv2D(
            name=name,
            inputs=(src,),
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
    )
    return name


def max_pool(
    graph: ComputationGraph,
    name: str,
    src: str,
    kernel: int = 3,
    stride: int = 2,
    padding: int = 0,
) -> str:
    """Add a max-pooling node and return its name."""
    graph.add(
        Pooling(
            name=name,
            inputs=(src,),
            kernel=(kernel, kernel),
            stride=(stride, stride),
            padding=(padding, padding),
            mode=PoolMode.MAX,
        )
    )
    return name


def avg_pool(
    graph: ComputationGraph,
    name: str,
    src: str,
    kernel: int = 3,
    stride: int = 1,
    padding: int = 1,
) -> str:
    """Add an average-pooling node and return its name."""
    graph.add(
        Pooling(
            name=name,
            inputs=(src,),
            kernel=(kernel, kernel),
            stride=(stride, stride),
            padding=(padding, padding),
            mode=PoolMode.AVG,
        )
    )
    return name


def global_avg_pool(graph: ComputationGraph, name: str, src: str) -> str:
    """Add a global average-pooling node and return its name."""
    graph.add(
        Pooling(name=name, inputs=(src,), mode=PoolMode.AVG, global_pool=True)
    )
    return name


# ----------------------------------------------------------------------
# Transformer-block helpers
# ----------------------------------------------------------------------
# GELU/activation is folded into the preceding GEMM, exactly as ReLU is
# folded into convolutions above.


def gemm(graph: ComputationGraph, name: str, src: str, out_features: int) -> str:
    """Add a token-wise dense (GEMM) node and return its name."""
    graph.add(Gemm(name=name, inputs=(src,), out_features=out_features))
    return name


def attention(graph: ComputationGraph, name: str, src: str, num_heads: int) -> str:
    """Add a fused multi-head self-attention node and return its name."""
    graph.add(Attention(name=name, inputs=(src,), num_heads=num_heads))
    return name


def layer_norm(graph: ComputationGraph, name: str, src: str) -> str:
    """Add a layer-normalisation node and return its name."""
    graph.add(LayerNorm(name=name, inputs=(src,)))
    return name


def add(graph: ComputationGraph, name: str, a: str, b: str) -> str:
    """Add a residual (element-wise add) node and return its name."""
    graph.add(EltwiseAdd(name=name, inputs=(a, b)))
    return name

"""ResNet family — benchmarks "RN" (ResNet-152) and ResNet-50 (Table 3).

Bottleneck residual blocks with identity/projection shortcuts joined by
element-wise addition.  The paper notes ResNet's simpler topology needs
fewer feature buffers than the inception networks (Sec. 4.1), which is why
its LCMM speedup is the largest — a property the reproduction must show.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import EltwiseAdd, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv, global_avg_pool, max_pool

#: Bottleneck counts per stage for the supported depths.
_STAGE_DEPTHS = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}

#: Bottleneck mid-channel width per stage; output width is 4x this.
_STAGE_PLANES = (64, 128, 256, 512)

#: The bottleneck expansion factor.
_EXPANSION = 4


def _bottleneck(
    g: ComputationGraph,
    name: str,
    src: str,
    planes: int,
    stride: int,
    project: bool,
) -> str:
    """Add one bottleneck residual block and return the add node name.

    Args:
        g: Graph under construction.
        name: Block name prefix.
        src: Input node.
        planes: Mid 3x3 channel count; output is ``4 * planes``.
        stride: Stride of the 3x3 (and the projection shortcut).
        project: Whether the shortcut needs a 1x1 projection convolution.
    """
    out_channels = planes * _EXPANSION
    x = conv(g, f"{name}/conv1", src, planes, 1)
    x = conv(g, f"{name}/conv2", x, planes, 3, stride=stride)
    x = conv(g, f"{name}/conv3", x, out_channels, 1)
    if project:
        shortcut = conv(g, f"{name}/proj", src, out_channels, 1, stride=stride)
    else:
        shortcut = src
    out = f"{name}/add"
    g.add(EltwiseAdd(name=out, inputs=(x, shortcut)))
    return out


def build_resnet(depth: int) -> ComputationGraph:
    """Build a ResNet inference graph (224x224x3 input, 1000 classes).

    Args:
        depth: One of 50, 101 or 152.

    Raises:
        ValueError: For unsupported depths.
    """
    if depth not in _STAGE_DEPTHS:
        raise ValueError(f"unsupported ResNet depth {depth}; choose from {sorted(_STAGE_DEPTHS)}")
    stage_depths = _STAGE_DEPTHS[depth]

    g = ComputationGraph(name=f"resnet{depth}")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 224, 224)))

    g.begin_block("stem")
    x = conv(g, "conv1", "data", 64, 7, stride=2, padding=3)
    x = max_pool(g, "pool1", x, kernel=3, stride=2, padding=1)
    g.end_block()

    for stage_idx, (blocks, planes) in enumerate(zip(stage_depths, _STAGE_PLANES), start=2):
        for block_idx in range(1, blocks + 1):
            block_name = f"res{stage_idx}_{block_idx}"
            # Stage 2 keeps stride 1 (the pool already downsampled); later
            # stages downsample in their first block.
            stride = 2 if (stage_idx > 2 and block_idx == 1) else 1
            project = block_idx == 1
            g.begin_block(block_name)
            x = _bottleneck(g, block_name, x, planes, stride, project)
            g.end_block()

    g.begin_block("classifier")
    x = global_avg_pool(g, "pool5", x)
    g.add(FullyConnected(name="fc1000", inputs=(x,), out_features=1000))
    g.end_block()

    g.validate()
    return g


def build_resnet50() -> ComputationGraph:
    """Build ResNet-50 (used in Table 3 against Cloud-DNN)."""
    return build_resnet(50)


def build_resnet101() -> ComputationGraph:
    """Build ResNet-101 (the intermediate depth)."""
    return build_resnet(101)


def build_resnet152() -> ComputationGraph:
    """Build ResNet-152 (benchmark "RN")."""
    return build_resnet(152)

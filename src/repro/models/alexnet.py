"""AlexNet — the linear-topology baseline of the paper's introduction.

AlexNet (and VGG) are the "previous models" whose simple chain structure
lets a traditional double-buffer allocation work; they exist in the zoo so
examples and tests can contrast linear against non-linear topologies.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv, max_pool


def build_alexnet() -> ComputationGraph:
    """Build the AlexNet inference graph (227x227x3 input, 1000 classes)."""
    g = ComputationGraph(name="alexnet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 227, 227)))

    g.begin_block("features")
    x = conv(g, "conv1", "data", 96, 11, stride=4, padding="valid")
    x = max_pool(g, "pool1", x)
    x = conv(g, "conv2", x, 256, 5, padding=2)
    x = max_pool(g, "pool2", x)
    x = conv(g, "conv3", x, 384, 3)
    x = conv(g, "conv4", x, 384, 3)
    x = conv(g, "conv5", x, 256, 3)
    x = max_pool(g, "pool5", x)
    g.end_block()

    g.begin_block("classifier")
    g.add(FullyConnected(name="fc6", inputs=(x,), out_features=4096))
    g.add(FullyConnected(name="fc7", inputs=("fc6",), out_features=4096))
    g.add(FullyConnected(name="fc8", inputs=("fc7",), out_features=1000))
    g.end_block()

    g.validate()
    return g

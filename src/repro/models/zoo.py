"""Model registry.

Maps the names used throughout the paper (and their abbreviations RN, GN,
IN) to builder functions.  Graphs are built fresh on every call — they are
mutable (shape inference writes ``in_channels``), so sharing instances
between experiments would be a footgun.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ModelNotFoundError
from repro.ir.graph import ComputationGraph
from repro.models.alexnet import build_alexnet
from repro.models.densenet import build_densenet121
from repro.models.googlenet import build_googlenet
from repro.models.inception_v4 import build_inception_v4
from repro.models.mobilenet import build_mobilenet_v1
from repro.models.resnet import build_resnet50, build_resnet101, build_resnet152
from repro.models.squeezenet import build_squeezenet
from repro.models.transformer import build_bert_base, build_vit_b16
from repro.models.vgg import build_vgg16

#: Canonical name -> builder.
MODEL_BUILDERS: dict[str, Callable[[], ComputationGraph]] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "googlenet": build_googlenet,
    "resnet50": build_resnet50,
    "resnet101": build_resnet101,
    "resnet152": build_resnet152,
    "inception_v4": build_inception_v4,
    "densenet121": build_densenet121,
    "mobilenet_v1": build_mobilenet_v1,
    "squeezenet": build_squeezenet,
    "bert_base": build_bert_base,
    "vit_b16": build_vit_b16,
}

_ALIASES = {
    "rn": "resnet152",
    "gn": "googlenet",
    "in": "inception_v4",
    "rn50": "resnet50",
    "resnet-50": "resnet50",
    "resnet-152": "resnet152",
    "inception-v4": "inception_v4",
    "inceptionv4": "inception_v4",
    "mobilenet": "mobilenet_v1",
    "bert": "bert_base",
    "bert-base": "bert_base",
    "vit": "vit_b16",
    "vit-b16": "vit_b16",
}


def list_models() -> list[str]:
    """Canonical model names available in the zoo."""
    return sorted(MODEL_BUILDERS)


def get_model(name: str) -> ComputationGraph:
    """Build a model by canonical name or paper abbreviation (RN/GN/IN).

    Raises:
        repro.errors.ModelNotFoundError: If the name matches no
            registered model (remains catchable as ``KeyError``).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        builder = MODEL_BUILDERS[key]
    except KeyError:
        raise ModelNotFoundError(
            f"unknown model {name!r}; known: {', '.join(list_models())}"
        ) from None
    return builder()

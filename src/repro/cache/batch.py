"""Batch compile front-end: the whole model zoo, sharded across workers.

A production deployment compiles every (model, configuration) pair it
serves ahead of time; this module is that front-end.  It enumerates the
job matrix — by default the model zoo times the standard configurations
the golden-result suite pins (the UMM floor, plain DNNK, the greedy
allocator, the full splitting pipeline, and the fusion-era fused /
fused+scheduled pipelines) — shards the jobs
over a process pool, and routes every compilation through a shared
:class:`~repro.cache.store.CompilationCache` directory, so repeated runs
(and concurrent workers racing on the same artifact) compile each unique
input at most once.

Each outcome carries the :func:`repro.fingerprint.fingerprint` of its
result, which makes the report directly comparable against
``tests/golden/*.json`` — ``lcmm batch-compile --verify-golden`` and the
CI cache round-trip job do exactly that.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from pickle import PicklingError

from repro.errors import ConfigError, ModelNotFoundError, ReproError
from repro.fingerprint import compile_key, fingerprint
from repro.lcmm.options import LCMMOptions
from repro.models.zoo import get_model, list_models
from repro.obs import spans as obs

__all__ = [
    "BatchReport",
    "CompileOutcome",
    "FUSED_CONFIGS",
    "STANDARD_CONFIGS",
    "batch_compile",
    "standard_options",
]

#: Configuration label -> LCMM options (``None`` = the pass-free UMM
#: floor).  Mirrors the golden-result suite's matrix.
STANDARD_CONFIGS: dict[str, LCMMOptions | None] = {
    "umm": None,
    "dnnk": LCMMOptions(splitting=False),
    "greedy": LCMMOptions(use_greedy=True, splitting=False),
    "splitting": LCMMOptions(),
    "fused": LCMMOptions(fuse_layers=True),
    "fused_sched": LCMMOptions(fuse_layers=True, transfer_schedule=True),
}

#: Configurations whose golden fingerprints live in ``{model}.fused.json``
#: rather than ``{model}.json`` — the fusion-era matrix is pinned
#: separately so the pre-fusion golden files stay byte-identical.
FUSED_CONFIGS = ("fused", "fused_sched")


def standard_options(config: str) -> LCMMOptions | None:
    """The options object for one standard configuration label.

    Raises:
        repro.errors.ConfigError: On an unknown label.
    """
    try:
        return STANDARD_CONFIGS[config]
    except KeyError:
        raise ConfigError(
            f"unknown batch configuration {config!r}; "
            f"known: {', '.join(STANDARD_CONFIGS)}"
        ) from None


@dataclass(frozen=True)
class CompileOutcome:
    """One (model, configuration) compilation in a batch.

    Attributes:
        model: Zoo model name.
        config: Configuration label (``"umm"``, ``"splitting"``, ...).
        latency: Predicted end-to-end latency of the compiled result.
        cache_hit: Whether the artifact came from the cache.
        seconds: Wall time this job took (lookup or compile).
        fingerprint: The result's golden-format regression fingerprint.
    """

    model: str
    config: str
    latency: float
    cache_hit: bool
    seconds: float
    fingerprint: dict


@dataclass
class BatchReport:
    """Everything one :func:`batch_compile` call produced.

    Attributes:
        outcomes: Per-job outcomes in job order (model-major).
        seconds: Wall time of the whole batch.
        workers: Process count actually used (1 = in-process).
        pool_unavailable: The requested pool could not be created and
            the batch fell back to in-process compilation.
    """

    outcomes: list[CompileOutcome]
    seconds: float
    workers: int
    pool_unavailable: bool = False

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def misses(self) -> int:
        return len(self.outcomes) - self.hits

    @property
    def all_hits(self) -> bool:
        return bool(self.outcomes) and self.misses == 0

    def verify_golden(self, golden_dir: str | Path) -> list[str]:
        """Compare every outcome against ``tests/golden``-style files.

        Returns a list of human-readable mismatch descriptions (empty =
        everything matches).  Models without a golden file are reported
        as mismatches — a silently skipped comparison is how stale
        caches survive review.
        """
        golden_dir = Path(golden_dir)
        problems: list[str] = []
        for outcome in self.outcomes:
            stem = (
                f"{outcome.model}.fused"
                if outcome.config in FUSED_CONFIGS
                else outcome.model
            )
            path = golden_dir / f"{stem}.json"
            if not path.exists():
                problems.append(f"{outcome.model}: no golden file {path}")
                continue
            expected = json.loads(path.read_text()).get(outcome.config)
            if expected is None:
                problems.append(
                    f"{outcome.model}.{outcome.config}: not in golden file"
                )
            elif expected != outcome.fingerprint:
                diffs = [
                    f"{key}: golden={expected.get(key)!r} "
                    f"actual={outcome.fingerprint.get(key)!r}"
                    for key in sorted(set(expected) | set(outcome.fingerprint))
                    if expected.get(key) != outcome.fingerprint.get(key)
                ]
                problems.append(
                    f"{outcome.model}.{outcome.config}: " + "; ".join(diffs)
                )
        return problems


#: Per-process memo of built (graph, design) pairs by (model, precision).
#: Zoo builds are deterministic and ``run_lcmm`` treats its inputs as
#: read-only, so one instance can serve every job in a batch.
_DESIGN_MEMO: dict[tuple[str, str], tuple] = {}

#: Per-process memo of content keys by (model, config, precision).  The
#: key is content-derived on first use; memoising the derivation lets a
#: warm batch answer hits without rebuilding the model graph at all.
_KEY_MEMO: dict[tuple[str, str, str], str] = {}


def _design(model_name: str, precision_name: str) -> tuple:
    memo = (model_name, precision_name)
    pair = _DESIGN_MEMO.get(memo)
    if pair is None:
        from repro.analysis.experiments import BENCHMARKS, reference_design
        from repro.hw.precision import precision_by_name

        graph = get_model(model_name)
        design_key = model_name if model_name in BENCHMARKS else "resnet152"
        accel = reference_design(
            design_key, precision_by_name(precision_name), "lcmm"
        )
        pair = (graph, accel)
        _DESIGN_MEMO[memo] = pair
    return pair


def _job_key(model_name: str, config: str, precision_name: str) -> str:
    memo = (model_name, config, precision_name)
    key = _KEY_MEMO.get(memo)
    if key is None:
        graph, accel = _design(model_name, precision_name)
        options = standard_options(config)
        # Matches the key run_lcmm(cache=...) derives for a default
        # (non-strict) run, so batch artifacts and `lcmm run --cache`
        # artifacts are interchangeable.
        extra = None if options is None else {"strict": False}
        key = compile_key(graph, accel, options, extra=extra)
        _KEY_MEMO[memo] = key
    return key


def _compile_job(
    model_name: str,
    config: str,
    precision_name: str,
    cache_dir: str | None,
) -> CompileOutcome:
    """Compile one (model, configuration) pair — process-pool safe.

    Top level so pools can pickle it; opens its own handle on the shared
    cache directory.  The lookup happens here rather than inside
    ``run_lcmm`` so a hit skips graph construction entirely (the content
    key derivation is memoised per process).
    """
    from repro.cache.store import CompilationCache
    from repro.lcmm.framework import run_lcmm, umm_only_result

    cache = CompilationCache(cache_dir) if cache_dir is not None else None
    start = time.perf_counter()
    key = _job_key(model_name, config, precision_name)
    result = cache.get(key) if cache is not None else None
    hit = result is not None
    if result is None:
        graph, accel = _design(model_name, precision_name)
        options = standard_options(config)
        if options is None:
            # The UMM floor bypasses the pass machinery entirely.
            result = umm_only_result(graph, accel)
            if cache is not None:
                cache.put(key, result)
        else:
            result = run_lcmm(graph, accel, options=options)
            # Mirror the framework's rule: only clean (non-degraded)
            # results are cached.
            if cache is not None and result.degradation_level == 0:
                cache.put(key, result)
    return CompileOutcome(
        model=model_name,
        config=config,
        latency=result.latency,
        cache_hit=hit,
        seconds=time.perf_counter() - start,
        fingerprint=fingerprint(result),
    )


def batch_compile(
    models: list[str] | None = None,
    configs: list[str] | None = None,
    precision: str = "int8",
    cache_dir: str | Path | None = None,
    workers: int = 1,
) -> BatchReport:
    """Compile a model/configuration matrix with cache reuse.

    Args:
        models: Zoo model names (default: the whole zoo).
        configs: Configuration labels from :data:`STANDARD_CONFIGS`
            (default: all four).
        precision: Arithmetic precision name.
        cache_dir: Shared cache directory; ``None`` disables caching
            (every job compiles).
        workers: Process count.  ``1`` compiles in-process; higher
            values shard jobs over a pool, clamped to the job count.  A
            pool that cannot be created falls back to in-process
            compilation (reported via ``pool_unavailable``), exactly
            like the DSE sweep.

    Raises:
        repro.errors.ConfigError: On unknown configuration labels or
            ``workers < 1``.
        repro.errors.ModelNotFoundError: On unknown model names.
    """
    if workers < 1:
        raise ConfigError("workers must be at least 1", details={"workers": workers})
    models = list(models) if models else list_models()
    configs = list(configs) if configs else list(STANDARD_CONFIGS)
    for config in configs:
        standard_options(config)  # validate labels before spawning anything
    known = set(list_models())
    for model in models:
        if model not in known:
            raise ModelNotFoundError(
                f"unknown model {model!r}; known: {', '.join(sorted(known))}"
            )
    jobs = [(model, config) for model in models for config in configs]
    cache_str = str(cache_dir) if cache_dir is not None else None
    workers = min(workers, len(jobs)) if jobs else 1
    start = time.perf_counter()
    pool_unavailable = False
    outcomes: list[CompileOutcome] | None = None
    with obs.span(
        "cache.batch-compile", jobs=len(jobs), workers=workers
    ) as batch_span:
        if workers > 1:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(_compile_job, model, config, precision, cache_str)
                        for model, config in jobs
                    ]
                    outcomes = [future.result() for future in futures]
            except ReproError:
                raise
            except (OSError, RuntimeError, PicklingError):
                pool_unavailable = True
                outcomes = None
        if outcomes is None:
            outcomes = [
                _compile_job(model, config, precision, cache_str)
                for model, config in jobs
            ]
        report = BatchReport(
            outcomes=outcomes,
            seconds=time.perf_counter() - start,
            workers=workers,
            pool_unavailable=pool_unavailable,
        )
        batch_span.annotate(
            "batch-complete", hits=report.hits, misses=report.misses
        )
    return report

"""Content-addressed compilation cache + batch compile front-end.

Compiling the same model against the same design point twice is pure
waste, and schedule/allocation search spaces are dominated by repeated
evaluation of near-identical configurations.  This package eliminates
both:

* :class:`CompilationCache` (:mod:`repro.cache.store`) — a persistent
  disk store of pickled :class:`~repro.lcmm.framework.LCMMResult`
  artifacts keyed by :func:`repro.fingerprint.compile_key`, with a
  bounded in-memory LRU in front.  ``run_lcmm(..., cache=...)`` and
  ``explore_designs(..., cache=...)`` consume it; caching is **off by
  default** everywhere.
* :func:`batch_compile` (:mod:`repro.cache.batch`) — compiles a
  model/configuration matrix across a worker pool with cache reuse
  (``lcmm batch-compile`` on the command line).

Key derivation, invalidation-by-construction and the cache schema
version live in :mod:`repro.fingerprint`; usage and CLI examples in
``docs/caching.md``.
"""

from repro.cache.batch import (
    BatchReport,
    CompileOutcome,
    STANDARD_CONFIGS,
    batch_compile,
    standard_options,
)
from repro.cache.store import CacheStats, CompilationCache

__all__ = [
    "BatchReport",
    "CacheStats",
    "CompilationCache",
    "CompileOutcome",
    "STANDARD_CONFIGS",
    "batch_compile",
    "standard_options",
]

"""Persistent, content-addressed compilation cache.

The store maps a content key (:func:`repro.fingerprint.compile_key` /
:func:`~repro.fingerprint.sweep_key` — SHA-256 over the canonical
compilation inputs plus the schema version) to a pickled artifact on
disk, with a bounded in-memory LRU in front.  Because keys are content
hashes, there is no invalidation protocol: changed inputs or a bumped
:data:`~repro.fingerprint.CACHE_SCHEMA_VERSION` simply hash to keys that
were never written.

Design points:

* **Values round-trip through pickle on every read**, including
  memory-LRU hits: the LRU holds the pickled *bytes*, so every ``get``
  returns an independent object and a caller mutating its result (the
  framework stamps ``degradation_level`` on it) can never corrupt the
  cached copy.
* **Writes are atomic** (temp file + ``os.replace`` in the same
  directory), so concurrent batch-compile workers sharing one cache
  directory never observe torn artifacts; last-writer-wins races are
  harmless because identical keys hold identical content.
* **Corrupt or unreadable entries are misses**: a failed unpickle
  deletes the file and returns ``None`` rather than raising into the
  compile path.
* **The cache never fails a compilation**: ``get`` and ``put`` absorb
  storage-layer failures (I/O errors, and the ``cache.get`` /
  ``cache.put`` fault points the chaos suite arms) and degrade to
  cache-off behaviour — a failed read is a miss, a failed write is a
  dropped store — counting the incident in ``CacheStats.errors``.
* **Cross-process writers are serialized per key**: ``put`` takes a
  per-key lockfile (``O_CREAT | O_EXCL`` with stale-lock takeover)
  around the temp-write + rename, so two ``batch_compile``/serve
  processes hammering the same key cannot interleave a torn write; if
  the lock cannot be acquired within a short budget the write proceeds
  anyway — the atomic rename still guarantees readers never observe a
  partial artifact, the lock only serializes the writers.
* **Observability**: every lookup updates the store's own
  :class:`CacheStats`, and — while a tracer is active, matching the
  run-granularity convention of :mod:`repro.obs` — mirrors
  ``cache.hit`` / ``cache.miss`` / ``cache.evict`` counters (labeled by
  namespace) into the process metrics registry and annotates hits on
  the innermost open span.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError, InjectedFault
from repro.obs import spans as obs
from repro.robustness.inject import declare_fault_point, fault_point

__all__ = ["CacheStats", "CompilationCache"]

declare_fault_point("cache.get", "one artifact lookup in the disk store")
declare_fault_point("cache.put", "one artifact write in the disk store")

#: Failures the storage layer absorbs: real I/O trouble plus the chaos
#: suite's injected stand-in for it.
_STORAGE_FAILURES = (OSError, InjectedFault)

#: Seconds a writer waits for another process's per-key lock before
#: proceeding unlocked (the atomic rename keeps readers safe either way).
_LOCK_TIMEOUT = 5.0

#: Age past which a lockfile is presumed abandoned (a writer that died
#: between acquire and release) and taken over.
_LOCK_STALE_SECONDS = 30.0

#: Namespace for whole-compilation artifacts (pickled ``LCMMResult``).
RESULT_NAMESPACE = "result"
#: Namespace for DSE warm-start score maps (``{tile_key: latency}``).
SWEEP_NAMESPACE = "sweep"


@dataclass
class CacheStats:
    """Lookup outcomes of one :class:`CompilationCache` instance.

    Attributes:
        hits: Lookups answered (from memory or disk).
        misses: Lookups that found nothing usable.
        stores: Artifacts written.
        evictions: Memory-LRU entries dropped for capacity (the disk
            copy survives; a later lookup re-reads it).
        memory_hits: Subset of ``hits`` served without touching disk.
        errors: Storage-layer failures absorbed (failed reads counted
            as misses, failed writes as dropped stores).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    memory_hits: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "memory_hits": self.memory_hits,
            "errors": self.errors,
            "hit_rate": self.hit_rate,
        }


class CompilationCache:
    """Disk-backed content-addressed artifact store with a memory LRU.

    Args:
        root: Cache directory (created on first write).  ``None`` keeps
            the cache purely in memory — same semantics, nothing
            persisted, useful for tests and single-process warm-starts.
        memory_entries: Bound on the in-memory LRU (0 disables it; every
            hit then re-reads disk).

    Raises:
        repro.errors.ConfigError: On a negative ``memory_entries``.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        memory_entries: int = 256,
    ) -> None:
        if memory_entries < 0:
            raise ConfigError(
                "memory_entries must be non-negative",
                details={"memory_entries": memory_entries},
            )
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._lru: OrderedDict[tuple[str, str], bytes] = OrderedDict()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _path(self, key: str, namespace: str) -> Path:
        assert self.root is not None
        # Two-level fan-out keeps directories small on big zoos.
        return self.root / namespace / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str, namespace: str = RESULT_NAMESPACE) -> Any | None:
        """The artifact stored under ``key``, or ``None``.

        Every hit unpickles fresh bytes (memory or disk), so callers own
        their copy outright.  A failing storage layer (I/O error, armed
        ``cache.get`` fault) degrades to a miss — the cache must never
        fail the compilation it fronts.
        """
        payload = self._lru.get((namespace, key))
        from_memory = payload is not None
        if payload is None and self.root is not None:
            path = self._path(key, namespace)
            try:
                fault_point("cache.get", key=key[:12], namespace=namespace)
                payload = path.read_bytes()
            except FileNotFoundError:
                payload = None
            except _STORAGE_FAILURES:
                self.stats.errors += 1
                self._record("cache.error", namespace)
                payload = None
        if payload is not None:
            try:
                value = pickle.loads(payload)
            except Exception:
                # A torn or schema-incompatible artifact is a miss; drop
                # it so the slot heals on the next store.
                self._lru.pop((namespace, key), None)
                if self.root is not None:
                    try:
                        self._path(key, namespace).unlink()
                    except OSError:
                        pass
            else:
                self._remember(namespace, key, payload)
                self.stats.hits += 1
                if from_memory:
                    self.stats.memory_hits += 1
                self._record("cache.hit", namespace)
                obs.annotate("cache-hit", namespace=namespace, key=key[:12])
                return value
        self.stats.misses += 1
        self._record("cache.miss", namespace)
        return None

    def put(self, key: str, value: Any, namespace: str = RESULT_NAMESPACE) -> None:
        """Store ``value`` under ``key`` (atomic on disk, LRU-admitted).

        The disk write is serialized against concurrent cross-process
        writers by a per-key lockfile and performed as temp-write +
        atomic rename.  A failing storage layer (I/O error, armed
        ``cache.put`` fault) drops the disk copy — counted in
        ``CacheStats.errors`` — but never raises into the compile path;
        the in-memory LRU still remembers the value.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if self.root is not None:
            path = self._path(key, namespace)
            try:
                fault_point("cache.put", key=key[:12], namespace=namespace)
                path.parent.mkdir(parents=True, exist_ok=True)
                lock = self._acquire_lock(path)
                try:
                    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                    try:
                        with os.fdopen(fd, "wb") as handle:
                            handle.write(payload)
                        os.replace(tmp, path)
                    except BaseException:
                        try:
                            os.unlink(tmp)
                        except OSError:
                            pass
                        raise
                finally:
                    self._release_lock(lock)
            except _STORAGE_FAILURES:
                self.stats.errors += 1
                self._record("cache.error", namespace)
        self._remember(namespace, key, payload)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Per-key write lock (cross-process)
    # ------------------------------------------------------------------
    @staticmethod
    def _lock_path(path: Path) -> Path:
        return path.with_suffix(path.suffix + ".lock")

    def _acquire_lock(self, path: Path) -> Path | None:
        """Take the per-key writer lock, or give up after a short wait.

        ``O_CREAT | O_EXCL`` makes creation the atomic acquire.  A lock
        older than :data:`_LOCK_STALE_SECONDS` is presumed abandoned by a
        dead writer and taken over.  Returns the lock path on success or
        ``None`` when the budget ran out — the caller then writes
        unlocked, which the atomic rename keeps safe for readers.
        """
        lock = self._lock_path(path)
        deadline = time.monotonic() + _LOCK_TIMEOUT
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age > _LOCK_STALE_SECONDS:
                    # Abandoned: remove and retry the atomic acquire
                    # (the unlink may race another takeover; the retry
                    # loop sorts the survivors out).
                    try:
                        os.unlink(lock)
                    except OSError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    return None
                time.sleep(0.002)
            else:
                with os.fdopen(fd, "w") as handle:
                    handle.write(f"{os.getpid()} {time.time():.3f}\n")
                return lock

    @staticmethod
    def _release_lock(lock: Path | None) -> None:
        if lock is not None:
            try:
                os.unlink(lock)
            except OSError:
                pass

    def contains(self, key: str, namespace: str = RESULT_NAMESPACE) -> bool:
        """Whether a lookup would hit, without counting it as one."""
        if (namespace, key) in self._lru:
            return True
        return self.root is not None and self._path(key, namespace).exists()

    # ------------------------------------------------------------------
    # Memory LRU
    # ------------------------------------------------------------------
    def _remember(self, namespace: str, key: str, payload: bytes) -> None:
        if self.memory_entries == 0:
            return
        lru = self._lru
        lru[(namespace, key)] = payload
        lru.move_to_end((namespace, key))
        while len(lru) > self.memory_entries:
            lru.popitem(last=False)
            self.stats.evictions += 1
            self._record("cache.evict", namespace)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @staticmethod
    def _record(counter: str, namespace: str) -> None:
        if not obs.enabled():
            return
        from repro.obs.metrics import registry

        registry().counter(counter).inc(namespace=namespace)

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        where = str(self.root) if self.root is not None else "<memory>"
        return (
            f"CompilationCache({where!r}, entries={len(self._lru)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )

"""Canonical fingerprints: regression hashes and cache keys.

Two related jobs share the hashing conventions in this module:

* **Result fingerprints** (:func:`fingerprint`) reduce one
  :class:`~repro.lcmm.framework.LCMMResult` to the compact, bit-exact
  record the golden-result suite checks into ``tests/golden/*.json`` —
  a SHA-256 over the complete allocation decision plus the headline
  numbers (latency as a float hex string, block-rounded ``used_bytes``,
  degradation level).  Promoted here from the test suite because the
  compilation cache needs the same notion of "the result" in production.

* **Cache keys** (:func:`compile_key`, :func:`sweep_key`) are
  content-addressed identities of a compilation *input*: the canonical
  serialized graph, every field of the accelerator design point, the
  :class:`~repro.lcmm.options.LCMMOptions` switches, and
  :data:`CACHE_SCHEMA_VERSION`.  Two calls with bit-identical inputs
  hash to the same key; any input drift — a new option field, a changed
  device inventory, a bumped schema — changes the key, so stale cache
  entries are never *hit* (invalidation by construction, no purging
  logic).

Everything here hashes canonical JSON (``sort_keys=True``) with SHA-256;
floats travel as ``float.hex()`` strings so equality is bit-for-bit, not
approximate.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # avoid import cycles; these are type-only imports
    from repro.ir.graph import ComputationGraph
    from repro.lcmm.framework import LCMMResult
    from repro.lcmm.options import LCMMOptions
    from repro.perf.systolic import AcceleratorConfig
    from repro.perf.tiling import TileConfig

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "FUSION_CACHE_SCHEMA_VERSION",
    "GEMM_CACHE_SCHEMA_VERSION",
    "LEGACY_CACHE_SCHEMA_VERSION",
    "accel_fingerprint",
    "compile_key",
    "fingerprint",
    "graph_fingerprint",
    "options_fingerprint",
    "pipeline_key",
    "sweep_key",
    "tile_key",
]

#: Version tag mixed into every cache key.  Bump whenever the meaning of
#: a cached artifact changes — a new ``LCMMResult`` field that affects
#: results, a latency-model fix, a serialization change — and every
#: previously written entry silently becomes a miss.
#:
#: Version 2 marks the op-generic IR (GEMM / attention / norm layer
#: kinds and the systolic GEMM latency model).  The conv-family op set
#: compiles bit-identically under both IRs, so keys for graphs built
#: only from legacy ops keep hashing with
#: :data:`LEGACY_CACHE_SCHEMA_VERSION` — warm caches built before the
#: refactor stay warm (see :func:`_schema_for`); only graphs that
#: actually use the new kinds carry the bumped tag.
#:
#: Version 3 marks the fusion era: the ``fuse_layers`` and
#: ``transfer_schedule`` passes.  Both are off by default and, when off,
#: results are bit-identical to the version-1/2 pipeline, so keys for
#: runs that do not enable them keep hashing under their pre-fusion
#: schema (and :func:`options_fingerprint` omits the disabled flags) —
#: every previously written cache entry stays warm.  Only runs that
#: actually enable a fusion-era pass carry the bumped tag.
#:
#: Version 4 marks the partition era: multi-die layer-pipelined
#: compilation (:func:`pipeline_key`).  Partitioning is a separate entry
#: point, not an options flag, and a single-die request compiles
#: bit-identically to the plain flow, so *only* multi-die pipeline keys
#: carry the bumped tag: :func:`compile_key`/:func:`sweep_key` digests —
#: fusion-era ones included, which keep hashing under
#: :data:`FUSION_CACHE_SCHEMA_VERSION` — are byte-stable across the bump
#: and every previously written cache entry stays warm.
CACHE_SCHEMA_VERSION = 4

#: Schema tag of the fusion era, still used for fusion-enabled runs.
FUSION_CACHE_SCHEMA_VERSION = 3

#: Schema tag of the op-generic-IR era (GEMM/attention graphs, no fusion).
GEMM_CACHE_SCHEMA_VERSION = 2

#: Schema tag of the conv-only era, still used for conv-family graphs.
LEGACY_CACHE_SCHEMA_VERSION = 1

#: Option fields introduced by schema version 3.  When every one of them
#: holds its disabled default the run is indistinguishable from a
#: pre-fusion compilation, so they are folded into neither the options
#: fingerprint nor the schema tag — old cache keys stay byte-stable.
_FUSION_OPTION_FIELDS = ("fuse_layers", "transfer_schedule")


def _uses_fusion(options: "LCMMOptions | None") -> bool:
    """Whether an options object enables any schema-3 (fusion-era) pass."""
    if options is None:
        return False
    return any(getattr(options, name, False) for name in _FUSION_OPTION_FIELDS)


def _schema_for(
    graph: "ComputationGraph", options: "LCMMOptions | None" = None
) -> int:
    """Cache schema version a (graph, options) pair hashes under (see above)."""
    from repro.io.serialize import (  # deferred: io imports lcmm
        GRAPH_FORMAT_VERSION,
        graph_format_version,
    )

    if _uses_fusion(options):
        return FUSION_CACHE_SCHEMA_VERSION
    if graph_format_version(graph) == GRAPH_FORMAT_VERSION:
        return LEGACY_CACHE_SCHEMA_VERSION
    return GEMM_CACHE_SCHEMA_VERSION


def _digest(payload: Any) -> str:
    """SHA-256 hex digest of a JSON-canonicalized payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Result fingerprints (the golden-regression format)
# ----------------------------------------------------------------------

def fingerprint(result: "LCMMResult") -> dict:
    """Reduce one result to its checked-in regression fingerprint.

    The allocation hash covers everything that defines the memory
    management decision; the remaining fields are the headline numbers a
    reviewer wants to see directly in a diff.
    """
    allocation = {
        "onchip": sorted(result.onchip_tensors),
        "buffers": [
            [
                buf.name,
                sorted(buf.tensor_names),
                buf.size_bytes,
                buf.uram_blocks,
                buf.bram36_blocks,
            ]
            for buf in result.physical_buffers
        ],
        "residuals": sorted(
            (name, float(value).hex()) for name, value in result.residuals.items()
        ),
        "fractions": sorted(
            (name, float(value).hex()) for name, value in result.fractions.items()
        ),
    }
    fused = getattr(result, "fused_edges", ())
    if fused:
        # Only fused results carry the key: pre-fusion fingerprints (and
        # every checked-in golden file) hash the exact same payload they
        # always did.
        allocation["fused"] = sorted(
            [edge.producer, edge.consumer, edge.tensor] for edge in fused
        )
    digest = _digest(allocation)
    return {
        "allocation_sha256": digest,
        "latency_hex": float(result.latency).hex(),
        "latency_ms": round(result.latency * 1e3, 6),
        "used_bytes": result.sram_usage.used_bytes,
        "onchip_tensors": len(result.onchip_tensors),
        "degradation_level": result.degradation_level,
    }


# ----------------------------------------------------------------------
# Input fingerprints (cache-key components)
# ----------------------------------------------------------------------

def graph_fingerprint(graph: "ComputationGraph") -> str:
    """Content hash of a computation graph.

    Uses the canonical JSON serialization (:mod:`repro.io.serialize`),
    so two structurally identical graphs — same layers, same edges, same
    block map — fingerprint identically regardless of how they were
    built.
    """
    from repro.io.serialize import graph_to_dict  # deferred: io imports lcmm

    return _digest(graph_to_dict(graph))


def _tile_dict(tile: "TileConfig") -> dict:
    return {"tm": tile.tm, "tn": tile.tn, "th": tile.th, "tw": tile.tw}


def accel_fingerprint(
    accel: "AcceleratorConfig", include_tile: bool = True
) -> str:
    """Content hash of every result-relevant field of a design point.

    ``include_tile=False`` hashes the design *around* the tile — the
    identity the DSE warm-start keys on, where the tile itself is the
    swept variable.
    """
    ddr = accel.ddr
    payload: dict[str, Any] = {
        "name": accel.name,
        "precision": {
            "name": accel.precision.name,
            "bits": accel.precision.bits,
            "dsps_per_mac": accel.precision.dsps_per_mac,
            "is_floating_point": accel.precision.is_floating_point,
        },
        "array": {
            "rows": accel.array.rows,
            "cols": accel.array.cols,
            "simd": accel.array.simd,
        },
        "frequency": float(accel.frequency).hex(),
        "device": {
            "name": accel.device.name,
            "dsp_slices": accel.device.dsp_slices,
            "clb_luts": accel.device.clb_luts,
            "bram36_blocks": accel.device.sram.bram36_blocks,
            "uram_blocks": accel.device.sram.uram_blocks,
            "ddr_banks": accel.device.ddr_banks,
            "ddr_bank_bandwidth": float(accel.device.ddr_bank_bandwidth).hex(),
        },
        "ddr": {
            kind: {
                "bandwidth": float(iface.bandwidth).hex(),
                "burst_overhead": float(iface.burst_overhead).hex(),
            }
            for kind, iface in (
                ("ifmap", ddr.ifmap),
                ("weight", ddr.weight),
                ("ofmap", ddr.ofmap),
            )
        },
        "ddr_efficiency": float(accel.ddr_efficiency).hex(),
        "if_resident_cap": accel.if_resident_cap,
        "wt_resident_cap": accel.wt_resident_cap,
    }
    if include_tile:
        payload["tile"] = _tile_dict(accel.tile)
    return _digest(payload)


def options_fingerprint(options: "LCMMOptions | None") -> str:
    """Content hash of the framework feature switches.

    ``None`` — the UMM-only floor, compiled without any pass machinery —
    hashes to a distinct constant payload.  Hashing walks the dataclass
    fields generically, so a newly added option automatically changes
    the key (old cached entries become misses rather than wrong hits).
    """
    if options is None:
        return _digest({"config": "umm-floor"})
    from dataclasses import fields

    payload = {}
    for f in fields(options):
        value = getattr(options, f.name)
        if f.name in _FUSION_OPTION_FIELDS and not value:
            # Disabled fusion-era flags hash exactly like the pre-fusion
            # dataclass that did not have them: old keys stay stable.
            continue
        payload[f.name] = float(value).hex() if isinstance(value, float) else value
    return _digest(payload)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------

def compile_key(
    graph: "ComputationGraph",
    accel: "AcceleratorConfig",
    options: "LCMMOptions | None",
    extra: Mapping[str, Any] | None = None,
) -> str:
    """Content-addressed identity of one compilation.

    Covers the canonical graph, every field of the design point, the
    options (``None`` = the UMM-only floor) and the cache schema
    version; ``extra`` lets callers fold in additional switches that
    change the result (e.g. ``strict``).
    """
    return _digest(
        {
            "schema": _schema_for(graph, options),
            "kind": "compile",
            "graph": graph_fingerprint(graph),
            "accel": accel_fingerprint(accel),
            "options": options_fingerprint(options),
            "extra": dict(extra or {}),
        }
    )


def sweep_key(graph: "ComputationGraph", base: "AcceleratorConfig") -> str:
    """Identity of a DSE tile sweep: the design point *minus* its tile.

    Per-tile UMM scores cached under this key warm-start any later sweep
    of the same (graph, base) pair, whatever tile set it enumerates.
    """
    return _digest(
        {
            "schema": _schema_for(graph),
            "kind": "tile-sweep",
            "graph": graph_fingerprint(graph),
            "accel": accel_fingerprint(base, include_tile=False),
        }
    )


def pipeline_key(
    graph: "ComputationGraph",
    accel: "AcceleratorConfig",
    options: "LCMMOptions | None",
    devices: int = 1,
    link: Any = None,
) -> str:
    """Identity of a multi-die pipelined compilation.

    With partitioning disabled — one device, or no link model, exactly
    the cases :func:`~repro.perf.partition.design_partition` degrades to
    the single-die flow — this *is* :func:`compile_key`: the digest is
    byte-identical to the pre-partition era, so every previously written
    cache entry stays warm.  Only a genuine multi-die request folds the
    partition payload (device count, per-link bandwidth and efficiency)
    into a schema-:data:`CACHE_SCHEMA_VERSION` digest.
    """
    if devices <= 1 or link is None:
        return compile_key(graph, accel, options)
    return _digest(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "pipeline",
            "graph": graph_fingerprint(graph),
            "accel": accel_fingerprint(accel),
            "options": options_fingerprint(options),
            "devices": devices,
            "link": {
                "gbps": float(link.gbps).hex(),
                "efficiency": float(link.efficiency).hex(),
            },
        }
    )


def tile_key(tile: "TileConfig") -> str:
    """Stable string identity of one tile shape (warm-start map key)."""
    return f"{tile.tm}x{tile.tn}x{tile.th}x{tile.tw}"

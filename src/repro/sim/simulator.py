"""The schedule simulator.

Executes the compute schedule node by node against three explicit DDR
interface channels.  Per node:

* demand transfers (off-chip ifmap / weight tiles / ofmap write-back)
  occupy their channel for the transfer duration and overlap the node's
  compute (double buffering);
* weight prefetch loads are issued when their PDG start node begins and
  run as *background* traffic on the weight channel: demand tile streams
  have priority, prefetches consume only the channel's idle time (the
  standard DMA arbitration).  A prefetch squeezed out by demand traffic
  finishes late — the contention the analytical model ignores;
* a node whose weights live on chip stalls until its prefetch completes.

The result carries the full event timeline plus per-channel busy time, so
tests can assert both totals and causality (no node starts before its
weights are resident; channels never exceed 100 % occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.tensor import TensorKind, weight_tensor_name
from repro.lcmm.prefetch import PrefetchResult
from repro.obs.spans import span as obs_span
from repro.perf.latency import LatencyModel
from repro.sim.events import EventKind, TimelineEvent


@dataclass
class SimulationResult:
    """Outcome of one simulated inference.

    Attributes:
        total_latency: Makespan of the schedule in seconds.
        node_start: Per node, the time its execution began.
        node_end: Per node, the time its execution finished.
        stall_time: Total time nodes waited for unfinished prefetches.
        channel_busy: Busy seconds per interface kind ("if"/"wt"/"of").
        events: Full event timeline, time-ordered.
    """

    total_latency: float
    node_start: dict[str, float]
    node_end: dict[str, float]
    stall_time: float
    channel_busy: dict[str, float]
    events: list[TimelineEvent] = field(repr=False, default_factory=list)

    def node_latency(self, name: str) -> float:
        """Wall-clock residence of one node on the timeline."""
        return self.node_end[name] - self.node_start[name]

    def channel_utilization(self, kind: str) -> float:
        """Busy fraction of one interface over the whole run."""
        if self.total_latency <= 0:
            return 0.0
        return self.channel_busy[kind] / self.total_latency


def simulate(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
    prefetch: PrefetchResult | None = None,
    record_events: bool = True,
) -> SimulationResult:
    """Simulate one inference under an allocation.

    Args:
        model: Latency model supplying per-node compute/transfer times.
        onchip: Tensor values resident on chip (empty = UMM).
        prefetch: Prefetch pass output; required for on-chip weight
            tensors to be loaded at all.  When an on-chip weight has no
            prefetch edge its load is issued at the node itself (worst
            case).
        record_events: Keep the full timeline (disable for speed in
            property tests that only check totals).

    Returns:
        The simulated timeline.
    """
    with obs_span(
        "sim.simulate", graph=model.graph.name, onchip=len(onchip)
    ) as sim_span:
        return _simulate(model, onchip, prefetch, record_events, sim_span)


def _simulate(
    model: LatencyModel,
    onchip: frozenset[str],
    prefetch: PrefetchResult | None,
    record_events: bool,
    sim_span,
) -> SimulationResult:
    schedule = model.nodes()
    index_of = {name: idx for idx, name in enumerate(schedule)}
    events: list[TimelineEvent] = []

    def emit(time: float, kind: EventKind, node: str, detail: str = "", duration: float = 0.0) -> None:
        if record_events:
            events.append(TimelineEvent(time, kind, node, detail, duration))

    # Prefetch loads to issue when a given node starts.
    with obs_span("sim.setup", nodes=len(schedule)):
        issue_at: dict[str, list[tuple[str, float]]] = {}
        prefetched_nodes: set[str] = set()
        if prefetch is not None:
            for node, edge in prefetch.edges.items():
                wname = weight_tensor_name(node)
                if wname not in onchip:
                    continue
                issue_at.setdefault(edge.start, []).append((node, edge.load_time))
                prefetched_nodes.add(node)

    clock = 0.0
    weights_ready: dict[str, float] = {}
    node_start: dict[str, float] = {}
    node_end: dict[str, float] = {}
    busy = {"if": 0.0, "wt": 0.0, "of": 0.0}
    stall_total = 0.0
    # Outstanding background prefetches, FIFO: [node, remaining seconds].
    outstanding: list[list] = []

    def drain_prefetches(window_start: float, window_end: float, demand: float) -> None:
        """Give the window's idle weight-channel time to prefetches.

        Demand traffic has priority and occupies the head of the window;
        the remaining idle tail feeds the outstanding prefetch queue.
        """
        nonlocal outstanding
        idle_begin = window_start + demand
        idle = window_end - idle_begin
        while outstanding and idle > 1e-18:
            entry = outstanding[0]
            served = min(idle, entry[1])
            entry[1] -= served
            idle -= served
            busy["wt"] += served
            if entry[1] <= 1e-18:
                done_at = window_end - idle
                weights_ready[entry[0]] = done_at
                emit(done_at, EventKind.PREFETCH_END, entry[0], "wt")
                outstanding.pop(0)

    # The event loop proper, as its own phase span in the trace.
    walk_span = obs_span("sim.schedule-walk", nodes=len(schedule))
    with walk_span:
        for name in schedule:
            ll = model.layer(name)

            # Issue this node's prefetches before it starts executing: the
            # PDG says the load begins when the start node begins.
            for target, load_time in issue_at.get(name, ()):
                outstanding.append([target, load_time])
                emit(clock, EventKind.PREFETCH_START, target, "wt", load_time)

            # Stall until prefetched weights are resident; stalled time is
            # pure idle on every channel, so prefetches drain during it.
            start = clock
            if name in prefetched_nodes and weights_ready.get(name) is None:
                pos = next(
                    (i for i, e in enumerate(outstanding) if e[0] == name), None
                )
                if pos is not None:
                    # Time to finish everything up to and including ours if
                    # the channel were fully idle from now on.
                    wait = sum(e[1] for e in outstanding[: pos + 1])
                    emit(start, EventKind.STALL, name, "await-prefetch", wait)
                    walk_span.annotate("sim.stall", node=name, wait=wait)
                    stall_total += wait
                    drain_prefetches(start, start + wait, demand=0.0)
                    start += wait
            node_start[name] = start
            emit(start, EventKind.NODE_START, name)

            end = start + ll.compute
            # Demand transfers overlap the node's own compute (double
            # buffering); each occupies its channel for its duration.
            if_time = ll.slot_latency(TensorKind.IFMAP, onchip)
            of_time = ll.slot_latency(TensorKind.OFMAP, onchip)
            wt_time = ll.slot_latency(TensorKind.WEIGHT, onchip)
            if if_time > 0:
                busy["if"] += if_time
                emit(start, EventKind.TRANSFER, name, "if", if_time)
                end = max(end, start + if_time)
            if of_time > 0:
                busy["of"] += of_time
                emit(start, EventKind.TRANSFER, name, "of", of_time)
                end = max(end, start + of_time)
            if wt_time > 0:
                # Demand weight tiles have channel priority over prefetches.
                busy["wt"] += wt_time
                emit(start, EventKind.TRANSFER, name, "wt", wt_time)
                end = max(end, start + wt_time)

            # Whatever the window leaves idle on the weight channel feeds
            # the outstanding prefetches.
            drain_prefetches(start, end, demand=wt_time)

            node_end[name] = end
            emit(end, EventKind.NODE_END, name)
            clock = end

    with obs_span("sim.finalize", events=len(events)):
        events.sort(key=lambda e: e.time)
        result = SimulationResult(
            total_latency=clock,
            node_start=node_start,
            node_end=node_end,
            stall_time=stall_total,
            channel_busy=busy,
            events=events,
        )
    sim_span.annotate(
        "sim.result", makespan=result.total_latency, stall=result.stall_time
    )
    return result

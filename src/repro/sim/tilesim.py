"""Tile-granularity simulation of the accelerator dataflow.

The layer-level simulator treats each node's transfers as single bulk
operations; this module simulates the dataflow of Fig. 1 directly, one
outer-loop tile iteration at a time:

* each tiled layer is decomposed into its outer iterations — for a conv
  ``ceil(M/tm) x ceil(H/th) x ceil(W/tw)``, for a GEMM
  ``ceil(M/(th*tw)) x ceil(P/tm)``;
* every iteration loads an input tile and a weight tile (unless the
  tensor is resident on chip), computes, and stores an output tile;
* loads for iteration ``k+1`` overlap the compute of iteration ``k``
  (double buffering), and the first iteration's loads cannot be hidden —
  the pipeline fill the bulk model ignores;
* each transfer occupies its interface channel for its duration, so the
  simulation exposes when the three streams serialise within a tile.

Validating the analytical Eq. 1 latencies against this from-first-
principles model (they agree to within the pipeline-fill term) is the
strongest internal evidence that the reproduction's numbers mean what
the paper's equations mean.

:func:`simulate_tiles` dispatches on the layer's
:class:`~repro.ir.layer.ComputeKind`; :func:`simulate_conv_tiles` is the
historical conv-only entry point, now one implementation behind the
generic interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.layer import Attention, ComputeKind, Conv2D, Gemm
from repro.ir.tensor import TensorKind
from repro.perf.latency import LatencyModel
from repro.perf.systolic import gemm_compute_cycles


@dataclass(frozen=True)
class TileIteration:
    """One outer-loop iteration of a layer's tile schedule.

    Attributes:
        index: Iteration number within the layer.
        load_time: Seconds of demand loads (if + wt tiles, serialised per
            interface but concurrent across interfaces).
        compute_time: Seconds the array works on the tile.
        store_time: Seconds to write the output tile back (zero while
            accumulation continues or when the output is resident).
    """

    index: int
    load_time: float
    compute_time: float
    store_time: float


@dataclass
class TileLevelResult:
    """Outcome of a tile-granularity layer simulation.

    Attributes:
        node: Layer simulated.
        iterations: Number of outer-loop iterations.
        total_latency: Makespan with double buffering.
        pipeline_fill: The unhidden first-load time (the term the bulk
            model ignores).
        bulk_latency: The analytical Eq. 1 latency for comparison.
    """

    node: str
    iterations: int
    total_latency: float
    pipeline_fill: float
    bulk_latency: float


def _pipeline_makespan(
    model: LatencyModel,
    node: str,
    onchip: frozenset[str],
    iterations: int,
    total_if_bytes: int,
    total_wt_bytes: int,
    total_of_bytes: int,
    total_compute: float,
) -> TileLevelResult:
    """Makespan of a double-buffered load -> compute -> store tile pipeline.

    Edge tiles are smaller; payloads are per-layer totals averaged over
    the iterations so the totals match the bulk model exactly.  Iteration
    ``k``'s loads overlap iteration ``k-1``'s compute, its store overlaps
    iteration ``k+1``'s compute; for n items with uniform stage times the
    makespan is the classic  fill + (n-1)*period + drain  form.
    """
    accel = model.accel
    if_tile_time = total_if_bytes / accel.interface_bandwidth("if") / iterations
    wt_tile_time = total_wt_bytes / accel.interface_bandwidth("wt") / iterations
    of_tile_time = total_of_bytes / accel.interface_bandwidth("of") / iterations
    compute_tile_time = total_compute / iterations

    load = max(if_tile_time, wt_tile_time)
    period = max(load, compute_tile_time, of_tile_time)
    total = load + compute_tile_time + of_tile_time + (iterations - 1) * period

    return TileLevelResult(
        node=node,
        iterations=iterations,
        total_latency=total,
        pipeline_fill=load,
        bulk_latency=model.layer(node).latency(onchip),
    )


def _slot_demand_bytes(
    model: LatencyModel, node: str, onchip: frozenset[str]
) -> tuple[int, int, int]:
    """Per-interface demand bytes of a node, read from its slots.

    Sourcing the payloads from the characterised slots (rather than
    recomputing them from graph shapes) keeps the tile simulation
    bit-identical to the bulk model *and* makes it fusion-aware for
    free: a fused stream's slot carries zero bytes, so its tiles load
    in zero time — exactly the merged-loop behaviour.
    """
    totals = {TensorKind.IFMAP: 0, TensorKind.WEIGHT: 0, TensorKind.OFMAP: 0}
    for slot in model.layer(node).slots:
        if slot.tensor in onchip:
            continue
        totals[slot.kind] += slot.bytes
    return (
        totals[TensorKind.IFMAP],
        totals[TensorKind.WEIGHT],
        totals[TensorKind.OFMAP],
    )


def _simulate_conv_tiles(
    model: LatencyModel,
    node: str,
    layer: Conv2D,
    onchip: frozenset[str],
) -> TileLevelResult:
    graph = model.graph
    accel = model.accel
    tile = accel.tile
    out = graph.output_shape(node)

    n_m = tile.output_channel_trips(out.channels)
    n_h = math.ceil(out.height / tile.th)
    n_w = math.ceil(out.width / tile.tw)
    iterations = n_m * n_h * n_w

    total_if_bytes, total_wt_bytes, total_of_bytes = _slot_demand_bytes(
        model, node, onchip
    )

    macs = layer.macs(graph.input_shapes(node))
    effective = accel.array.effective_macs(out.channels, layer.in_channels)
    total_compute = macs / (effective * accel.frequency)

    return _pipeline_makespan(
        model, node, onchip, iterations,
        total_if_bytes, total_wt_bytes, total_of_bytes, total_compute,
    )


def _simulate_gemm_tiles(
    model: LatencyModel,
    node: str,
    layer: Gemm | Attention,
    onchip: frozenset[str],
) -> TileLevelResult:
    """GEMM / attention node at tile granularity.

    The outer loop walks token-row x output-feature tiles of the node's
    leading multiply; for attention the downstream composed GEMMs run out
    of the tile buffers, so they add compute time but no extra streams.
    """
    accel = model.accel
    tile = accel.tile

    dims_list = layer.gemm_dims()
    if isinstance(dims_list, tuple):
        lead, components = dims_list[0], dims_list
    else:
        lead, components = dims_list, (dims_list,)

    iterations = tile.gemm_row_trips(lead.m) * tile.gemm_output_trips(lead.p)

    total_if_bytes, total_wt_bytes, total_of_bytes = _slot_demand_bytes(
        model, node, onchip
    )

    cycles = sum(gemm_compute_cycles(d, accel.array, tile) for d in components)
    total_compute = cycles / accel.frequency

    return _pipeline_makespan(
        model, node, onchip, iterations,
        total_if_bytes, total_wt_bytes, total_of_bytes, total_compute,
    )


def _has_tile_schedule(layer) -> bool:
    """Whether the layer runs a multi-tile outer loop.  FC heads run the
    conv datapath as a single 1x1x1 tile and stay with their bulk
    latency, as do the single-tile data-movement ops."""
    if layer.compute_kind is ComputeKind.CONV:
        return True
    if layer.compute_kind is ComputeKind.GEMM:
        return not layer.conv_datapath
    return layer.compute_kind is ComputeKind.ATTENTION


def simulate_tiles(
    model: LatencyModel,
    node: str,
    onchip: frozenset[str] = frozenset(),
) -> TileLevelResult:
    """Simulate one tiled layer at tile granularity.

    Dispatches on the layer's compute kind: convolutions walk their
    output-channel x spatial tile loops, GEMM and attention nodes their
    token-row x output-feature loops.

    Args:
        model: Latency model supplying geometry and bandwidths.
        node: Name of a layer with a tile-level schedule.
        onchip: Tensor values resident on chip (their tiles load in zero
            time from the tensor buffers).

    Raises:
        ValueError: If the layer has no tile-level schedule (pool,
            eltwise, norm, concat, input, conv-datapath FC).
    """
    layer = model.graph.layer(node)
    if layer.compute_kind is ComputeKind.CONV and isinstance(layer, Conv2D):
        return _simulate_conv_tiles(model, node, layer, onchip)
    if _has_tile_schedule(layer) and isinstance(layer, (Gemm, Attention)):
        return _simulate_gemm_tiles(model, node, layer, onchip)
    raise ValueError(
        f"{node!r} (kind {layer.compute_kind}) has no tile-level schedule"
    )


def simulate_conv_tiles(
    model: LatencyModel,
    node: str,
    onchip: frozenset[str] = frozenset(),
) -> TileLevelResult:
    """Simulate one convolution at tile granularity.

    Historical conv-only entry point; see :func:`simulate_tiles`.

    Raises:
        ValueError: If ``node`` is not a convolution.
    """
    layer = model.graph.layer(node)
    if not isinstance(layer, Conv2D):
        raise ValueError(f"{node!r} is not a convolution")
    return _simulate_conv_tiles(model, node, layer, onchip)


def simulate_network_tiles(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
) -> dict[str, TileLevelResult]:
    """Tile-simulate every tiled layer of the network.

    Single-tile layers (pool, eltwise, norm, conv-datapath FC) keep their
    bulk latencies.
    """
    results = {}
    for node in model.nodes():
        layer = model.graph.layer(node)
        if isinstance(layer, Conv2D) or (
            _has_tile_schedule(layer) and isinstance(layer, (Gemm, Attention))
        ):
            results[node] = simulate_tiles(model, node, onchip)
    return results


def network_tile_latency(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
) -> float:
    """End-to-end latency with tiled layers at tile granularity."""
    tile_results = simulate_network_tiles(model, onchip)
    total = 0.0
    for node in model.nodes():
        if node in tile_results:
            total += tile_results[node].total_latency
        else:
            total += model.layer(node).latency(onchip)
    return total

"""Tile-granularity simulation of the accelerator dataflow.

The layer-level simulator treats each node's transfers as single bulk
operations; this module simulates the dataflow of Fig. 1 directly, one
outer-loop tile iteration at a time:

* each conv layer is decomposed into its ``ceil(M/tm) x ceil(H/th) x
  ceil(W/tw)`` outer iterations;
* every iteration loads an input tile and a weight tile (unless the
  tensor is resident on chip), computes, and stores an output tile;
* loads for iteration ``k+1`` overlap the compute of iteration ``k``
  (double buffering), and the first iteration's loads cannot be hidden —
  the pipeline fill the bulk model ignores;
* each transfer occupies its interface channel for its duration, so the
  simulation exposes when the three streams serialise within a tile.

Validating the analytical Eq. 1 latencies against this from-first-
principles model (they agree to within the pipeline-fill term) is the
strongest internal evidence that the reproduction's numbers mean what
the paper's equations mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.layer import Conv2D
from repro.ir.tensor import TensorKind, feature_tensor_name, weight_tensor_name
from repro.perf.latency import LatencyModel


@dataclass(frozen=True)
class TileIteration:
    """One outer-loop iteration of a layer's tile schedule.

    Attributes:
        index: Iteration number within the layer.
        load_time: Seconds of demand loads (if + wt tiles, serialised per
            interface but concurrent across interfaces).
        compute_time: Seconds the array works on the tile.
        store_time: Seconds to write the output tile back (zero while
            accumulation continues or when the output is resident).
    """

    index: int
    load_time: float
    compute_time: float
    store_time: float


@dataclass
class TileLevelResult:
    """Outcome of a tile-granularity layer simulation.

    Attributes:
        node: Layer simulated.
        iterations: Number of outer-loop iterations.
        total_latency: Makespan with double buffering.
        pipeline_fill: The unhidden first-load time (the term the bulk
            model ignores).
        bulk_latency: The analytical Eq. 1 latency for comparison.
    """

    node: str
    iterations: int
    total_latency: float
    pipeline_fill: float
    bulk_latency: float


def simulate_conv_tiles(
    model: LatencyModel,
    node: str,
    onchip: frozenset[str] = frozenset(),
) -> TileLevelResult:
    """Simulate one convolution at tile granularity.

    Args:
        model: Latency model supplying geometry and bandwidths.
        node: Name of a conv layer.
        onchip: Tensor values resident on chip (their tiles load in zero
            time from the tensor buffers).

    Raises:
        ValueError: If ``node`` is not a convolution.
    """
    graph = model.graph
    layer = graph.layer(node)
    if not isinstance(layer, Conv2D):
        raise ValueError(f"{node!r} is not a convolution")
    accel = model.accel
    tile = accel.tile
    elem = accel.precision.bytes
    out = graph.output_shape(node)

    n_tm, n_sp_reload = model._conv_reloads(node, layer)
    n_m = tile.output_channel_trips(out.channels)
    n_h = math.ceil(out.height / tile.th)
    n_w = math.ceil(out.width / tile.tw)
    iterations = n_m * n_h * n_w

    if_bw = accel.interface_bandwidth("if")
    wt_bw = accel.interface_bandwidth("wt")
    of_bw = accel.interface_bandwidth("of")

    in_shape = graph.input_shapes(node)[0]
    # Per-iteration tile payloads.  Edge tiles are smaller; model the
    # average so the per-layer totals match the bulk model exactly.
    if_tensor = feature_tensor_name(graph.feature_sources(node)[0])
    wt_tensor = weight_tensor_name(node)
    of_tensor = feature_tensor_name(node)

    total_if_bytes = 0 if if_tensor in onchip else (
        in_shape.volume * elem * n_tm
    )
    total_wt_bytes = 0 if wt_tensor in onchip else (
        layer.weight_shape.volume * elem * n_sp_reload
    )
    total_of_bytes = 0 if of_tensor in onchip else out.volume * elem

    if_tile_time = total_if_bytes / if_bw / iterations
    wt_tile_time = total_wt_bytes / wt_bw / iterations
    of_tile_time = total_of_bytes / of_bw / iterations

    macs = layer.macs(graph.input_shapes(node))
    effective = accel.array.effective_macs(out.channels, layer.in_channels)
    compute_tile_time = macs / (effective * accel.frequency) / iterations

    # Double-buffered three-stage pipeline (load -> compute -> store):
    # iteration k's loads overlap iteration k-1's compute, its store
    # overlaps iteration k+1's compute.  For n items with uniform stage
    # times the makespan is the classic  fill + (n-1)*period + ...  form:
    #   load_1 + compute_1..n pipelined + store_n
    load = max(if_tile_time, wt_tile_time)
    period = max(load, compute_tile_time, of_tile_time)
    fill = load
    if iterations == 0:
        total = 0.0
    else:
        total = load + compute_tile_time + of_tile_time + (iterations - 1) * period

    bulk = model.layer(node).latency(onchip)
    return TileLevelResult(
        node=node,
        iterations=iterations,
        total_latency=total,
        pipeline_fill=fill,
        bulk_latency=bulk,
    )


def simulate_network_tiles(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
) -> dict[str, TileLevelResult]:
    """Tile-simulate every convolution of the network.

    Non-conv layers keep their bulk latencies (they are single-tile ops).
    """
    results = {}
    for node in model.nodes():
        if isinstance(model.graph.layer(node), Conv2D):
            results[node] = simulate_conv_tiles(model, node, onchip)
    return results


def network_tile_latency(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
) -> float:
    """End-to-end latency with conv layers at tile granularity."""
    tile_results = simulate_network_tiles(model, onchip)
    total = 0.0
    for node in model.nodes():
        if node in tile_results:
            total += tile_results[node].total_latency
        else:
            total += model.layer(node).latency(onchip)
    return total

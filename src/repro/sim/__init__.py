"""Event-driven schedule simulator.

The analytical model (Eq. 1) assumes every transfer overlaps perfectly
with its own node's compute and that weight prefetches never contend with
demand traffic.  The simulator drops both assumptions: it plays the
schedule against explicit interface channels, serialises prefetch loads
with demand weight streams on the weight interface, and stalls a node
whose prefetched weights are not resident yet.  Its totals validate the
analytical model (tests assert they agree within the contention margin).
"""

from repro.sim.events import EventKind, TimelineEvent
from repro.sim.schedule import (
    TransferRecord,
    TransferTimeline,
    demand_bytes,
    schedule_transfers,
)
from repro.sim.simulator import SimulationResult, simulate

__all__ = [
    "EventKind",
    "TimelineEvent",
    "SimulationResult",
    "simulate",
    "TransferRecord",
    "TransferTimeline",
    "demand_bytes",
    "schedule_transfers",
]

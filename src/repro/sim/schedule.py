"""DMA transfer scheduling against the three-channel bandwidth model.

The analytic Eq.-1 timeline is *bulk-synchronous*: node ``i``'s
transfers overlap node ``i``'s own compute (double buffering) and
nothing else, so each node contributes
``max(compute, if-sum, wt-sum, of-sum)`` to the total.  The accelerator
can do better — its load channels are idle whenever the predecessor
node is compute-bound, and the ping-pong tile buffers already let a
load for node ``i`` land while node ``i-1`` computes.  This module
schedules every individual transfer explicitly (SoMa-style):

* each DDR interface (if / wt / of) is a **channel** that moves one
  stream at a time at its modelled bandwidth — contention-aware
  slotting by construction,
* node ``i``'s **loads** (ifmap + weight streams) may start as early as
  node ``i-1``'s compute start — a one-deep **double-buffered prefetch
  window**, exactly the depth the ping-pong tile buffers provide,
* node ``i``'s **stores** start once its compute starts, and
* node ``i``'s compute starts when node ``i-1`` finishes (the array is
  sequential) and finishes ``compute`` seconds later; the node is done
  when its compute *and* all of its streams are.

Guarantees (property-tested in ``tests/test_sim_schedule.py``):

* **Conservation** — scheduled records move exactly the demand bytes of
  the allocation (:func:`demand_bytes`): nothing lost, nothing double
  counted.
* **Capacity** — per channel, records never overlap and never move
  bytes faster than the interface bandwidth.
* **Monotonicity** — the scheduled makespan never exceeds the analytic
  Eq.-1 total for the same allocation.  Sketch: by induction every
  stream of node ``j`` ends by ``e_j`` and ``e_j <= t_j + L_j`` where
  ``L_j`` is the node's analytic latency — loads start no earlier than
  ``t_{j-1}`` but on a channel whose previous occupant ended by
  ``t_j``, so they finish by ``t_j`` + (kind sum) ``<= t_j + L_j``;
  stores start at ``t_j`` and finish by ``t_j`` + (of sum).  Hence the
  makespan is at most ``sum(L_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.tensor import TensorKind
from repro.perf.latency import LatencyModel, Slot

__all__ = [
    "TransferRecord",
    "TransferTimeline",
    "demand_bytes",
    "schedule_transfers",
]

_LOAD_KINDS = (TensorKind.IFMAP, TensorKind.WEIGHT)


@dataclass(frozen=True)
class TransferRecord:
    """One scheduled DMA stream on one channel.

    Attributes:
        node: Node the stream belongs to.
        kind: Channel (if / wt / of).
        tensor: Tensor value moved.
        bytes: Effective DDR bytes moved (0 for a fully resident tensor
            whose slot only pays its unhidden prefetch residual).
        start: Start time in seconds.
        end: End time in seconds (``end - start`` is the slot's
            effective latency, which is ``>= bytes / bandwidth``).
    """

    node: str
    kind: TensorKind
    tensor: str
    bytes: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TransferTimeline:
    """The scheduled transfer timeline of one allocation.

    Attributes:
        records: Every scheduled stream, in schedule order.
        makespan: End-to-end latency of the scheduled execution.
        baseline: The analytic Eq.-1 total for the same allocation —
            ``makespan <= baseline`` always holds.
        node_spans: Per node ``(start, end)`` of its execution window.
    """

    records: tuple[TransferRecord, ...]
    makespan: float
    baseline: float
    node_spans: dict[str, tuple[float, float]]

    @property
    def total_bytes(self) -> int:
        """Bytes moved over all channels (conserved vs the demand)."""
        return sum(r.bytes for r in self.records)

    @property
    def improvement(self) -> float:
        """Seconds saved vs the bulk-synchronous Eq.-1 timeline."""
        return self.baseline - self.makespan

    def node_latencies(self) -> dict[str, float]:
        """Per-node effective latency under the schedule."""
        return {n: end - start for n, (start, end) in self.node_spans.items()}

    def channel_records(self, kind: TensorKind) -> list[TransferRecord]:
        """Records of one channel, in start order."""
        return sorted(
            (r for r in self.records if r.kind is kind), key=lambda r: r.start
        )


def _effective(
    slot: Slot,
    onchip: frozenset[str],
    residuals: dict[str, float] | None,
    fractions: dict[str, float] | None,
) -> tuple[int, float]:
    """(bytes, seconds) a slot actually occupies under an allocation.

    Mirrors :meth:`repro.perf.latency.LayerLatency.slot_latency` exactly
    so the scheduled baseline and the analytic objective agree
    bit-for-bit on what each stream costs.
    """
    if slot.tensor in onchip:
        residual = residuals.get(slot.tensor, 0.0) if residuals else 0.0
        return 0, residual
    if fractions and slot.tensor in fractions:
        keep = 1.0 - fractions[slot.tensor]
        return round(slot.bytes * keep), slot.latency * keep
    return slot.bytes, slot.latency


def demand_bytes(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
    residuals: dict[str, float] | None = None,
    fractions: dict[str, float] | None = None,
) -> int:
    """Total DDR bytes one inference demands under an allocation."""
    return sum(
        _effective(slot, onchip, residuals, fractions)[0]
        for slot in model.slots()
    )


def schedule_transfers(
    model: LatencyModel,
    onchip: frozenset[str] = frozenset(),
    residuals: dict[str, float] | None = None,
    fractions: dict[str, float] | None = None,
) -> TransferTimeline:
    """List-schedule every transfer of an allocation onto its channel.

    Args:
        model: Characterised latency model (fused or plain).
        onchip: Tensor values fully resident on chip.
        residuals: Unhidden prefetch seconds per on-chip weight tensor.
        fractions: Partial residency per tensor.

    Returns:
        The scheduled timeline; ``makespan`` is monotone non-increasing
        vs ``model.total_latency(onchip, residuals, fractions)``.
    """
    free = {TensorKind.IFMAP: 0.0, TensorKind.WEIGHT: 0.0, TensorKind.OFMAP: 0.0}
    records: list[TransferRecord] = []
    node_spans: dict[str, tuple[float, float]] = {}
    t = 0.0  # compute start of the current node
    window = 0.0  # earliest admissible load start (predecessor's start)

    for name in model.nodes():
        ll = model.layer(name)
        end = t + ll.compute
        for slot in ll.slots:
            num_bytes, duration = _effective(slot, onchip, residuals, fractions)
            if num_bytes == 0 and duration == 0.0:
                continue
            earliest = window if slot.kind in _LOAD_KINDS else t
            start = max(free[slot.kind], earliest)
            finish = start + duration
            free[slot.kind] = finish
            records.append(
                TransferRecord(
                    node=name,
                    kind=slot.kind,
                    tensor=slot.tensor,
                    bytes=num_bytes,
                    start=start,
                    end=finish,
                )
            )
            end = max(end, finish)
        node_spans[name] = (t, end)
        window = t
        t = end

    baseline = model.total_latency(onchip, residuals, fractions)
    return TransferTimeline(
        records=tuple(records),
        makespan=t,
        baseline=baseline,
        node_spans=node_spans,
    )

"""Timeline events emitted by the simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventKind(str, enum.Enum):
    """What happened at a timeline event."""

    NODE_START = "node_start"
    NODE_END = "node_end"
    TRANSFER = "transfer"
    PREFETCH_START = "prefetch_start"
    PREFETCH_END = "prefetch_end"
    STALL = "stall"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TimelineEvent:
    """One event on the simulated timeline.

    Attributes:
        time: Simulation time in seconds at which the event occurs.
        kind: Event kind.
        node: The schedule node the event belongs to.
        detail: Free-form annotation (interface name, stall cause...).
        duration: For span-like events (transfers, stalls), the length.
    """

    time: float
    kind: EventKind
    node: str
    detail: str = ""
    duration: float = 0.0

    def __str__(self) -> str:
        span = f" (+{self.duration * 1e6:.1f}us)" if self.duration else ""
        note = f" [{self.detail}]" if self.detail else ""
        return f"{self.time * 1e3:9.4f}ms {self.kind}:{self.node}{note}{span}"

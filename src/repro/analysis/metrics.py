"""Metric helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Iterable

from repro.ir.graph import ComputationGraph


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the fair average for speedup ratios)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def average_speedup(speedups: Iterable[float]) -> float:
    """Arithmetic mean of speedups — how the paper reports its 1.36x."""
    speedups = list(speedups)
    if not speedups:
        raise ValueError("average of empty sequence")
    return sum(speedups) / len(speedups)


def block_throughput(
    graph: ComputationGraph,
    node_latencies: dict[str, float],
    block: str,
) -> float:
    """Ops/second achieved within one named block (Fig. 8's y-axis).

    Args:
        graph: The model, with block tags.
        node_latencies: Per executed node latency of the design under test.
        block: Block name (e.g. ``"inception_4a"``).

    Raises:
        KeyError: If the block is unknown.
    """
    try:
        members = graph.blocks[block]
    except KeyError:
        raise KeyError(f"unknown block {block!r} in {graph.name!r}") from None
    total_ops = 0
    total_time = 0.0
    for name in members:
        if name not in node_latencies:
            continue  # concat nodes take no execution step
        layer = graph.layer(name)
        total_ops += 2 * layer.macs(graph.input_shapes(name))
        total_time += node_latencies[name]
    if total_time <= 0:
        raise ValueError(f"block {block!r} has no executed latency")
    return total_ops / total_time

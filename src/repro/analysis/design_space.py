"""The per-block allocation design space of Fig. 2(b).

Inception-v4 has 14 inception blocks; choosing on- or off-chip storage for
each block's tensors independently spans 2^14 = 16384 allocations.  The
paper plots every point as (on-chip memory consumption, performance) to
show that *more memory does not mean more performance* — motivation for an
allocator smarter than "pin everything that fits".

Enumerating 16384 full-model latencies naively is slow, so the evaluator
exploits structure: a node's latency depends only on the block membership
of its own few tensors, so each node contributes a small lookup table from
its local block-choice bits to a latency, and a full point is a sum of
table lookups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.layer import OpType
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


@dataclass(frozen=True)
class DesignSpacePoint:
    """One allocation choice of Fig. 2(b).

    Attributes:
        chosen_blocks: Names of blocks whose tensors live on chip.
        onchip_bytes: Total size of the pinned tensors (no sharing — this
            axis deliberately shows raw demand, as the paper's does, which
            is why it extends far beyond the device's 40 MB).
        latency: End-to-end latency in seconds.
        tops: Achieved performance.
    """

    chosen_blocks: tuple[str, ...]
    onchip_bytes: int
    latency: float
    tops: float


class DesignSpaceEnumerator:
    """Fast enumerator over per-block on/off-chip choices.

    Args:
        graph: Model with block tags (Inception-v4 for the paper's figure).
        accel: Design point to evaluate under.
        blocks: Block names forming the choice axis; defaults to all
            blocks whose name starts with ``"inception"``.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        accel: AcceleratorConfig,
        blocks: tuple[str, ...] | None = None,
    ) -> None:
        self.graph = graph
        self.accel = accel
        self.model = LatencyModel(graph, accel)
        if blocks is None:
            blocks = tuple(b for b in graph.blocks if b.startswith("inception"))
        if not blocks:
            raise ValueError(f"graph {graph.name!r} has no selectable blocks")
        self.blocks = blocks
        self._block_index = {b: i for i, b in enumerate(blocks)}

        # Tensor -> block bit, for tensors owned by a selectable block.
        # Features belong to their producer's block, weights to their
        # consumer's block.
        self._tensor_bit: dict[str, int] = {}
        self._block_bytes = [0] * len(blocks)
        elem = accel.precision.bytes
        for t in graph.feature_tensors():
            block = graph.block_of(t.producer)
            if block in self._block_index:
                bit = self._block_index[block]
                self._tensor_bit[t.name] = bit
                self._block_bytes[bit] += t.bytes(elem)
        for t in graph.weight_tensors():
            block = graph.block_of(t.node)
            if block in self._block_index:
                bit = self._block_index[block]
                self._tensor_bit[t.name] = bit
                self._block_bytes[bit] += t.bytes(elem)

        # Per node: lookup table from local block-choice bits to latency.
        self._node_tables: list[tuple[tuple[int, ...], dict[int, float]]] = []
        self._fixed_latency = 0.0
        for name in self.model.nodes():
            ll = self.model.layer(name)
            bits = sorted(
                {
                    self._tensor_bit[s.tensor]
                    for s in ll.slots
                    if s.tensor in self._tensor_bit
                }
            )
            if not bits:
                self._fixed_latency += ll.latency()
                continue
            table: dict[int, float] = {}
            for combo in itertools.product((False, True), repeat=len(bits)):
                chosen = {b for b, on in zip(bits, combo) if on}
                onchip = frozenset(
                    s.tensor
                    for s in ll.slots
                    if self._tensor_bit.get(s.tensor) in chosen
                )
                key = sum(1 << i for i, on in enumerate(combo) if on)
                table[key] = ll.latency(onchip)
            self._node_tables.append((tuple(bits), table))

        self._total_ops = 2 * sum(
            self.model.layer(n).macs for n in self.model.nodes()
        )

    def evaluate(self, mask: int) -> DesignSpacePoint:
        """Evaluate one subset of blocks given as a bitmask."""
        latency = self._fixed_latency
        for bits, table in self._node_tables:
            key = 0
            for i, b in enumerate(bits):
                if mask >> b & 1:
                    key |= 1 << i
            latency += table[key]
        onchip_bytes = sum(
            self._block_bytes[b] for b in range(len(self.blocks)) if mask >> b & 1
        )
        chosen = tuple(b for b in self.blocks if mask >> self._block_index[b] & 1)
        return DesignSpacePoint(
            chosen_blocks=chosen,
            onchip_bytes=onchip_bytes,
            latency=latency,
            tops=self._total_ops / latency / 1e12,
        )

    def enumerate(self, stride: int = 1) -> list[DesignSpacePoint]:
        """Evaluate every ``stride``-th point of the 2^B design space."""
        if stride < 1:
            raise ValueError("stride must be at least 1")
        return [
            self.evaluate(mask) for mask in range(0, 1 << len(self.blocks), stride)
        ]


def enumerate_design_space(
    graph: ComputationGraph,
    accel: AcceleratorConfig,
    blocks: tuple[str, ...] | None = None,
    stride: int = 1,
) -> list[DesignSpacePoint]:
    """Convenience wrapper: enumerate the Fig. 2(b) design space."""
    return DesignSpaceEnumerator(graph, accel, blocks).enumerate(stride)

"""One-shot markdown report of every reproduced experiment.

``lcmm report`` regenerates a self-contained markdown document — the live
counterpart of EXPERIMENTS.md — by running every table and figure driver
and rendering the results.  Useful for checking a modified model or
device description against the full evaluation in one command.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.experiments import (
    run_fig2a,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.analysis.metrics import average_speedup
from repro.analysis.report import format_markdown_table


def generate_report() -> str:
    """Run every experiment driver and render a markdown report."""
    sections = ["# LCMM reproduction — live experiment report", ""]

    # Table 1.
    rows = run_table1()
    sections.append("## Table 1 — UMM vs LCMM")
    sections.append("")
    sections.append(
        format_markdown_table(
            ("Benchmark", "Precision", "Design", "Latency (ms)", "Tops", "Speedup"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.latency_ms:.3f}",
                    f"{r.tops:.3f}",
                    f"{r.speedup:.2f}",
                )
                for r in rows
            ],
        )
    )
    avg = average_speedup([r.speedup for r in rows if r.design == "LCMM"])
    sections.append("")
    sections.append(f"Average speedup: **{avg:.2f}x** (paper: 1.36x)")
    sections.append("")

    # Table 2.
    sections.append("## Table 2 — on-chip memory utilisation")
    sections.append("")
    sections.append(
        format_markdown_table(
            ("Benchmark", "Precision", "Design", "BRAM", "URAM", "POL"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.bram_utilization:.0%}",
                    f"{r.uram_utilization:.0%}",
                    f"{r.percentage_onchip_layers:.0%}",
                )
                for r in run_table2()
            ],
        )
    )
    sections.append("")

    # Table 3.
    sections.append("## Table 3 — state-of-the-art comparison")
    sections.append("")
    sections.append(
        format_markdown_table(
            ("Design", "Model", "Tops", "Latency/Image (ms)", "Source"),
            [
                (
                    r.design,
                    r.dnn_model,
                    f"{r.throughput_tops:.3f}",
                    f"{r.latency_ms:.2f}",
                    "published" if r.published else "measured",
                )
                for r in run_table3()
            ],
        )
    )
    sections.append("")

    # Fig. 2(a).
    roofline = run_fig2a()
    bound, total = roofline.memory_bound_count(convs_only=True)
    sections.append("## Fig. 2(a) — Inception-v4 roofline")
    sections.append("")
    sections.append(
        f"Memory-bound conv layers: **{bound}/{total}** ({bound / total:.0%}; "
        f"paper: 82/141 = 58%).  Ridge point: {roofline.ridge_point():.0f} ops/byte."
    )
    sections.append("")

    # Fig. 8.
    series = run_fig8()
    blocks = series[0].blocks
    sections.append("## Fig. 8 — GoogLeNet 16-bit per-block breakdown (Tops)")
    sections.append("")
    sections.append(
        format_markdown_table(
            ("Design",) + tuple(b.replace("inception_", "") for b in blocks),
            [(s.label,) + tuple(f"{v:.2f}" for v in s.tops) for s in series],
        )
    )
    sections.append("")
    return "\n".join(sections)


def write_report(path: str | Path) -> Path:
    """Generate the report and write it to ``path``."""
    target = Path(path)
    target.write_text(generate_report())
    return target

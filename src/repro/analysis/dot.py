"""Graphviz DOT export of the framework's graph structures.

Three views, matching the paper's figures: the computation graph
(Fig. 3(a)), the feature interference graph (Fig. 5(a)) and the
prefetching dependence graph (Fig. 6).  Output is plain DOT text — render
with ``dot -Tpdf`` wherever graphviz is available; the generator itself
has no dependencies.
"""

from __future__ import annotations

from repro.ir.graph import ComputationGraph
from repro.ir.layer import OpType
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.prefetch import PrefetchResult

#: Fill colours per op type for the computation-graph view.
_OP_COLORS = {
    OpType.INPUT: "lightblue",
    OpType.CONV: "white",
    OpType.POOL: "lightgrey",
    OpType.FC: "lightyellow",
    OpType.ELTWISE: "lightpink",
    OpType.CONCAT: "lightgreen",
    OpType.GEMM: "lightyellow",
    OpType.ATTENTION: "lightsalmon",
    OpType.NORM: "lavender",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def computation_graph_dot(
    graph: ComputationGraph, highlight: frozenset[str] = frozenset()
) -> str:
    """DOT of the computation graph; ``highlight`` marks nodes bold.

    Args:
        graph: The network.
        highlight: Node names to emphasise (e.g. the memory-bound set).
    """
    lines = [f"digraph {_quote(graph.name)} {{", "  rankdir=TB;"]
    for layer in graph.layers():
        color = _OP_COLORS.get(layer.op_type, "white")
        attrs = [f'fillcolor="{color}"', "style=filled"]
        if layer.name in highlight:
            attrs.append("penwidth=3")
        lines.append(f"  {_quote(layer.name)} [{', '.join(attrs)}];")
    for layer in graph.layers():
        for src in layer.inputs:
            lines.append(f"  {_quote(src)} -> {_quote(layer.name)};")
    lines.append("}")
    return "\n".join(lines)


def interference_graph_dot(graph: InterferenceGraph) -> str:
    """DOT of an interference graph; false edges render dashed."""
    lines = ["graph interference {", "  layout=circo;"]
    for name, tensor in graph.tensors.items():
        label = f"{name}\\n{tensor.size_bytes / 1024:.0f} KB {tensor.live_range}"
        lines.append(f'  {_quote(name)} [label="{label}"];')
    emitted: set[frozenset[str]] = set()
    false_edges = graph.false_edges()
    for name in graph.tensors:
        for other in sorted(graph.neighbors(name)):
            key = frozenset((name, other))
            if key in emitted:
                continue
            emitted.add(key)
            style = ' [style=dashed, label="false"]' if key in false_edges else ""
            lines.append(f"  {_quote(name)} -- {_quote(other)}{style};")
    lines.append("}")
    return "\n".join(lines)


def prefetch_graph_dot(result: PrefetchResult) -> str:
    """DOT of the prefetching dependence graph (Fig. 6)."""
    lines = ["digraph pdg {", "  rankdir=LR;"]
    for edge in result.edges.values():
        state = "hidden" if edge.fully_hidden else f"+{edge.residual * 1e6:.0f}us"
        lines.append(
            f"  {_quote(edge.start)} -> {_quote(edge.node)} "
            f'[label="w:{edge.node} ({state})", style=dotted];'
        )
    lines.append("}")
    return "\n".join(lines)

"""Experiment drivers and reporting.

Everything needed to regenerate the paper's tables and figures: the
reference design points (calibrated against Tab. 1's published numbers),
per-experiment drivers, metric helpers and plain-text/markdown table
rendering.
"""

from repro.analysis.experiments import (
    BENCHMARKS,
    PRECISIONS,
    DesignComparison,
    reference_design,
    run_comparison,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.analysis.design_space import DesignSpacePoint, enumerate_design_space
from repro.analysis.metrics import average_speedup, block_throughput, geomean
from repro.analysis.report import format_markdown_table, format_table
from repro.analysis.dot import (
    computation_graph_dot,
    interference_graph_dot,
    prefetch_graph_dot,
)
from repro.analysis.plots import (
    bar_chart,
    footprint_timeline,
    roofline_scatter,
    simulation_gantt,
)

__all__ = [
    "BENCHMARKS",
    "PRECISIONS",
    "DesignComparison",
    "reference_design",
    "run_comparison",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig8",
    "DesignSpacePoint",
    "enumerate_design_space",
    "average_speedup",
    "block_throughput",
    "geomean",
    "format_table",
    "format_markdown_table",
    "computation_graph_dot",
    "interference_graph_dot",
    "prefetch_graph_dot",
    "roofline_scatter",
    "bar_chart",
    "footprint_timeline",
    "simulation_gantt",
]

"""Plain-text and markdown table rendering for experiment output."""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column titles.
        rows: Row tuples; floats are rendered with three decimals.
    """
    str_rows = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)

"""Terminal-friendly renderings of the paper's figures.

Pure-text plotting (no matplotlib in the offline environment): a log-x
roofline scatter (Fig. 2(a)), horizontal bar charts (Fig. 8), the on-chip
memory footprint timeline (Fig. 3(c)) and a Gantt view of the simulator's
event stream.  All functions return strings, so they compose with the CLI
and are trivially testable.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.lcmm.framework import LCMMResult
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.sim.events import EventKind
from repro.sim.simulator import SimulationResult


def roofline_scatter(
    roofline: RooflineModel,
    width: int = 72,
    height: int = 18,
    convs_only: bool = True,
) -> str:
    """ASCII roofline: attainable performance vs operation intensity.

    Memory-bound layers render as ``m``, compute-bound as ``c``, the
    ridge point as a vertical bar.
    """
    points = roofline.points(convs_only=convs_only)
    if not points:
        raise ValueError("no layers to plot")
    ois = [p.operation_intensity for p in points]
    lo, hi = math.log10(min(ois)), math.log10(max(ois))
    if hi <= lo:
        hi = lo + 1.0
    peak = roofline.compute_roof
    grid = [[" "] * width for _ in range(height)]
    for p in points:
        x = int((math.log10(p.operation_intensity) - lo) / (hi - lo) * (width - 1))
        y = int((1.0 - p.attainable_ops / peak) * (height - 1))
        grid[y][x] = "m" if p.memory_bound else "c"
    ridge = roofline.ridge_point()
    if min(ois) <= ridge <= max(ois):
        rx = int((math.log10(ridge) - lo) / (hi - lo) * (width - 1))
        for y in range(height):
            if grid[y][rx] == " ":
                grid[y][rx] = "|"
    header = (
        f"peak {peak / 1e12:.2f} Tops | ridge {ridge:.0f} ops/B | "
        "m=memory bound, c=compute bound"
    )
    return header + "\n" + "\n".join("".join(row) for row in grid)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned labels."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        raise ValueError("values must contain a positive entry")
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label:>{label_width}} {value:8.3f}{unit} |{bar}")
    return "\n".join(lines)


def footprint_timeline(result: LCMMResult, max_steps: int | None = None) -> str:
    """On-chip residency per schedule step (the Fig. 3(c) view).

    One row per executed node; one column per physical buffer; ``#``
    marks the buffer holding a live tensor at that step.
    """
    buffers = result.physical_buffers
    if not buffers:
        return "(no on-chip buffers allocated)"
    candidates = {
        c.name: c
        for c in result.feature_result.candidates + result.prefetch_result.candidates
    }
    schedule = list(result.node_latencies)
    if max_steps is not None:
        schedule = schedule[:max_steps]
    name_width = max(len(n) for n in schedule)
    header = " " * (name_width + 1) + " ".join(
        f"{b.name:>6}" for b in buffers
    )
    lines = [header]
    for step, node in enumerate(schedule):
        cells = []
        for pbuf in buffers:
            live = any(
                candidates[t].live_range.start <= step <= candidates[t].live_range.end
                for t in pbuf.tensor_names
                if t in candidates
            )
            cells.append(f"{'#' if live else '.':>6}")
        lines.append(f"{node:>{name_width}} " + " ".join(cells))
    return "\n".join(lines)


def simulation_gantt(
    sim: SimulationResult,
    width: int = 64,
    max_rows: int = 40,
) -> str:
    """Gantt chart of node execution spans with prefetch/stall markers."""
    if not sim.node_start:
        raise ValueError("empty simulation")
    total = sim.total_latency
    rows = []
    prefetch_spans: dict[str, tuple[float, float]] = {}
    starts: dict[str, float] = {}
    for event in sim.events:
        if event.kind is EventKind.PREFETCH_START:
            starts[event.node] = event.time
        elif event.kind is EventKind.PREFETCH_END and event.node in starts:
            prefetch_spans[event.node] = (starts[event.node], event.time)
    name_width = max(len(n) for n in sim.node_start)
    for node in list(sim.node_start)[:max_rows]:
        begin = int(sim.node_start[node] / total * (width - 1))
        end = max(begin + 1, int(sim.node_end[node] / total * (width - 1)))
        row = [" "] * width
        for x in range(begin, min(end, width)):
            row[x] = "="
        if node in prefetch_spans:
            p0, p1 = prefetch_spans[node]
            for x in range(int(p0 / total * (width - 1)), int(p1 / total * (width - 1)) + 1):
                if 0 <= x < width and row[x] == " ":
                    row[x] = "~"
        rows.append(f"{node:>{name_width}} |{''.join(row)}|")
    legend = "= execution, ~ weight prefetch in flight"
    return "\n".join(rows) + f"\n{legend}"

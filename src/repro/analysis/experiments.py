"""Reference design points and the Table 1/2/3 + Fig. 8 drivers.

The paper evaluates nine design points — {ResNet-152, GoogLeNet,
Inception-v4} x {8, 16, 32 bit} — each an independently synthesized
accelerator pair (UMM baseline and LCMM design).  This module pins the
reproduction's reference configuration:

* arrays sized to the paper's DSP utilisation (83 % for RN/GN, 75 % for
  IN, Tab. 1), with the fp32 array one fifth the MACs (5 DSP/MAC);
* clocks straight from Tab. 1 (UMM 190 MHz vs LCMM 180 MHz fixed point;
  170/160 MHz floating point) — LCMM's extra buffering closes timing
  slightly lower;
* tile shapes tied to the array geometry, with per-layer input/weight
  residency capped at 64 KB / 128 KB (the loop-order freedom [18]'s DSE
  has) and 80 % sustained DDR efficiency.

The residency caps and DDR efficiency were calibrated once against the
published Tab. 1 numbers and are never tuned per experiment; see
EXPERIMENTS.md for the paper-vs-measured deltas this yields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hw.precision import FP32, INT8, INT16, Precision
from repro.ir.graph import ComputationGraph
from repro.lcmm.framework import LCMMOptions, LCMMResult, run_lcmm
from repro.lcmm.passes import pipeline_from_names
from repro.lcmm.umm import UMMResult, run_umm
from repro.models.zoo import get_model, list_models
from repro.perf.latency import LatencyModel
from repro.perf.roofline import RooflineModel
from repro.perf.systolic import AcceleratorConfig, SystolicArray
from repro.perf.tiling import TileConfig
from repro.analysis.metrics import block_throughput

#: The paper's benchmark suite (Sec. 4): ResNet-152, GoogLeNet, Inception-v4.
BENCHMARKS = ("resnet152", "googlenet", "inception_v4")

#: The evaluated precisions, in Tab. 1 order.
PRECISIONS = (INT8, INT16, FP32)

#: Sustained fraction of theoretical DDR4 bandwidth (calibrated).
REFERENCE_DDR_EFFICIENCY = 0.8

#: Per-layer input-residency buffer (see AcceleratorConfig), calibrated.
REFERENCE_IF_RESIDENT_CAP = 64 * 1024

#: Per-layer weight-residency buffer, calibrated.
REFERENCE_WT_RESIDENT_CAP = 128 * 1024

#: Clock frequencies from Tab. 1, Hz: (UMM, LCMM) per precision name.
REFERENCE_FREQUENCIES = {
    "int8": (190e6, 180e6),
    "int16": (190e6, 180e6),
    "fp32": (170e6, 160e6),
}

#: Fixed-point arrays: 5632 MACs = 83 % of the VU9P's 6840 DSPs for RN/GN,
#: 5120 MACs = 75 % for IN (Tab. 1 reports 75 % DSP for Inception-v4).
_FIXED_ARRAYS = {
    "resnet152": SystolicArray(rows=32, cols=16, simd=11),
    "googlenet": SystolicArray(rows=32, cols=16, simd=11),
    "inception_v4": SystolicArray(rows=32, cols=16, simd=10),
}

#: Floating-point array: 1024 MACs x 5 DSP/MAC = 5120 DSPs (75 %).
_FP32_ARRAY = SystolicArray(rows=16, cols=8, simd=8)

#: Tile shapes tied to the array geometry per precision.
_TILES = {
    "int8": TileConfig(tm=32, tn=32, th=14, tw=14),
    "int16": TileConfig(tm=32, tn=32, th=14, tw=14),
    "fp32": TileConfig(tm=16, tn=16, th=7, tw=7),
}


def reference_design(
    model_name: str, precision: Precision, style: str
) -> AcceleratorConfig:
    """The calibrated design point for one (model, precision, style).

    Args:
        model_name: One of :data:`BENCHMARKS` (aliases accepted elsewhere;
            here the canonical name is required).
        precision: int8 / int16 / fp32.
        style: ``"umm"`` or ``"lcmm"`` — selects the achieved clock.

    Raises:
        KeyError: On unknown model or precision.
        ValueError: On unknown style.
    """
    if style not in ("umm", "lcmm"):
        raise ValueError(f"style must be 'umm' or 'lcmm', got {style!r}")
    if model_name not in _FIXED_ARRAYS:
        raise KeyError(f"unknown benchmark {model_name!r}; known: {BENCHMARKS}")
    freq_umm, freq_lcmm = REFERENCE_FREQUENCIES[precision.name]
    array = _FP32_ARRAY if precision is FP32 else _FIXED_ARRAYS[model_name]
    return AcceleratorConfig(
        name=f"{style}-{model_name}-{precision.name}",
        precision=precision,
        array=array,
        tile=_TILES[precision.name],
        frequency=freq_umm if style == "umm" else freq_lcmm,
        ddr_efficiency=REFERENCE_DDR_EFFICIENCY,
        if_resident_cap=REFERENCE_IF_RESIDENT_CAP,
        wt_resident_cap=REFERENCE_WT_RESIDENT_CAP,
    )


@dataclass
class DesignComparison:
    """One row pair of Tab. 1: a UMM baseline against its LCMM design.

    Attributes:
        model_name: Benchmark name.
        precision: Arithmetic precision.
        umm: Baseline result.
        lcmm: LCMM result.
        umm_model: Latency model of the baseline design point.
        lcmm_model: Latency model of the LCMM design point.
    """

    model_name: str
    precision: Precision
    umm: UMMResult
    lcmm: LCMMResult
    umm_model: LatencyModel
    lcmm_model: LatencyModel

    @property
    def speedup(self) -> float:
        """UMM latency over LCMM latency — Tab. 1's rightmost column."""
        return self.umm.latency / self.lcmm.latency

    @property
    def graph(self) -> ComputationGraph:
        """The evaluated computation graph."""
        return self.umm_model.graph


def run_comparison(
    model_name: str,
    precision: Precision,
    options: LCMMOptions | None = None,
    graph: ComputationGraph | None = None,
    strict: bool = False,
    fallback: bool = True,
    cache=None,
) -> DesignComparison:
    """Evaluate one benchmark at one precision under UMM and LCMM.

    ``strict``, ``fallback`` and ``cache`` are forwarded to
    :func:`~repro.lcmm.framework.run_lcmm` (invariant checking after each
    pass, the degradation chain on pipeline failure, and the optional
    content-addressed compilation cache).

    Models outside :data:`BENCHMARKS` (the rest of the CNN zoo and the
    transformers) evaluate on the resnet152 reference design — the same
    convention as the golden-fingerprint suite.
    """
    graph = graph or get_model(model_name)
    design_key = model_name if model_name in BENCHMARKS else "resnet152"
    accel_umm = reference_design(design_key, precision, "umm")
    accel_lcmm = reference_design(design_key, precision, "lcmm")
    umm_model = LatencyModel(graph, accel_umm)
    lcmm_model = LatencyModel(graph, accel_lcmm)
    umm = run_umm(graph, accel_umm, umm_model)
    lcmm = run_lcmm(
        graph,
        accel_lcmm,
        options=options,
        model=lcmm_model,
        strict=strict,
        fallback=fallback,
        cache=cache,
    )
    return DesignComparison(
        model_name=model_name,
        precision=precision,
        umm=umm,
        lcmm=lcmm,
        umm_model=umm_model,
        lcmm_model=lcmm_model,
    )


@dataclass(frozen=True)
class Table1Row:
    """One design row of Tab. 1."""

    benchmark: str
    precision: str
    design: str
    latency_ms: float
    tops: float
    frequency_mhz: float
    dsp_utilization: float
    sram_utilization: float
    speedup: float


def run_table1(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    precisions: tuple[Precision, ...] = PRECISIONS,
) -> list[Table1Row]:
    """Regenerate Tab. 1: UMM vs LCMM across the benchmark matrix."""
    rows = []
    for model_name in benchmarks:
        graph = get_model(model_name)
        for precision in precisions:
            cmp = run_comparison(model_name, precision, graph=graph)
            speedup = cmp.speedup
            rows.append(
                Table1Row(
                    benchmark=model_name,
                    precision=precision.name,
                    design="UMM",
                    latency_ms=cmp.umm.latency * 1e3,
                    tops=cmp.umm.tops,
                    frequency_mhz=cmp.umm.accel.frequency / 1e6,
                    dsp_utilization=cmp.umm.accel.dsp_utilization,
                    sram_utilization=cmp.umm.sram_utilization,
                    speedup=speedup,
                )
            )
            rows.append(
                Table1Row(
                    benchmark=model_name,
                    precision=precision.name,
                    design="LCMM",
                    latency_ms=cmp.lcmm.latency * 1e3,
                    tops=cmp.lcmm.tops,
                    frequency_mhz=cmp.lcmm.accel.frequency / 1e6,
                    dsp_utilization=cmp.lcmm.accel.dsp_utilization,
                    sram_utilization=cmp.lcmm.sram_utilization,
                    speedup=speedup,
                )
            )
    return rows


@dataclass(frozen=True)
class Table2Row:
    """One design row of Tab. 2: on-chip memory utilisation + POL."""

    benchmark: str
    precision: str
    design: str
    bram_utilization: float
    uram_utilization: float
    percentage_onchip_layers: float


def run_table2(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    precisions: tuple[Precision, ...] = PRECISIONS,
) -> list[Table2Row]:
    """Regenerate Tab. 2: BRAM/URAM utilisation and the POL metric."""
    rows = []
    for model_name in benchmarks:
        graph = get_model(model_name)
        for precision in precisions:
            cmp = run_comparison(model_name, precision, graph=graph)
            pol = cmp.lcmm.percentage_onchip_layers(cmp.lcmm_model)
            umm_usage = cmp.umm.sram_used_bytes
            bram_total = cmp.umm.accel.device.sram.bram_bytes
            rows.append(
                Table2Row(
                    benchmark=model_name,
                    precision=precision.name,
                    design="UMM",
                    bram_utilization=min(1.0, umm_usage / bram_total),
                    uram_utilization=0.0,
                    percentage_onchip_layers=pol,
                )
            )
            rows.append(
                Table2Row(
                    benchmark=model_name,
                    precision=precision.name,
                    design="LCMM",
                    bram_utilization=cmp.lcmm.sram_usage.bram_utilization,
                    uram_utilization=cmp.lcmm.sram_usage.uram_utilization,
                    percentage_onchip_layers=pol,
                )
            )
    return rows


#: Published Table 3 comparison points (quoted constants, 16-bit designs).
TABLE3_PUBLISHED = (
    {
        "design": "Cloud-DNN [3]",
        "dnn_model": "resnet50",
        "frequency_mhz": 214.0,
        "dsp": 5489,
        "throughput_tops": 1.235,
        "latency_ms": 8.12,
    },
    {
        "design": "TGPA [17]",
        "dnn_model": "resnet152",
        "frequency_mhz": 200.0,
        "dsp": 4096,
        "throughput_tops": 1.463,
        "latency_ms": 17.34,
    },
)


@dataclass(frozen=True)
class Table3Row:
    """One column of Tab. 3: a design compared on a ResNet."""

    design: str
    dnn_model: str
    frequency_mhz: float
    throughput_tops: float
    latency_ms: float
    published: bool


def run_table3() -> list[Table3Row]:
    """Regenerate Tab. 3: ours (16-bit LCMM) vs published state of the art.

    ResNet-50 is compared against Cloud-DNN [3] and ResNet-152 against
    TGPA [17]; the competitor numbers are the published constants, exactly
    as in the paper.
    """
    rows = []
    for published in TABLE3_PUBLISHED:
        rows.append(Table3Row(
            design=published["design"],
            dnn_model=published["dnn_model"],
            frequency_mhz=published["frequency_mhz"],
            throughput_tops=published["throughput_tops"],
            latency_ms=published["latency_ms"],
            published=True,
        ))
        model_name = published["dnn_model"]
        graph = get_model(model_name)
        # Table 3 compares the ResNet-152 arrays; reuse that design family
        # for ResNet-50 as well (same array, same clocks).
        accel = reference_design("resnet152", INT16, "lcmm")
        lcmm_model = LatencyModel(graph, accel)
        lcmm = run_lcmm(graph, accel, model=lcmm_model)
        rows.append(Table3Row(
            design="Ours (LCMM)",
            dnn_model=model_name,
            frequency_mhz=accel.frequency / 1e6,
            throughput_tops=lcmm.tops,
            latency_ms=lcmm.latency * 1e3,
            published=False,
        ))
    return rows


@dataclass(frozen=True)
class Fig8Series:
    """Per-inception-block throughput of one design (one Fig. 8 bar set)."""

    label: str
    blocks: tuple[str, ...]
    tops: tuple[float, ...]


#: Fig. 8 ablations as pass pipelines: dropping a technique is dropping
#: its pass, not flipping a flag — every variant still ends in the same
#: allocate/score/placement tail.  ``None`` marks the UMM baseline.
FIG8_PIPELINES: dict[str, tuple[str, ...] | None] = {
    "UMM": None,
    "LCMM (feature reuse)": (
        "feature_reuse", "allocate_splitting", "score", "placement",
    ),
    "LCMM (weight prefetching)": (
        "weight_prefetch", "allocate_splitting", "score", "placement",
    ),
    "LCMM": (
        "feature_reuse", "weight_prefetch", "allocate_splitting", "score",
        "placement",
    ),
    "LCMM (fused)": (
        "feature_reuse", "weight_prefetch", "allocate_splitting", "score",
        "fuse_layers", "placement",
    ),
    "LCMM (fused+scheduled)": (
        "feature_reuse", "weight_prefetch", "allocate_splitting", "score",
        "fuse_layers", "placement", "transfer_schedule",
    ),
}


def run_fig8(precision: Precision = INT16) -> list[Fig8Series]:
    """Regenerate Fig. 8: GoogLeNet per-block analysis at 16-bit.

    Four series: the UMM baseline, LCMM with feature reuse only (8a),
    LCMM with weight prefetching only (8b), and full LCMM (8c) — each
    LCMM variant an explicit pass pipeline from :data:`FIG8_PIPELINES`.
    """
    graph = get_model("googlenet")
    blocks = tuple(b for b in graph.blocks if b.startswith("inception"))
    accel_umm = reference_design("googlenet", precision, "umm")
    umm_model = LatencyModel(graph, accel_umm)
    umm = run_umm(graph, accel_umm, umm_model)

    accel_lcmm = reference_design("googlenet", precision, "lcmm")
    lcmm_model = LatencyModel(graph, accel_lcmm)

    series = []
    for label, pass_names in FIG8_PIPELINES.items():
        if pass_names is None:
            latencies = umm.node_latencies
        else:
            latencies = run_lcmm(
                graph,
                accel_lcmm,
                model=lcmm_model,
                pipeline=pipeline_from_names(pass_names),
            ).node_latencies
        tops = tuple(
            block_throughput(graph, latencies, b) / 1e12 for b in blocks
        )
        series.append(Fig8Series(label=label, blocks=blocks, tops=tops))
    return series


#: Tensor-residency budget headroom beyond the tile buffers for the
#: fusion ablation (bytes).  Small enough that the constrained design
#: cannot simply pin every intermediate on chip.
FUSION_ABLATION_SRAM_HEADROOM = 2 * 1024 * 1024


def fusion_ablation_design(
    precision: Precision = INT8, style: str = "lcmm"
) -> AcceleratorConfig:
    """Bandwidth-constrained design point for the fusion ablation.

    On the calibrated reference designs plain LCMM already reaches the
    compute bound for most of the zoo (enough SRAM to pin everything),
    so layer fusion has nothing left to elide.  The ablation therefore
    halves the sustained DDR efficiency and caps the tensor-residency
    budget (see :data:`FUSION_ABLATION_SRAM_HEADROOM`), recreating the
    transfer-bound regime fusion targets while leaving the compute
    model untouched.
    """
    base = reference_design("resnet152", precision, style)
    return replace(
        base,
        name=f"fusion-ablation-{style}-{precision.name}",
        ddr_efficiency=base.ddr_efficiency * 0.5,
    )


@dataclass(frozen=True)
class FusionAblationRow:
    """One zoo model's fusion ablation: UMM vs plain vs fused vs scheduled.

    Latencies in milliseconds on the bandwidth-constrained design; the
    ``improvement`` column is the fractional Eq.-1 gain of the
    fused+scheduled pipeline over plain LCMM (0.0 when fusion and
    scheduling found nothing to elide — a tie, never a regression).
    """

    model_name: str
    umm_ms: float
    plain_ms: float
    fused_ms: float
    fused_sched_ms: float
    fused_edges: int
    shortcut_edges: int
    bytes_saved: int

    @property
    def improvement(self) -> float:
        return 1.0 - self.fused_sched_ms / self.plain_ms


def run_fusion_ablation(
    models: tuple[str, ...] | None = None,
    precision: Precision = INT8,
) -> list[FusionAblationRow]:
    """Ablate fused+scheduled vs plain LCMM vs UMM across the zoo.

    Every configuration shares one bandwidth-constrained design (see
    :func:`fusion_ablation_design`) and one residency budget, so the
    only variable is the pass pipeline.  Monotonicity
    ``fused_sched <= fused <= plain`` holds by construction — both new
    passes are accept-if-improves.
    """
    names = tuple(models) if models is not None else tuple(list_models())
    accel_umm = fusion_ablation_design(precision, "umm")
    accel_lcmm = fusion_ablation_design(precision, "lcmm")
    budget = accel_lcmm.tile_buffer_bytes() + FUSION_ABLATION_SRAM_HEADROOM
    configs = {
        "plain": LCMMOptions(sram_budget=budget),
        "fused": LCMMOptions(sram_budget=budget, fuse_layers=True),
        "fused_sched": LCMMOptions(
            sram_budget=budget, fuse_layers=True, transfer_schedule=True
        ),
    }
    rows = []
    for model_name in names:
        graph = get_model(model_name)
        umm = run_umm(graph, accel_umm)
        lcmm_model = LatencyModel(graph, accel_lcmm)
        results = {
            label: run_lcmm(
                graph, accel_lcmm, options=options, model=lcmm_model
            )
            for label, options in configs.items()
        }
        edges = results["fused_sched"].fused_edges
        rows.append(
            FusionAblationRow(
                model_name=model_name,
                umm_ms=umm.latency * 1e3,
                plain_ms=results["plain"].latency * 1e3,
                fused_ms=results["fused"].latency * 1e3,
                fused_sched_ms=results["fused_sched"].latency * 1e3,
                fused_edges=len(edges),
                shortcut_edges=sum(1 for e in edges if e.shortcut),
                bytes_saved=sum(e.bytes_saved for e in edges),
            )
        )
    return rows


def run_fig2a(precision: Precision = INT8) -> RooflineModel:
    """Regenerate Fig. 2(a): the Inception-v4 roofline on the UMM design."""
    graph = get_model("inception_v4")
    accel = reference_design("inception_v4", precision, "umm")
    return RooflineModel(graph, accel)

"""Serialization of graphs and allocation decisions.

Downstream integration (an HLS code generator, a deployment pipeline)
needs the framework's decisions in a machine-readable form: which tensor
lives in which buffer, when each weight prefetch starts, how large every
buffer is.  This subpackage provides JSON-stable dictionaries for
computation graphs (round-trippable) and LCMM results (export-only — a
report, not a reconstruction format).
"""

from repro.io.serialize import (
    allocation_report,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_allocation_report,
    save_graph,
)

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "allocation_report",
    "save_allocation_report",
]

"""JSON (de)serialization of graphs and allocation reports."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.ir.graph import ComputationGraph
from repro.ir.layer import (
    Attention,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    EltwiseAdd,
    FullyConnected,
    Gemm,
    InputLayer,
    Layer,
    LayerNorm,
    OpType,
    PoolMode,
    Pooling,
)
from repro.ir.tensor import FeatureMapShape
from repro.lcmm.framework import LCMMResult

#: Format tag written into serialized graphs of the original conv-family
#: op set.  Graphs built only from these ops serialize byte-identically
#: to the pre-GEMM era, which keeps their fingerprints — and therefore
#: every warm compilation-cache key — stable across the IR refactor.
GRAPH_FORMAT_VERSION = 1

#: Format tag for graphs that use the op-generic extensions (GEMM,
#: attention, norm).  The loader accepts both.
GRAPH_FORMAT_VERSION_V2 = 2

#: Ops that force the v2 format.
_V2_OPS = frozenset({OpType.GEMM, OpType.ATTENTION, OpType.NORM})


def graph_format_version(graph: ComputationGraph) -> int:
    """The format version a graph serializes under (see the tags above)."""
    if any(layer.op_type in _V2_OPS for layer in graph.layers()):
        return GRAPH_FORMAT_VERSION_V2
    return GRAPH_FORMAT_VERSION


def _layer_to_dict(layer: Layer) -> dict[str, Any]:
    base: dict[str, Any] = {
        "name": layer.name,
        "op": layer.op_type.value,
        "inputs": list(layer.inputs),
    }
    if isinstance(layer, InputLayer):
        base["shape"] = [layer.shape.channels, layer.shape.height, layer.shape.width]
    elif isinstance(layer, DepthwiseConv2D):
        base["op"] = "depthwise"
        base.update(
            kernel=list(layer.kernel),
            stride=list(layer.stride),
            padding=list(layer.padding),
        )
    elif isinstance(layer, Conv2D):
        base.update(
            out_channels=layer.out_channels,
            kernel=list(layer.kernel),
            stride=list(layer.stride),
            padding=list(layer.padding),
        )
    elif isinstance(layer, Pooling):
        base.update(
            kernel=list(layer.kernel),
            stride=list(layer.stride),
            padding=list(layer.padding),
            mode=layer.mode.value,
            global_pool=layer.global_pool,
        )
    elif isinstance(layer, FullyConnected):
        base["out_features"] = layer.out_features
    elif isinstance(layer, Gemm):
        base["out_features"] = layer.out_features
    elif isinstance(layer, Attention):
        base["num_heads"] = layer.num_heads
    # EltwiseAdd / Concat / LayerNorm carry nothing beyond name + inputs.
    return base


def _layer_from_dict(data: dict[str, Any]) -> Layer:
    op = data["op"]
    name = data["name"]
    inputs = tuple(data["inputs"])
    if op == "input":
        c, h, w = data["shape"]
        return InputLayer(name=name, shape=FeatureMapShape(c, h, w))
    if op == "depthwise":
        return DepthwiseConv2D(
            name=name,
            inputs=inputs,
            kernel=tuple(data["kernel"]),
            stride=tuple(data["stride"]),
            padding=tuple(data["padding"]),
        )
    if op == "conv":
        return Conv2D(
            name=name,
            inputs=inputs,
            out_channels=data["out_channels"],
            kernel=tuple(data["kernel"]),
            stride=tuple(data["stride"]),
            padding=tuple(data["padding"]),
        )
    if op == "pool":
        return Pooling(
            name=name,
            inputs=inputs,
            kernel=tuple(data["kernel"]),
            stride=tuple(data["stride"]),
            padding=tuple(data["padding"]),
            mode=PoolMode(data["mode"]),
            global_pool=data["global_pool"],
        )
    if op == "fc":
        return FullyConnected(name=name, inputs=inputs, out_features=data["out_features"])
    if op == "gemm":
        return Gemm(name=name, inputs=inputs, out_features=data["out_features"])
    if op == "attention":
        return Attention(name=name, inputs=inputs, num_heads=data["num_heads"])
    if op == "norm":
        return LayerNorm(name=name, inputs=inputs)
    if op == "eltwise":
        return EltwiseAdd(name=name, inputs=inputs)
    if op == "concat":
        return Concat(name=name, inputs=inputs)
    raise ValueError(f"unknown op type {op!r} in serialized graph")


def graph_to_dict(graph: ComputationGraph) -> dict[str, Any]:
    """Serialize a computation graph to a JSON-stable dictionary."""
    return {
        "format": graph_format_version(graph),
        "name": graph.name,
        "blocks": {k: list(v) for k, v in graph.blocks.items()},
        "layers": [_layer_to_dict(layer) for layer in graph.layers()],
    }


def graph_from_dict(data: dict[str, Any]) -> ComputationGraph:
    """Reconstruct a computation graph from :func:`graph_to_dict` output.

    Raises:
        ValueError: On unknown format versions or op types.
    """
    version = data.get("format")
    if version not in (GRAPH_FORMAT_VERSION, GRAPH_FORMAT_VERSION_V2):
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = ComputationGraph(name=data["name"])
    for layer_data in data["layers"]:
        graph.add(_layer_from_dict(layer_data))
    graph.blocks = {k: list(v) for k, v in data.get("blocks", {}).items()}
    graph.validate()
    return graph


def save_graph(graph: ComputationGraph, path: str | Path) -> None:
    """Write a graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> ComputationGraph:
    """Read a graph from a JSON file written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def allocation_report(result: LCMMResult) -> dict[str, Any]:
    """Export an LCMM result as a machine-readable report.

    Contains everything a code generator needs: the physical buffer map
    (sizes, block placement, resident tensors), the prefetch schedule and
    the achieved per-node latencies.  This is a report, not a
    reconstruction format.
    """
    return {
        "model": result.graph_name,
        "design": result.accel.name,
        "precision": result.accel.precision.name,
        "frequency_hz": result.accel.frequency,
        "latency_seconds": result.latency,
        "throughput_tops": result.tops,
        "sram": {
            "uram_blocks_used": result.sram_usage.uram_used,
            "bram36_blocks_used": result.sram_usage.bram36_used,
            "utilization": result.sram_utilization,
        },
        "buffers": [
            {
                "name": pbuf.name,
                "size_bytes": pbuf.size_bytes,
                "uram_blocks": pbuf.uram_blocks,
                "bram36_blocks": pbuf.bram36_blocks,
                "tensors": list(pbuf.tensor_names),
            }
            for pbuf in result.physical_buffers
        ],
        "prefetches": [
            {
                "weight": f"w:{edge.node}",
                "start_node": edge.start,
                "load_seconds": edge.load_time,
                "fully_hidden": edge.fully_hidden,
                "residual_seconds": edge.residual,
            }
            for edge in result.prefetch_result.edges.values()
            if f"w:{edge.node}" in result.onchip_tensors
        ],
        "node_latencies": dict(result.node_latencies),
    }


def save_allocation_report(result: LCMMResult, path: str | Path) -> None:
    """Write an allocation report to a JSON file."""
    Path(path).write_text(json.dumps(allocation_report(result), indent=2))

"""Design-space exploration over tile configurations.

The paper plugs LCMM into an external DSE framework ([12, 18, 22]) that
fixes the PE array and tile buffer structure; LCMM then manages whatever
on-chip memory the tile buffers do not use (Fig. 4).  This module is that
producer: given a model, a precision and a tile-buffer byte budget, it
enumerates tile shapes, scores each by end-to-end UMM latency under the
analytical model, and returns the Pareto-best design point.

Tile sizes trade buffer footprint against reload traffic: larger ``tm``
cuts input re-streaming (``ceil(M/tm)`` passes), larger ``th x tw`` cuts
weight re-streaming — but both inflate the tile buffers that compete with
LCMM's tensor buffers for SRAM.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pickle import PicklingError
from typing import TYPE_CHECKING

from repro.errors import CapacityError, ConfigError, ReproError
from repro.fingerprint import accel_fingerprint, sweep_key, tile_key
from repro.obs import spans as obs
from repro.ir.graph import ComputationGraph
from repro.ir.layer import Attention, Conv2D, DepthwiseConv2D, Gemm
from repro.ir.tensor import TensorKind
from repro.perf import pool as pool_mod
from repro.perf.latency import LatencyModel
from repro.perf.pool import ScorerPool
from repro.perf.systolic import (
    AcceleratorConfig,
    SystolicArray,
    gemm_compute_cycles,
    gemm_cycles_lower_bound,
    gemm_reload_trips,
)
from repro.perf.tiling import TileConfig

if TYPE_CHECKING:
    from repro.cache.store import CompilationCache

#: Candidate tile extents; powers of two for channels (all benchmark models
#: use channel counts divisible by 32) and the common feature-map extents
#: for the spatial dims.
_TM_CANDIDATES = (16, 32, 64, 128)
_TN_CANDIDATES = (16, 32, 64)
_SPATIAL_CANDIDATES = (7, 14, 28, 56)


@dataclass(frozen=True)
class DesignPoint:
    """One explored design with its predicted performance.

    Attributes:
        accel: The accelerator configuration.
        umm_latency: End-to-end latency with uniform memory management.
        tile_buffer_bytes: On-chip footprint of the double-buffered tile
            buffers.
    """

    accel: AcceleratorConfig
    umm_latency: float
    tile_buffer_bytes: int

    @property
    def throughput(self) -> float:
        """Ops/second under UMM (for ranking)."""
        return 1.0 / self.umm_latency


def candidate_tiles(
    tm_values: tuple[int, ...] = _TM_CANDIDATES,
    tn_values: tuple[int, ...] = _TN_CANDIDATES,
    spatial_values: tuple[int, ...] = _SPATIAL_CANDIDATES,
) -> list[TileConfig]:
    """The tile configurations the explorer enumerates."""
    return [
        TileConfig(tm=tm, tn=tn, th=sp, tw=sp)
        for tm, tn, sp in itertools.product(tm_values, tn_values, spatial_values)
    ]


def _configure(base: AcceleratorConfig, tile: TileConfig) -> AcceleratorConfig:
    """The base design point with only the tile configuration replaced."""
    return AcceleratorConfig(
        name=base.name,
        precision=base.precision,
        array=base.array,
        tile=tile,
        frequency=base.frequency,
        device=base.device,
        ddr=base.ddr,
        ddr_efficiency=base.ddr_efficiency,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


class _SweepScorer:
    """Fast per-tile UMM scoring for a fixed (graph, base) pair.

    Building a full :class:`LatencyModel` per tile re-characterises every
    node, but only the conv/GEMM reload factors and the GEMM tile-loop
    cycle counts actually depend on the tile — conv compute latencies,
    output slots and every single-tile node are tile-invariant.  This
    scorer characterises the graph once against the base design, keeps
    the tile-independent byte counts and latencies, and re-evaluates only
    the tile-dependent terms per tile.

    The per-node arithmetic replays ``LatencyModel``'s operations in the
    same order (integer byte products, one division per slot, the same
    ``max`` and the same schedule-order summation), so ``score(tile)`` is
    bit-for-bit equal to
    ``LatencyModel(graph, _configure(base, tile)).umm_latency()``.
    """

    def __init__(self, graph: ComputationGraph, base: AcceleratorConfig) -> None:
        ref = LatencyModel(graph, base)
        elem = base.precision.bytes
        bw_if = base.interface_bandwidth(TensorKind.IFMAP.value)
        bw_wt = base.interface_bandwidth(TensorKind.WEIGHT.value)
        self._bw_if = bw_if
        self._bw_wt = bw_wt
        self._if_cap = base.if_resident_cap
        self._wt_cap = base.wt_resident_cap
        self._elem = elem
        self._array = base.array
        self._freq = base.frequency
        # Plan entries in schedule order: (None, latency) for
        # tile-invariant nodes, otherwise the conv/depthwise parameters.
        self._plan: list[tuple] = []
        for name in ref.nodes():
            layer = graph.layer(name)
            ll = ref.layer(name)
            if isinstance(layer, DepthwiseConv2D):
                out = graph.output_shape(name)
                if_lat = ll.slot_latency(TensorKind.IFMAP)
                wt_bytes = layer.weight_shape.volume * elem
                of_lat = ll.slot_latency(TensorKind.OFMAP)
                self._plan.append(
                    ("dw", ll.compute, if_lat, wt_bytes, of_lat, out.height, out.width)
                )
            elif isinstance(layer, Conv2D):
                out = graph.output_shape(name)
                # One if-slot per feature source; latencies are computed
                # per slot and summed in slot order, so keep per-source
                # byte counts rather than one pooled total.
                if_bytes = tuple(
                    graph.output_shape(src).volume * elem
                    for src in graph.feature_sources(name)
                )
                wt_bytes = layer.weight_shape.volume * elem
                of_lat = ll.slot_latency(TensorKind.OFMAP)
                if_ws_hw = (
                    layer.in_channels * elem,
                    layer.stride,
                    layer.kernel,
                )
                self._plan.append(
                    (
                        "conv",
                        ll.compute,
                        if_bytes,
                        wt_bytes,
                        of_lat,
                        out.channels,
                        out.height,
                        out.width,
                        if_ws_hw,
                    )
                )
            elif isinstance(layer, Attention):
                if_bytes = tuple(
                    graph.output_shape(src).volume * elem
                    for src in graph.feature_sources(name)
                )
                wt_bytes = layer.weight_shape.volume * elem
                of_lat = ll.slot_latency(TensorKind.OFMAP)
                self._plan.append(
                    ("attn", layer.gemm_dims(), if_bytes, wt_bytes, of_lat)
                )
            elif isinstance(layer, Gemm) and not layer.conv_datapath:
                if_bytes = tuple(
                    graph.output_shape(src).volume * elem
                    for src in graph.feature_sources(name)
                )
                wt_bytes = layer.weight_shape.volume * elem
                of_lat = ll.slot_latency(TensorKind.OFMAP)
                self._plan.append(
                    ("gemm", layer.gemm_dims(), if_bytes, wt_bytes, of_lat)
                )
            else:
                self._plan.append((None, ll.latency()))

    def score(self, tile: TileConfig) -> float:
        """UMM latency of the base design with ``tile`` swapped in."""
        bw_if = self._bw_if
        bw_wt = self._bw_wt
        if_cap = self._if_cap
        wt_cap = self._wt_cap
        total = 0.0
        for entry in self._plan:
            tag = entry[0]
            if tag is None:
                total += entry[1]
                continue
            if tag == "conv":
                (_, compute, if_bytes, wt_bytes, of_lat, out_ch, h, w, ws) = entry
                n_tm = tile.output_channel_trips(out_ch)
                n_sp = tile.spatial_trips(h, w)
                in_ch_elem, stride, kernel = ws
                if n_tm > 1 and if_cap > 0:
                    in_h = tile.th * stride[0] + kernel[0] - stride[0]
                    in_w = tile.tw * stride[1] + kernel[1] - stride[1]
                    if in_ch_elem * in_h * in_w <= if_cap:
                        n_tm = 1
                if n_sp > 1 and wt_cap > 0:
                    if tile.tm * in_ch_elem * kernel[0] * kernel[1] <= wt_cap:
                        n_sp = 1
                if_lat = 0.0
                for vol in if_bytes:
                    nb = vol * n_tm
                    if_lat += nb / bw_if if nb else 0.0
                nb = wt_bytes * n_sp
                wt_lat = nb / bw_wt if nb else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
            elif tag == "gemm" or tag == "attn":
                (_, dims, if_bytes, wt_bytes, of_lat) = entry
                if tag == "attn":
                    cycles = sum(
                        gemm_compute_cycles(d, self._array, tile) for d in dims
                    )
                    lead = dims[0]
                else:
                    cycles = gemm_compute_cycles(dims, self._array, tile)
                    lead = dims
                compute = cycles / self._freq
                n_if, n_wt = gemm_reload_trips(
                    lead, tile, self._elem, if_cap, wt_cap
                )
                if_lat = 0.0
                for vol in if_bytes:
                    nb = vol * n_if
                    if_lat += nb / bw_if if nb else 0.0
                nb = wt_bytes * n_wt
                wt_lat = nb / bw_wt if nb else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
            else:  # depthwise: only the weight reload factor varies
                (_, compute, if_lat, wt_bytes, of_lat, h, w) = entry
                n_sp = tile.spatial_trips(h, w)
                nb = wt_bytes * n_sp
                wt_lat = nb / bw_wt if nb else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
        return total

    def lower_bound(self) -> float:
        """UMM latency no tile on this base can beat.

        Evaluates the plan with every reload factor at its floor of 1 —
        each tensor streamed exactly once.  ``score(tile)`` only ever
        multiplies transfer terms by trip counts >= 1 (the residency
        caps can reduce a trip count, but never below 1), and the
        per-node ``max`` and the summation are monotone in those terms,
        so ``lower_bound() <= score(tile)`` for *every* tile — the
        soundness the roofline dominance pruning of
        :mod:`repro.perf.space` relies on.
        """
        bw_if = self._bw_if
        bw_wt = self._bw_wt
        total = 0.0
        for entry in self._plan:
            tag = entry[0]
            if tag is None:
                total += entry[1]
            elif tag == "conv":
                (_, compute, if_bytes, wt_bytes, of_lat, _, _, _, _) = entry
                if_lat = sum(vol / bw_if for vol in if_bytes if vol)
                wt_lat = wt_bytes / bw_wt if wt_bytes else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
            elif tag == "gemm" or tag == "attn":
                (_, dims, if_bytes, wt_bytes, of_lat) = entry
                comps = dims if tag == "attn" else (dims,)
                # Best-tile compute floor (single tile, one pipeline
                # fill) with every reload factor at 1.
                cycles = sum(gemm_cycles_lower_bound(d, self._array) for d in comps)
                compute = cycles / self._freq
                if_lat = sum(vol / bw_if for vol in if_bytes if vol)
                wt_lat = wt_bytes / bw_wt if wt_bytes else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
            else:  # depthwise
                (_, compute, if_lat, wt_bytes, of_lat, _, _) = entry
                wt_lat = wt_bytes / bw_wt if wt_bytes else 0.0
                total += max(compute, if_lat, wt_lat, of_lat)
        return total


@dataclass
class WorkerStats:
    """What the hardened parallel sweep had to do to finish.

    A clean run is ``chunks == N`` with every other counter zero.  The
    counters let callers (and ``lcmm dse``) see how much fault handling
    the sweep needed without changing its results — the recovered output
    is always identical to a serial sweep.

    Attributes:
        chunks: Tile chunks the sweep was split into.
        retries: Chunk re-submissions after a worker exception.
        timeouts: Per-chunk deadline expiries.
        failures: Chunk attempts that raised in a worker.
        pool_broken: The process pool died (``BrokenProcessPool``).
        serial_chunks: Chunks re-executed serially in the parent after
            the pool could not produce them.
        pool_unavailable: The pool could not be created at all and the
            whole sweep ran serially.
        chunks_reused_pool: Chunks served by a pool that was already
            warm when the sweep began — the persistent-pool win; a cold
            first sweep has 0 here, every later sweep on the same graph
            should have ``chunks_reused_pool == chunks``.
        init_seconds: Wall seconds this sweep spent spinning up worker
            pools (0.0 when the persistent pool was already warm).
        points_pruned: Design points discarded before scoring by the
            dominance/roofline pruning of :mod:`repro.perf.space`.
    """

    chunks: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    pool_broken: bool = False
    serial_chunks: int = 0
    pool_unavailable: bool = False
    chunks_reused_pool: int = 0
    init_seconds: float = 0.0
    points_pruned: int = 0

    def recovered(self) -> bool:
        """Whether any fault handling occurred."""
        return bool(
            self.retries
            or self.timeouts
            or self.failures
            or self.pool_broken
            or self.serial_chunks
            or self.pool_unavailable
        )

    def absorb(self, other: "WorkerStats") -> None:
        """Accumulate another sweep's counters into this one.

        :func:`repro.perf.space.explore_space` runs one sweep per base
        design and reports space-wide totals through a single stats
        object.
        """
        self.chunks += other.chunks
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.failures += other.failures
        self.pool_broken = self.pool_broken or other.pool_broken
        self.serial_chunks += other.serial_chunks
        self.pool_unavailable = self.pool_unavailable or other.pool_unavailable
        self.chunks_reused_pool += other.chunks_reused_pool
        self.init_seconds += other.init_seconds
        self.points_pruned += other.points_pruned


#: Points the parent scores itself to measure the per-point cost when a
#: pool has no throughput estimate yet.  Their scores are part of the
#: sweep result, so calibration is never wasted work; capped at half the
#: workload so small sweeps still exercise the pool.
_CALIBRATION_POINTS = 8


def _score_parallel(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tiles: list[TileConfig],
    workers: int,
    chunk_timeout: float | None = None,
    chunk_retries: int = 1,
    stats: WorkerStats | None = None,
    pool: ScorerPool | None = None,
    scorer: _SweepScorer | None = None,
) -> list[float]:
    """Fan tile scoring out over a (persistent) pool, preserving order.

    Chunks are sized adaptively from the pool's measured per-point cost
    (a cold pool first calibrates on a small parent-scored prefix),
    encoded as packed int arrays, scored in worker processes and
    reassembled by index, so the result lines up with ``tiles``
    regardless of which worker finished first.

    Hardened against worker failure: a chunk that raises *or misses
    ``chunk_timeout``* is resubmitted up to ``chunk_retries`` times; a
    chunk that exhausts its retries is re-executed *serially in the
    parent*, so the sweep always terminates with exact results.  The
    serial path recomputes with a fresh scorer rather than trusting
    anything a dying worker may have sent.

    A broken pool (``BrokenProcessPool``) or a timed-out chunk whose
    future is already running (uncancellable, stranding the hung worker
    on its slot) triggers :meth:`ScorerPool.refresh`: the executor is
    discarded and retries run in a freshly created one — the persistent
    pool *object* survives, so no broken executor leaks into later
    sweeps and no slot stays occupied by a dead deadline.
    """
    stats = stats if stats is not None else WorkerStats()
    if pool is None:
        pool = pool_mod.persistent_pool(graph, workers)
    tracer = obs.tracer()
    base_key = accel_fingerprint(base, include_tile=False)
    n = len(tiles)
    prefix: list[float] = []
    if pool.per_point_seconds is None and n > 1:
        # Cold pool: measure the per-point cost on a small prefix so the
        # very first chunking is already informed.  The prefix scores
        # are part of the result.
        k = min(_CALIBRATION_POINTS, n // 2)
        if k > 0:
            scorer = scorer if scorer is not None else _SweepScorer(graph, base)
            start = time.perf_counter()
            prefix = [scorer.score(tile) for tile in tiles[:k]]
            pool.observe(k, time.perf_counter() - start)
    rest = tiles[len(prefix):]
    chunk = pool.chunk_size(len(rest))
    chunks = [
        pool_mod.encode_tiles(rest[i : i + chunk])
        for i in range(0, len(rest), chunk)
    ]
    sizes = [len(encoded) // pool_mod.TILE_WORDS for encoded in chunks]
    stats.chunks = len(chunks)
    preexisting = pool.is_warm()
    start_generation = pool.generation
    results: list[list[float] | None] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    attempts = [0] * len(chunks)
    while pending:
        _, init_elapsed = pool.ensure()
        stats.init_seconds += init_elapsed
        if preexisting and pool.generation == start_generation:
            stats.chunks_reused_pool += len(pending)
        futures = [
            (pool.submit_chunk(base, base_key, chunks[i], i), i) for i in pending
        ]
        retry: list[int] = []
        broken = False
        stranded = False
        for future, i in futures:
            try:
                # Chunks run concurrently, so waiting on them in
                # submission order still gives each roughly its own
                # deadline — and never mislabels a healthy chunk.
                scores, seconds, worker_spans = future.result(timeout=chunk_timeout)
                results[i] = list(scores)
                pool.observe(sizes[i], seconds)
                pool.chunks_scored += 1
                if tracer is not None and worker_spans:
                    tracer.merge(worker_spans)
            except FutureTimeout:
                stats.timeouts += 1
                # A still-queued future cancels cleanly; a running one
                # does not, and its hung worker keeps the pool slot —
                # mark the executor for replacement.
                if not future.cancel():
                    stranded = True
                attempts[i] += 1
                if attempts[i] <= chunk_retries:
                    stats.retries += 1
                    retry.append(i)
            except BrokenProcessPool:
                broken = True
                attempts[i] += 1
                if attempts[i] <= chunk_retries:
                    stats.retries += 1
                    retry.append(i)
            except Exception:
                stats.failures += 1
                attempts[i] += 1
                if attempts[i] <= chunk_retries:
                    stats.retries += 1
                    retry.append(i)
        if broken:
            stats.pool_broken = True
            pool.refresh()
        elif stranded:
            pool.refresh()
        pending = retry
    lost = [i for i in range(len(chunks)) if results[i] is None]
    if lost:
        stats.serial_chunks = len(lost)
        with obs.span("dse.serial-rescore", chunks=len(lost)):
            scorer = scorer if scorer is not None else _SweepScorer(graph, base)
            for i in lost:
                results[i] = [
                    scorer.score(tile)
                    for tile in pool_mod.decode_tiles(chunks[i])
                ]
    return prefix + [lat for part in results for lat in part]


def explore_designs(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tile_buffer_budget: int,
    tiles: list[TileConfig] | None = None,
    workers: int = 1,
    chunk_timeout: float | None = None,
    chunk_retries: int = 1,
    stats: WorkerStats | None = None,
    cache: "CompilationCache | None" = None,
    pool: ScorerPool | None = None,
    pool_mode: str = "keep",
    scorer: _SweepScorer | None = None,
) -> list[DesignPoint]:
    """Score every feasible tile configuration on a model.

    Args:
        graph: The DNN to optimise for.
        base: Design point providing array/clock/precision/memory system;
            only the tile configuration is varied.
        tile_buffer_budget: Maximum bytes the double-buffered tile buffers
            may occupy (the rest of SRAM is left to LCMM's tensor buffers).
        tiles: Optional explicit candidate list.  An explicitly empty list
            yields an empty result (nothing to explore is not an error).
        workers: Process count for the scoring sweep.  ``1`` (the
            default) runs serially in-process; higher values fan chunks
            of tiles out over a process pool, clamped to the number of
            feasible tiles so small sweeps never spawn idle workers.
            Results are identical and identically ordered either way, and
            any pool failure (a crashed worker, a hung chunk, or an
            environment without working process spawning) is recovered by
            re-scoring the missing chunks serially.
        chunk_timeout: Optional per-chunk deadline in seconds for the
            parallel sweep; a timed-out chunk is retried in a fresh pool
            and, past its retry budget, re-scored serially.
        chunk_retries: Re-submissions allowed per failing chunk before it
            falls back to serial re-scoring.
        stats: Optional :class:`WorkerStats` filled in with what the
            parallel sweep had to recover from.
        cache: Optional :class:`~repro.cache.store.CompilationCache`.
            Warm-starts the sweep from previously cached per-tile scores
            of the same (graph, base-sans-tile) pair — only unseen tiles
            are scored (serially or in the pool), and their scores are
            written back for the next sweep.  Off by default.
        pool: Explicit :class:`~repro.perf.pool.ScorerPool` to score on
            (:func:`~repro.perf.space.explore_space` shares one across
            bases).  The caller owns its lifetime.
        pool_mode: ``"keep"`` (default) scores on the process-wide
            persistent pool, which stays warm for later sweeps of the
            same graph; ``"fresh"`` builds a private pool and closes it
            before returning.  Ignored when ``pool`` is given.
        scorer: Optional pre-built :class:`_SweepScorer` for
            (graph, base), reused by the serial/calibration paths
            instead of re-characterising the graph
            (:func:`~repro.perf.space.explore_space` already built one
            for the dominance bound).

    Returns:
        Feasible design points sorted by ascending UMM latency.

    Raises:
        repro.errors.CapacityError: On a non-positive budget, or when no
            candidate tile fits it.
        repro.errors.ConfigError: On ``workers < 1``.
        repro.errors.ReproError: Any taxonomy error raised while setting
            up the parallel sweep (an invalid graph or configuration)
            propagates — only *environmental* pool failures fall back to
            the serial path.
    """
    if tile_buffer_budget <= 0:
        raise CapacityError(
            "tile_buffer_budget must be positive",
            details={"tile_buffer_budget": tile_buffer_budget},
        )
    if workers < 1:
        raise ConfigError("workers must be at least 1", details={"workers": workers})
    if pool_mode not in ("keep", "fresh"):
        raise ConfigError(
            "pool_mode must be 'keep' or 'fresh'",
            details={"pool_mode": pool_mode},
        )
    if tiles is not None and not tiles:
        return []
    feasible: list[tuple[TileConfig, int]] = []
    for tile in tiles if tiles is not None else candidate_tiles():
        footprint = tile.tile_buffer_bytes(base.precision.bytes)
        if footprint <= tile_buffer_budget:
            feasible.append((tile, footprint))
    if not feasible:
        raise CapacityError(
            f"no tile configuration fits a {tile_buffer_budget}-byte budget",
            details={"tile_buffer_budget": tile_buffer_budget},
        )
    tile_list = [tile for tile, _ in feasible]
    workers = min(workers, len(tile_list))
    with obs.span(
        "dse.explore", graph=graph.name, tiles=len(tile_list), workers=workers
    ):
        warm: dict[str, float] = {}
        warm_key: str | None = None
        if cache is not None:
            warm_key = sweep_key(graph, base)
            warm = cache.get(warm_key, namespace="sweep") or {}
        pending = [tile for tile in tile_list if tile_key(tile) not in warm]
        if warm_key is not None:
            obs.annotate(
                "dse.warm-start",
                known=len(tile_list) - len(pending),
                scored=len(pending),
            )
        scored: list[float] | None = None
        if pending:
            if min(workers, len(pending)) > 1:
                sweep_pool = pool
                private_pool: ScorerPool | None = None
                try:
                    if sweep_pool is None:
                        if pool_mode == "fresh":
                            private_pool = ScorerPool(graph, workers)
                            sweep_pool = private_pool
                        else:
                            sweep_pool = pool_mod.persistent_pool(graph, workers)
                    scored = _score_parallel(
                        graph,
                        base,
                        pending,
                        min(workers, len(pending)),
                        chunk_timeout=chunk_timeout,
                        chunk_retries=chunk_retries,
                        stats=stats,
                        pool=sweep_pool,
                        scorer=scorer,
                    )
                except ReproError:
                    # A genuinely invalid graph/config surfaced during
                    # pool setup is a caller error — relabeling it as an
                    # environmental failure would bury it in a silent
                    # serial fallback.
                    raise
                except (OSError, RuntimeError, PicklingError):
                    # Pool could not even be created (sandboxed
                    # interpreter, no fork/spawn support, unpicklable
                    # initargs...); the serial path below is exact.
                    if stats is not None:
                        stats.pool_unavailable = True
                    scored = None
                finally:
                    if private_pool is not None:
                        private_pool.close()
            if scored is None:
                with obs.span("dse.serial-sweep", tiles=len(pending)):
                    if scorer is None:
                        scorer = _SweepScorer(graph, base)
                    scored = [scorer.score(tile) for tile in pending]
        else:
            scored = []
        fresh = {tile_key(tile): s for tile, s in zip(pending, scored)}
        if warm_key is not None and fresh:
            warm.update(fresh)
            cache.put(warm_key, warm, namespace="sweep")
        lookup = warm if warm_key is not None else fresh
        latencies = [lookup[tile_key(tile)] for tile in tile_list]
        if obs.enabled() and stats is not None:
            _publish_sweep_metrics(stats, graph.name)
    points = [
        DesignPoint(
            accel=_configure(base, tile),
            umm_latency=latency,
            tile_buffer_bytes=footprint,
        )
        for (tile, footprint), latency in zip(feasible, latencies)
    ]
    points.sort(key=lambda p: p.umm_latency)
    return points


def _publish_sweep_metrics(stats: WorkerStats, graph_name: str) -> None:
    """Mirror one sweep's :class:`WorkerStats` into the metrics registry."""
    from repro.obs.metrics import registry

    counters = registry()
    for name, value in (
        ("dse.chunks", stats.chunks),
        ("dse.retries", stats.retries),
        ("dse.timeouts", stats.timeouts),
        ("dse.failures", stats.failures),
        ("dse.serial_chunks", stats.serial_chunks),
        ("dse.chunks_reused_pool", stats.chunks_reused_pool),
        ("dse.points_pruned", stats.points_pruned),
    ):
        counters.counter(name).inc(value, graph=graph_name)
    counters.gauge("dse.pool_broken").set(float(stats.pool_broken), graph=graph_name)
    counters.gauge("dse.pool_unavailable").set(
        float(stats.pool_unavailable), graph=graph_name
    )
    counters.gauge("dse.init_seconds").set(stats.init_seconds, graph=graph_name)


def best_design(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tile_buffer_budget: int,
    tiles: list[TileConfig] | None = None,
    workers: int = 1,
) -> AcceleratorConfig:
    """The lowest-UMM-latency feasible design (convenience wrapper)."""
    return explore_designs(graph, base, tile_buffer_budget, tiles, workers=workers)[0].accel

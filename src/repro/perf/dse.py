"""Design-space exploration over tile configurations.

The paper plugs LCMM into an external DSE framework ([12, 18, 22]) that
fixes the PE array and tile buffer structure; LCMM then manages whatever
on-chip memory the tile buffers do not use (Fig. 4).  This module is that
producer: given a model, a precision and a tile-buffer byte budget, it
enumerates tile shapes, scores each by end-to-end UMM latency under the
analytical model, and returns the Pareto-best design point.

Tile sizes trade buffer footprint against reload traffic: larger ``tm``
cuts input re-streaming (``ceil(M/tm)`` passes), larger ``th x tw`` cuts
weight re-streaming — but both inflate the tile buffers that compete with
LCMM's tensor buffers for SRAM.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig, SystolicArray
from repro.perf.tiling import TileConfig

#: Candidate tile extents; powers of two for channels (all benchmark models
#: use channel counts divisible by 32) and the common feature-map extents
#: for the spatial dims.
_TM_CANDIDATES = (16, 32, 64, 128)
_TN_CANDIDATES = (16, 32, 64)
_SPATIAL_CANDIDATES = (7, 14, 28, 56)


@dataclass(frozen=True)
class DesignPoint:
    """One explored design with its predicted performance.

    Attributes:
        accel: The accelerator configuration.
        umm_latency: End-to-end latency with uniform memory management.
        tile_buffer_bytes: On-chip footprint of the double-buffered tile
            buffers.
    """

    accel: AcceleratorConfig
    umm_latency: float
    tile_buffer_bytes: int

    @property
    def throughput(self) -> float:
        """Ops/second under UMM (for ranking)."""
        return 1.0 / self.umm_latency


def candidate_tiles(
    tm_values: tuple[int, ...] = _TM_CANDIDATES,
    tn_values: tuple[int, ...] = _TN_CANDIDATES,
    spatial_values: tuple[int, ...] = _SPATIAL_CANDIDATES,
) -> list[TileConfig]:
    """The tile configurations the explorer enumerates."""
    return [
        TileConfig(tm=tm, tn=tn, th=sp, tw=sp)
        for tm, tn, sp in itertools.product(tm_values, tn_values, spatial_values)
    ]


def explore_designs(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tile_buffer_budget: int,
    tiles: list[TileConfig] | None = None,
) -> list[DesignPoint]:
    """Score every feasible tile configuration on a model.

    Args:
        graph: The DNN to optimise for.
        base: Design point providing array/clock/precision/memory system;
            only the tile configuration is varied.
        tile_buffer_budget: Maximum bytes the double-buffered tile buffers
            may occupy (the rest of SRAM is left to LCMM's tensor buffers).
        tiles: Optional explicit candidate list.

    Returns:
        Feasible design points sorted by ascending UMM latency.
    """
    if tile_buffer_budget <= 0:
        raise ValueError("tile_buffer_budget must be positive")
    points = []
    for tile in tiles if tiles is not None else candidate_tiles():
        footprint = tile.tile_buffer_bytes(base.precision.bytes)
        if footprint > tile_buffer_budget:
            continue
        accel = AcceleratorConfig(
            name=base.name,
            precision=base.precision,
            array=base.array,
            tile=tile,
            frequency=base.frequency,
            device=base.device,
            ddr=base.ddr,
            ddr_efficiency=base.ddr_efficiency,
            if_resident_cap=base.if_resident_cap,
            wt_resident_cap=base.wt_resident_cap,
        )
        latency = LatencyModel(graph, accel).umm_latency()
        points.append(DesignPoint(accel=accel, umm_latency=latency, tile_buffer_bytes=footprint))
    if not points:
        raise ValueError(
            f"no tile configuration fits a {tile_buffer_budget}-byte budget"
        )
    points.sort(key=lambda p: p.umm_latency)
    return points


def best_design(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    tile_buffer_budget: int,
    tiles: list[TileConfig] | None = None,
) -> AcceleratorConfig:
    """The lowest-UMM-latency feasible design (convenience wrapper)."""
    return explore_designs(graph, base, tile_buffer_budget, tiles)[0].accel

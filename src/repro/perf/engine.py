"""Incremental allocation-evaluation engine for the LCMM hot path.

Every LCMM decision — the DNNK dynamic program, local-search refinement,
buffer splitting, prefetch refinement, fractional fill — bottoms out in
re-evaluating Eq. 1 latencies.  The naive route walks every node and every
slot per query (``LatencyModel.total_latency``) and rebuilds frozensets of
resident tensors on the way, so one candidate evaluation costs
O(nodes x slots).  This module flattens the per-node ``LayerLatency``
decomposition into parallel arrays once and then maintains a mutable
resident-set with cached per-node latencies, so a state change costs
O(slots of the affected nodes) and a total query costs O(nodes).

Exactness contract
------------------
The engine is *bit-for-bit* equivalent to the naive evaluator, not merely
close: a cached node latency is recomputed by iterating the node's slots
in their original order and accumulating the three per-kind interface sums
exactly as ``LayerLatency.slot_latency`` does, and ``total()`` re-sums the
cached per-node latencies in schedule order exactly as
``LatencyModel.total_latency`` does.  No incremental float accumulation is
ever trusted for a value the naive evaluator would compute differently —
incrementality buys the *selection* of what to recompute, never a
different arithmetic.  This is what lets the allocators treat the naive
evaluator as an interchangeable test oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.ir.tensor import TensorKind
from repro.perf.latency import LatencyModel
from repro.robustness.inject import declare_fault_point, fault_point

declare_fault_point(
    "engine.set_state", "absolute state jump of the incremental engine"
)

#: Interface index per tensor kind, in the order Eq. 1's max considers them.
KIND_INDEX = {TensorKind.IFMAP: 0, TensorKind.WEIGHT: 1, TensorKind.OFMAP: 2}


@dataclass
class EngineStats:
    """Observability counters for the evaluation engine.

    Attributes:
        node_evaluations: Per-node latency recomputations (the O(slots)
            unit of work).
        full_rescores: Whole-graph evaluations (engine construction and
            explicit full re-sums).
        applies: Incremental ``apply``/``set_state`` transitions.
        undos: State transitions rolled back.
        gain_cache_hits: DNNK gain queries answered from the memo.
        gain_cache_misses: DNNK gain queries that recomputed node latencies.
        pass_seconds: Wall time per framework pass, keyed by pass name.
    """

    node_evaluations: int = 0
    full_rescores: int = 0
    applies: int = 0
    undos: int = 0
    gain_cache_hits: int = 0
    gain_cache_misses: int = 0
    pass_seconds: dict[str, float] = field(default_factory=dict)

    def time_pass(self, name: str) -> "_PassTimer":
        """Context manager accumulating wall time under ``name``."""
        return _PassTimer(self, name)

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the CLI and benchmarks)."""
        return {
            "node_evaluations": self.node_evaluations,
            "full_rescores": self.full_rescores,
            "applies": self.applies,
            "undos": self.undos,
            "gain_cache_hits": self.gain_cache_hits,
            "gain_cache_misses": self.gain_cache_misses,
            "pass_seconds": dict(self.pass_seconds),
        }

    def publish(self, registry, **labels) -> None:
        """Mirror the counters into a :class:`repro.obs.MetricsRegistry`.

        Called once per compilation at run granularity (never from the
        engine's hot loop), so the per-transition counters stay plain
        integer increments and the metrics layer costs nothing unless a
        run is being observed.
        """
        for name, value in (
            ("engine.node_evaluations", self.node_evaluations),
            ("engine.full_rescores", self.full_rescores),
            ("engine.applies", self.applies),
            ("engine.undos", self.undos),
            ("engine.gain_cache_hits", self.gain_cache_hits),
            ("engine.gain_cache_misses", self.gain_cache_misses),
        ):
            registry.counter(name).inc(value, **labels)
        timer = registry.histogram(
            "engine.pass_seconds", "wall seconds per framework pass"
        )
        for pass_name, seconds in self.pass_seconds.items():
            timer.observe(seconds, **dict(labels, pass_name=pass_name))


class _PassTimer:
    """Accumulates elapsed wall time into ``stats.pass_seconds[name]``."""

    def __init__(self, stats: EngineStats, name: str) -> None:
        self._stats = stats
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PassTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._stats.pass_seconds[self._name] = (
            self._stats.pass_seconds.get(self._name, 0.0) + elapsed
        )


class AllocationEngine:
    """Flattened, incrementally-updated view of a :class:`LatencyModel`.

    The engine interns every tensor value that appears in a slot, flattens
    each node's decomposition into parallel ``(kind, tensor-id, latency)``
    arrays, and keeps the tensor -> nodes adjacency so a state change only
    revisits the nodes it can affect.  Mutable state per tensor mirrors
    the three allocation inputs of the naive evaluator: fully resident
    (``onchip``), resident with an unhidden prefetch residual, and
    fractionally pinned.

    Args:
        model: The latency model to flatten.  The engine never mutates it.
        stats: Optional shared stats sink; a fresh one is created if absent.
    """

    def __init__(self, model: LatencyModel, stats: EngineStats | None = None) -> None:
        self.model = model
        self.stats = stats if stats is not None else EngineStats()

        schedule = model.nodes()
        self.node_names: list[str] = list(schedule)
        self.node_index: dict[str, int] = {n: i for i, n in enumerate(schedule)}
        self.compute: list[float] = []
        self.slot_kinds: list[tuple[int, ...]] = []
        self.slot_tids: list[tuple[int, ...]] = []
        self.slot_lats: list[tuple[float, ...]] = []
        self.tensor_index: dict[str, int] = {}
        tensor_nodes: list[list[int]] = []

        for ni, name in enumerate(schedule):
            ll = model.layer(name)
            self.compute.append(ll.compute)
            kinds: list[int] = []
            tids: list[int] = []
            lats: list[float] = []
            for slot in ll.slots:
                tid = self.tensor_index.setdefault(slot.tensor, len(tensor_nodes))
                if tid == len(tensor_nodes):
                    tensor_nodes.append([])
                if not tensor_nodes[tid] or tensor_nodes[tid][-1] != ni:
                    tensor_nodes[tid].append(ni)
                kinds.append(KIND_INDEX[slot.kind])
                tids.append(tid)
                lats.append(slot.latency)
            self.slot_kinds.append(tuple(kinds))
            self.slot_tids.append(tuple(tids))
            self.slot_lats.append(tuple(lats))

        self.tensor_nodes: list[tuple[int, ...]] = [tuple(ns) for ns in tensor_nodes]
        n_tensors = len(self.tensor_nodes)
        n_nodes = len(schedule)

        # Mutable allocation state per interned tensor.
        self._resident = bytearray(n_tensors)
        self._residual = [0.0] * n_tensors
        self._has_frac = bytearray(n_tensors)
        self._frac = [0.0] * n_tensors
        #: Tensors whose state differs from the all-off-chip default.
        self._dirty: set[int] = set()

        # Cached per-node results under the current state.
        self._node_lat = [0.0] * n_nodes
        self._node_sums: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)] * n_nodes
        for ni in range(n_nodes):
            self._recompute_node(ni)
        #: Immutable all-off-chip node latencies (the UMM decomposition).
        self.base_node_lat: tuple[float, ...] = tuple(self._node_lat)
        self.stats.full_rescores += 1

        self._undo_stack: list[tuple[list, list]] = []

    # ------------------------------------------------------------------
    # Core recomputation (the only place slot arrays are walked)
    # ------------------------------------------------------------------
    def _recompute_node(self, ni: int) -> None:
        """Recompute one node's per-kind sums and cached latency.

        Mirrors ``LayerLatency.latency`` exactly: each interface sum
        accumulates the node's slots in their original order, so the
        result is bit-for-bit what the naive evaluator returns.
        """
        resident = self._resident
        residual = self._residual
        has_frac = self._has_frac
        frac = self._frac
        s0 = s1 = s2 = 0.0
        for kind, tid, lat in zip(
            self.slot_kinds[ni], self.slot_tids[ni], self.slot_lats[ni]
        ):
            if resident[tid]:
                value = residual[tid]
                if value == 0.0:
                    continue
            elif has_frac[tid]:
                value = lat * (1.0 - frac[tid])
            else:
                value = lat
            if kind == 0:
                s0 += value
            elif kind == 1:
                s1 += value
            else:
                s2 += value
        self._node_sums[ni] = (s0, s1, s2)
        self._node_lat[ni] = max(self.compute[ni], s0, s1, s2)
        self.stats.node_evaluations += 1

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def _snapshot(self, tid: int) -> tuple:
        return (
            tid,
            self._resident[tid],
            self._residual[tid],
            self._has_frac[tid],
            self._frac[tid],
        )

    def _restore(self, snap: tuple) -> None:
        tid, res, residual, hasf, frac = snap
        self._resident[tid] = res
        self._residual[tid] = residual
        self._has_frac[tid] = hasf
        self._frac[tid] = frac
        if res or residual or hasf:
            self._dirty.add(tid)
        else:
            self._dirty.discard(tid)

    def _apply_tensor(
        self,
        tid: int,
        resident: bool,
        residual: float,
        fraction: float | None,
    ) -> bool:
        """Set one tensor's full state; returns whether anything changed."""
        hasf = fraction is not None
        frac = fraction if hasf else 0.0
        if (
            bool(self._resident[tid]) == resident
            and self._residual[tid] == residual
            and bool(self._has_frac[tid]) == hasf
            and self._frac[tid] == frac
        ):
            return False
        self._resident[tid] = 1 if resident else 0
        self._residual[tid] = residual
        self._has_frac[tid] = 1 if hasf else 0
        self._frac[tid] = frac
        if resident or residual or hasf:
            self._dirty.add(tid)
        else:
            self._dirty.discard(tid)
        return True

    def _transition(self, changes: Iterable[tuple[int, bool, float, float | None]]) -> float:
        """Apply per-tensor changes, recompute affected nodes, push undo.

        Returns the summed latency delta over the affected nodes (the
        per-node differences, accumulated in schedule order).
        """
        tensor_snaps: list[tuple] = []
        affected: set[int] = set()
        for tid, resident, residual, fraction in changes:
            snap = self._snapshot(tid)
            if self._apply_tensor(tid, resident, residual, fraction):
                tensor_snaps.append(snap)
                affected.update(self.tensor_nodes[tid])
            # else: no-op change; nothing recorded.
        node_snaps: list[tuple] = []
        delta = 0.0
        for ni in sorted(affected):
            old_lat = self._node_lat[ni]
            node_snaps.append((ni, old_lat, self._node_sums[ni]))
            self._recompute_node(ni)
            delta += self._node_lat[ni] - old_lat
        self._undo_stack.append((tensor_snaps, node_snaps))
        self.stats.applies += 1
        return delta

    def apply(
        self,
        add: Iterable[str] = (),
        drop: Iterable[str] = (),
        residuals: Mapping[str, float] | None = None,
        fractions: Mapping[str, float] | None = None,
    ) -> float:
        """Incrementally mutate the allocation state; undoable.

        Args:
            add: Tensor names to pin fully on chip (residual defaults to
                the tensor's current residual, normally 0).
            drop: Tensor names to move back off chip.
            residuals: Residual seconds to set for (resident) tensors.
            fractions: Partial-residency fractions to set for off-chip
                tensors.

        Returns:
            The latency delta over affected nodes (negative = faster).
            Unknown tensor names are ignored, matching the naive
            evaluator's set-membership semantics.
        """
        changes: list[tuple[int, bool, float, float | None]] = []
        index = self.tensor_index
        for name in add:
            tid = index.get(name)
            if tid is not None:
                changes.append((tid, True, self._residual[tid], None))
        for name in drop:
            tid = index.get(name)
            if tid is not None:
                changes.append((tid, False, 0.0, None))
        if residuals:
            for name, value in residuals.items():
                tid = index.get(name)
                if tid is not None:
                    changes.append((tid, True, value, None))
        if fractions:
            for name, value in fractions.items():
                tid = index.get(name)
                if tid is not None and not self._resident[tid]:
                    changes.append((tid, False, 0.0, value))
        return self._transition(changes)

    def undo(self) -> float:
        """Roll back the most recent ``apply``/``set_state`` transition.

        Restores the saved per-node latencies directly (no recomputation),
        so the cached values remain bit-identical to a fresh evaluation.

        Returns:
            The latency delta of the rollback over the affected nodes.
        """
        if not self._undo_stack:
            raise RuntimeError("undo() with no transition to roll back")
        tensor_snaps, node_snaps = self._undo_stack.pop()
        # One transition may change the same tensor more than once (e.g.
        # an add followed by a residual); unwind the layered snapshots in
        # reverse so the first one — the true prior state — lands last.
        for snap in reversed(tensor_snaps):
            self._restore(snap)
        delta = 0.0
        for ni, old_lat, old_sums in node_snaps:
            delta += old_lat - self._node_lat[ni]
            self._node_lat[ni] = old_lat
            self._node_sums[ni] = old_sums
        self.stats.undos += 1
        return delta

    def set_state(
        self,
        onchip: Iterable[str] = frozenset(),
        residuals: Mapping[str, float] | None = None,
        fractions: Mapping[str, float] | None = None,
    ) -> float:
        """Jump to an absolute allocation state (diffed incrementally).

        Tensors not named revert to off-chip with no residual/fraction.
        Only the nodes of tensors whose state actually changes are
        recomputed.  Unlike :meth:`apply`, a jump is a barrier: it clears
        the undo stack, since callers use it to reset between candidate
        allocations, never to roll back.

        Returns:
            The latency delta of the jump.
        """
        fault_point("engine.set_state")
        index = self.tensor_index
        target: dict[int, tuple[bool, float, float | None]] = {}
        for name in onchip:
            tid = index.get(name)
            if tid is not None:
                target[tid] = (True, 0.0, None)
        if residuals:
            for name, value in residuals.items():
                tid = index.get(name)
                if tid is not None and tid in target:
                    # Residuals only apply to resident tensors, exactly as
                    # LayerLatency.slot_latency consults them.
                    target[tid] = (True, value, None)
        if fractions:
            for name, value in fractions.items():
                tid = index.get(name)
                if tid is not None and tid not in target:
                    target[tid] = (False, 0.0, value)
        changes: list[tuple[int, bool, float, float | None]] = []
        for tid in self._dirty - set(target):
            changes.append((tid, False, 0.0, None))
        for tid, (resident, residual, fraction) in target.items():
            changes.append((tid, resident, residual, fraction))
        delta = self._transition(changes)
        self._undo_stack.clear()
        return delta

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total(self) -> float:
        """End-to-end latency under the current state.

        Re-sums the cached per-node latencies in schedule order, which is
        bit-for-bit what ``LatencyModel.total_latency`` computes for the
        same state.
        """
        return sum(self._node_lat)

    def node_latency(self, name: str) -> float:
        """Cached Eq. 1 latency of one node under the current state."""
        return self._node_lat[self.node_index[name]]

    def node_latency_list(self) -> list[float]:
        """Cached per-node latencies in schedule order."""
        return list(self._node_lat)

    def node_latencies(self) -> dict[str, float]:
        """Cached per-node latencies keyed by node name."""
        return dict(zip(self.node_names, self._node_lat))

    def weight_demand(self, ni: int) -> float:
        """Current weight-interface sum of one node (by schedule index).

        Equals ``LayerLatency.slot_latency(TensorKind.WEIGHT, ...)`` under
        the current state — the demand term of the prefetch hiding
        capacity.
        """
        return self._node_sums[ni][1]

    def onchip(self) -> frozenset[str]:
        """Tensor values currently fully resident."""
        names = []
        for name, tid in self.tensor_index.items():
            if self._resident[tid]:
                names.append(name)
        return frozenset(names)

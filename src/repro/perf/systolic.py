"""Systolic array and accelerator design point.

The compute fabric follows [18]: a 2-D systolic array of PEs with a SIMD
dimension inside each PE.  Output channels map to array rows, input
channels to the SIMD lanes and spatial positions to array columns, so a
layer only wastes compute when its channel counts are not multiples of the
corresponding array dimensions — which is the "reduction of actual
operations" effect the paper mentions in Sec. 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.fpga import FPGADevice, VU9P
from repro.hw.memory import DDRSystem, make_vu9p_ddr
from repro.hw.precision import INT8, Precision
from repro.ir.layer import GemmDims
from repro.perf.tiling import TileConfig


@dataclass(frozen=True)
class SystolicArray:
    """Shape of the PE array.

    Attributes:
        rows: Array rows; output channels map here.
        cols: Array columns; output spatial positions map here.
        simd: SIMD lanes per PE; input channels map here.
    """

    rows: int
    cols: int
    simd: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.simd) <= 0:
            raise ValueError(f"array dimensions must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Parallel multiply-accumulate units."""
        return self.rows * self.cols * self.simd

    def dsp_slices(self, precision: Precision) -> int:
        """DSP slices the array consumes at a precision."""
        return self.macs * precision.dsps_per_mac

    def effective_macs(self, out_channels: int, in_channels: int) -> float:
        """MAC count adjusted for channel-dimension padding waste.

        A layer whose output (input) channel count is not a multiple of
        ``rows`` (``simd``) leaves part of the array idle; the effective
        throughput shrinks by the padding ratio.
        """
        m_eff = out_channels / (math.ceil(out_channels / self.rows) * self.rows)
        c_eff = in_channels / (math.ceil(in_channels / self.simd) * self.simd)
        return self.macs * m_eff * c_eff

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols}x{self.simd}"

    @property
    def reduction_lanes(self) -> int:
        """Lanes reducing one output element's dot product per cycle.

        The GEMM mapping folds the reduction (N) dimension over both the
        array rows and the SIMD depth of each PE — the generalisation of
        the reference model's 2-D ``ceil(N / rows)`` term to PEs that are
        ``simd`` deep.
        """
        return self.rows * self.simd


# ----------------------------------------------------------------------
# Systolic GEMM cycle model
# ----------------------------------------------------------------------
# Follows the reference systolic simulator's compute model:
#
#     cycles = C * (B * M) * ceil(N / rows) * ceil(P / cols)
#              + pipeline fill (rows + cols)
#
# with the reduction folded over ``rows * simd`` lanes (see
# ``SystolicArray.reduction_lanes``) and the P loop executed tile by tile,
# so the ceil() waste is paid per tile — tile-boundary-exact, which the
# hypothesis property tests pin down.  These helpers are shared by the
# latency model, the tile simulator and the DSE sweep scorer so all three
# agree bit for bit by construction.


def _tiled_ceil_sum(total: int, tile: int, unit: int) -> int:
    """``sum(ceil(t / unit) for t in tiles-of(total, tile))`` in O(1).

    ``total`` split into ``ceil(total / tile)`` tiles (last one ragged),
    each padded up to a multiple of ``unit``.
    """
    full, rem = divmod(total, tile)
    out = full * math.ceil(tile / unit)
    if rem:
        out += math.ceil(rem / unit)
    return out


def gemm_compute_cycles(dims: GemmDims, array: SystolicArray, tile: TileConfig) -> int:
    """Cycles to execute one (batched) GEMM under a tile schedule.

    Per output-feature tile the array streams ``M`` token rows, reducing
    ``N`` over the ``rows * simd`` lanes and spreading the tile's output
    features over the columns; every tile additionally pays the
    ``rows + cols`` systolic pipeline fill.
    """
    inner = dims.m * math.ceil(dims.n / array.reduction_lanes) * _tiled_ceil_sum(
        dims.p, tile.tm, array.cols
    )
    fill = (array.rows + array.cols) * tile.gemm_row_trips(dims.m) * tile.gemm_output_trips(dims.p)
    return dims.batch * (inner + fill)


def gemm_cycles_lower_bound(dims: GemmDims, array: SystolicArray) -> int:
    """Cycles under the best possible tile schedule (single tile, one fill).

    ``_tiled_ceil_sum(p, tm, cols) >= ceil(p / cols)`` for every ``tm`` and
    the fill term is paid at least once, so this bounds
    :func:`gemm_compute_cycles` from below over all tile configurations —
    the property the DSE roofline pruning relies on.
    """
    inner = dims.m * math.ceil(dims.n / array.reduction_lanes) * math.ceil(dims.p / array.cols)
    return dims.batch * (inner + array.rows + array.cols)


def gemm_reload_trips(
    dims: GemmDims,
    tile: TileConfig,
    element_bytes: int,
    if_resident_cap: int,
    wt_resident_cap: int,
) -> tuple[int, int]:
    """Per-layer schedule selection for a GEMM: (input, weight) reloads.

    The mirror image of the conv reload model: with output features
    outermost the activation matrix streams once per output-feature tile
    (``ceil(P / tm)``) and the weight matrix once per token-row tile
    (``ceil(M / (th * tw))``).  When a residency buffer fits the
    corresponding working set — one row tile of activations over the full
    reduction depth, or one output-feature tile of weights — the reload
    factor drops to one.
    """
    n_if = tile.gemm_output_trips(dims.p)
    n_wt = tile.gemm_row_trips(dims.m)
    if n_if > 1 and if_resident_cap > 0:
        if_working_set = dims.n * tile.gemm_rows * element_bytes
        if if_working_set <= if_resident_cap:
            n_if = 1
    if n_wt > 1 and wt_resident_cap > 0:
        wt_working_set = tile.tm * dims.n * element_bytes
        if wt_working_set <= wt_resident_cap:
            n_wt = 1
    return n_if, n_wt


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator design point: fabric + clock + tiling + memory system.

    This is what the external DSE of [18] would emit and what LCMM consumes
    (the "tensor vectors" input of Fig. 4 in the paper).

    Attributes:
        name: Design label for reports (``"umm-int8"``...).
        precision: Arithmetic precision.
        array: Systolic array shape.
        tile: Loop tiling of the convolution nest.
        frequency: Achieved clock in Hz (LCMM designs close timing slightly
            lower than UMM ones, Tab. 1: 190 vs 180 MHz).
        device: Target FPGA.
        ddr: Off-chip memory system; defaults to the paper's three-way
            bandwidth split on the device.
        ddr_efficiency: Fraction of theoretical interface bandwidth
            sustained in practice (DDR4 burst/refresh overheads).
        if_resident_cap: Input-residency buffer capacity in bytes.  When a
            layer's full input-channel working set for one spatial tile
            fits, the per-layer schedule keeps it resident and streams the
            input from DDR only once instead of once per output-channel
            tile (loop-order selection of the DSE in [18]).  Zero disables
            the option.
        wt_resident_cap: Weight-residency buffer capacity in bytes; the
            analogous option that loads a layer's weights once instead of
            once per spatial tile.  Zero disables.
    """

    name: str
    precision: Precision
    array: SystolicArray
    tile: TileConfig
    frequency: float
    device: FPGADevice = VU9P
    ddr: DDRSystem | None = None
    ddr_efficiency: float = 1.0
    if_resident_cap: int = 0
    wt_resident_cap: int = 0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if not 0.0 < self.ddr_efficiency <= 1.0:
            raise ValueError("ddr_efficiency must be in (0, 1]")
        if self.array.dsp_slices(self.precision) > self.device.dsp_slices:
            raise ValueError(
                f"array {self.array} needs {self.array.dsp_slices(self.precision)} DSPs, "
                f"device {self.device.name} has {self.device.dsp_slices}"
            )
        if self.ddr is None:
            object.__setattr__(self, "ddr", make_vu9p_ddr(self.device))

    @property
    def peak_ops(self) -> float:
        """Peak throughput in ops/second (one MAC = two ops)."""
        return 2.0 * self.array.macs * self.frequency

    @property
    def dsp_utilization(self) -> float:
        """Fraction of device DSP slices the array consumes."""
        return self.array.dsp_slices(self.precision) / self.device.dsp_slices

    def interface_bandwidth(self, kind: str) -> float:
        """Sustained bandwidth of one memory interface in bytes/second."""
        assert self.ddr is not None
        return self.ddr.interface(kind).bandwidth * self.ddr_efficiency

    def tile_buffer_bytes(self) -> int:
        """On-chip footprint of the double-buffered tile buffers.

        Includes the residency buffers when enabled — they belong to the
        baseline design's SRAM bill, not to LCMM's tensor budget.
        """
        base = self.tile.tile_buffer_bytes(self.precision.bytes)
        return base + 2 * (self.if_resident_cap + self.wt_resident_cap)


#: Array shapes used by the reference experiments, chosen so the DSP
#: utilisation matches Tab. 1 (83% for RN/GN, 75% for IN) and channel
#: counts of the benchmark models divide evenly.
_DEFAULT_ARRAYS = {
    "int8": SystolicArray(rows=32, cols=16, simd=11),   # 5632 MACs, 5632 DSPs
    "int16": SystolicArray(rows=32, cols=16, simd=11),  # 5632 MACs, 5632 DSPs
    "fp32": SystolicArray(rows=16, cols=8, simd=8),     # 1024 MACs, 5120 DSPs
}

#: Default tile configurations per precision.  The output-channel tile is
#: tied to the array rows; the fp32 array is smaller, so its tiles are too
#: (which is why the paper's 32-bit baselines stay memory bound despite the
#: lower compute throughput).
_DEFAULT_TILES = {
    "int8": TileConfig(tm=32, tn=32, th=14, tw=14),
    "int16": TileConfig(tm=32, tn=32, th=14, tw=14),
    "fp32": TileConfig(tm=16, tn=16, th=7, tw=7),
}


def default_accelerator(
    precision: Precision = INT8,
    frequency: float = 190e6,
    name: str | None = None,
    tile: TileConfig | None = None,
    ddr_efficiency: float = 1.0,
    device: FPGADevice = VU9P,
    if_resident_cap: int = 0,
    wt_resident_cap: int = 0,
) -> AcceleratorConfig:
    """A reasonable design point at a precision, before DSE refinement."""
    array = _DEFAULT_ARRAYS.get(precision.name)
    if array is None:
        raise KeyError(f"no default array for precision {precision.name!r}")
    return AcceleratorConfig(
        name=name or f"default-{precision.name}",
        precision=precision,
        array=array,
        tile=tile or _DEFAULT_TILES[precision.name],
        frequency=frequency,
        device=device,
        ddr_efficiency=ddr_efficiency,
        if_resident_cap=if_resident_cap,
        wt_resident_cap=wt_resident_cap,
    )

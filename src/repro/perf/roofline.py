"""Roofline characterisation (Fig. 2(a) of the paper).

Plots every layer of a model as a point (operation intensity, attainable
performance) against the device's computational roof and bandwidth roof,
and classifies layers as memory or compute bound.  Operation intensity is
"operations per off-chip data transfer" (Sec. 2.2) — the transfer counts
tile reloads, exactly what the accelerator's dataflow actually moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's coordinates in the roofline plot.

    Attributes:
        node: Layer name.
        operation_intensity: Ops per byte of off-chip transfer.
        attainable_ops: min(compute roof, OI x bandwidth), ops/second.
        achieved_ops: Ops/second the latency model predicts under UMM.
        bandwidth_requirement: Bytes/second needed to never stall.
        memory_bound: Whether transfer limits the layer under UMM.
    """

    node: str
    operation_intensity: float
    attainable_ops: float
    achieved_ops: float
    bandwidth_requirement: float
    memory_bound: bool


class RooflineModel:
    """Layer-by-layer roofline analysis of a model on a design point.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point.
        model: Optional pre-built latency model to reuse.
    """

    def __init__(
        self,
        graph: ComputationGraph,
        accel: AcceleratorConfig,
        model: LatencyModel | None = None,
    ) -> None:
        self.graph = graph
        self.accel = accel
        self.model = model or LatencyModel(graph, accel)

    @property
    def compute_roof(self) -> float:
        """Peak performance of the design in ops/second."""
        return self.accel.peak_ops

    @property
    def interface_bandwidth(self) -> float:
        """Sustained bandwidth of one memory interface, bytes/second."""
        return self.accel.interface_bandwidth("if")

    def attainable(self, operation_intensity: float) -> float:
        """Roofline-attainable performance at an operation intensity."""
        if operation_intensity < 0:
            raise ValueError("operation intensity must be non-negative")
        return min(self.compute_roof, operation_intensity * self.interface_bandwidth)

    def ridge_point(self) -> float:
        """Operation intensity where the bandwidth roof meets the compute roof."""
        return self.compute_roof / self.interface_bandwidth

    def point(self, node: str) -> RooflinePoint:
        """Roofline coordinates of one executed layer."""
        ll = self.model.layer(node)
        # Weight-less ops (pool/eltwise) count one op per output element.
        ops = 2 * ll.macs if ll.macs else 2 * self.graph.output_shape(node).volume
        total_bytes = ll.total_transfer_bytes
        oi = ops / total_bytes if total_bytes else float("inf")
        umm_latency = ll.latency()
        achieved = ops / umm_latency if umm_latency > 0 else 0.0
        return RooflinePoint(
            node=node,
            operation_intensity=oi,
            attainable_ops=self.attainable(oi) if oi != float("inf") else self.compute_roof,
            achieved_ops=achieved,
            bandwidth_requirement=self.model.bandwidth_requirement(node),
            memory_bound=ll.is_memory_bound,
        )

    def points(self, convs_only: bool = False) -> list[RooflinePoint]:
        """Roofline coordinates of all executed layers.

        Args:
            convs_only: Restrict to conv/FC layers, as Fig. 2(a) does.
        """
        nodes = self.model.nodes()
        if convs_only:
            weighted = set(self.graph.conv_layers())
            nodes = [n for n in nodes if n in weighted]
        return [self.point(n) for n in nodes]

    def memory_bound_count(self, convs_only: bool = False) -> tuple[int, int]:
        """(memory-bound layers, total layers) — the paper's 82-of-141."""
        pts = self.points(convs_only=convs_only)
        return sum(1 for p in pts if p.memory_bound), len(pts)

    def memory_bound_fraction(self, convs_only: bool = False) -> float:
        """Fraction of layers that are memory bound."""
        bound, total = self.memory_bound_count(convs_only=convs_only)
        return bound / total if total else 0.0


def sweep_lower_bound(graph, base, scorer=None) -> float:
    """UMM latency floor of a base design over *all* tile choices.

    The roofline idea applied to the tile sweep: evaluate the latency
    model with every reload trip count at its floor of 1, i.e. each
    tensor streamed from DDR exactly once — no tile can transfer less,
    and compute/output terms are tile-invariant.  The result bounds
    ``explore_designs`` from below for the base, so a base whose floor
    already exceeds the best design found elsewhere is provably
    dominated and :func:`repro.perf.space.explore_space` can discard all
    of its tiles unscored.

    Args:
        graph: The DNN computation graph.
        base: Design point whose tile axis is being swept.
        scorer: Optional pre-built ``_SweepScorer`` for (graph, base),
            reused instead of re-characterising the graph.
    """
    from repro.perf.dse import _SweepScorer  # deferred: dse sits above roofline

    if scorer is None:
        scorer = _SweepScorer(graph, base)
    return scorer.lower_bound()

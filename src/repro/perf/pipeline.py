"""Multi-accelerator pipelining with per-stage LCMM (the paper's future work).

The conclusion of the paper notes that LCMM "is orthogonal to the
heterogeneous design methodology [TGPA, 17] which could be integrated into
our designs in the future to further improve performance density".  This
module performs that integration:

* the network's schedule is split into ``k`` contiguous **stages**;
* each stage gets its own systolic sub-array (the DSP budget divides
  between stages) and its own slice of the on-chip memory;
* consecutive stages stream feature tiles to each other on chip (as TGPA
  does), so stage-boundary tensors pay no DDR transfer;
* LCMM runs *inside* every stage, pinning that stage's memory-bound
  tensors into its SRAM slice;
* images pipeline through the stages: the steady-state period is the
  slowest stage, so throughput scales with balanced stages while
  single-image latency stays the sum.

Stage boundaries are chosen by an optimal contiguous partition (binary
search over the bottleneck value) of the per-node latencies under the
per-stage array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import ComputationGraph
from repro.ir.tensor import feature_tensor_name
from repro.lcmm.framework import LCMMOptions, LCMMResult, run_lcmm
from repro.perf.latency import LatencyModel
from repro.perf.partition import stage_subgraph
from repro.perf.systolic import AcceleratorConfig, SystolicArray


def balanced_contiguous_partition(weights: list[float], k: int) -> list[int]:
    """Split ``weights`` into ``k`` contiguous runs minimising the max sum.

    Args:
        weights: Non-negative per-item weights, in order.
        k: Number of runs (1 <= k <= len(weights)).

    Returns:
        Boundary indices: run ``i`` covers ``weights[b[i]:b[i+1]]`` for the
        implied boundary list ``[0] + returned + [len(weights)]``.  Always
        exactly ``k - 1`` strictly increasing cuts — degenerate weight
        vectors are padded deterministically, so a ``k``-stage request
        never silently yields a shallower pipeline.

    Raises:
        ValueError: On an infeasible ``k``.
    """
    if not 1 <= k <= len(weights):
        raise ValueError(f"cannot split {len(weights)} items into {k} runs")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")

    def runs_needed(cap: float) -> tuple[int, list[int]]:
        runs, total = 1, 0.0
        cuts: list[int] = []
        for idx, w in enumerate(weights):
            if total + w > cap and total > 0:
                runs += 1
                cuts.append(idx)
                total = w
            else:
                total += w
        return runs, cuts

    lo, hi = max(weights), sum(weights)
    for _ in range(60):  # float binary search converges long before this
        mid = (lo + hi) / 2
        needed, _ = runs_needed(mid)
        if needed <= k:
            hi = mid
        else:
            lo = mid
    _, cuts = runs_needed(hi)
    # The greedy walk can emit fewer than k - 1 cuts (degenerate weight
    # vectors: zeros, one dominant item), but callers size pipelines by
    # len(cuts) + 1 and must get the depth they asked for.  Pad
    # deterministically to exactly k runs: split the heaviest splittable
    # run at the position that best balances its halves (leftmost on ties).
    while len(cuts) < k - 1:
        boundaries = [0] + cuts + [len(weights)]
        best_run, best_sum = -1, -1.0
        for r in range(len(boundaries) - 1):
            lo_b, hi_b = boundaries[r], boundaries[r + 1]
            if hi_b - lo_b < 2:
                continue
            run_sum = sum(weights[lo_b:hi_b])
            if run_sum > best_sum:
                best_run, best_sum = r, run_sum
        lo_b, hi_b = boundaries[best_run], boundaries[best_run + 1]
        total = sum(weights[lo_b:hi_b])
        split, split_cost = lo_b + 1, float("inf")
        left = 0.0
        for pos in range(lo_b + 1, hi_b):
            left += weights[pos - 1]
            cost = max(left, total - left)
            if cost < split_cost:
                split, split_cost = pos, cost
        cuts = sorted(cuts + [split])
    return cuts


@dataclass
class PipelineStage:
    """One stage of the pipelined design.

    Attributes:
        index: Stage number, 0-based.
        nodes: Executed nodes of this stage, in schedule order.
        accel: The stage's design point (its sub-array).
        lcmm: The stage-local allocation.
        latency: Stage latency for one image, boundary streams excluded.
    """

    index: int
    nodes: list[str]
    accel: AcceleratorConfig
    lcmm: LCMMResult
    latency: float


@dataclass
class PipelineResult:
    """Outcome of a pipelined multi-accelerator design.

    Attributes:
        stages: The pipeline stages in order.
        image_latency: One image's end-to-end latency (sum of stages).
        period: Steady-state initiation interval (the slowest stage).
    """

    stages: list[PipelineStage]
    image_latency: float
    period: float

    @property
    def steady_state_throughput(self) -> float:
        """Images per second once the pipeline is full."""
        return 1.0 / self.period

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)


def _stage_array(base: SystolicArray, k: int) -> SystolicArray:
    """Divide the array between ``k`` stages along the column dimension."""
    cols = max(1, base.cols // k)
    return SystolicArray(rows=base.rows, cols=cols, simd=base.simd)


def _clamp_to_budget(array: SystolicArray, mac_budget: int) -> SystolicArray:
    """Shrink an array until it fits a per-stage MAC budget.

    Halves the cheapest dimension first (columns, then SIMD, then rows)
    so the shape degrades the way :func:`_stage_array` grows it.  The
    1x1x1 array always fits any positive budget.
    """
    rows, cols, simd = array.rows, array.cols, array.simd
    while rows * cols * simd > mac_budget:
        if cols > 1:
            cols //= 2
        elif simd > 1:
            simd //= 2
        elif rows > 1:
            rows //= 2
        else:
            break
    return SystolicArray(rows=rows, cols=cols, simd=simd)


#: Candidate dimensions for per-stage array tuning.
_ROW_CANDIDATES = (8, 16, 32, 64)
_COL_CANDIDATES = (1, 2, 4, 8, 16)
_SIMD_CANDIDATES = (2, 4, 8, 11, 16)


def tune_stage_array(
    graph: ComputationGraph,
    nodes: list[str],
    mac_budget: int,
    fallback: SystolicArray,
) -> SystolicArray:
    """Pick the array shape that minimises a stage's compute cycles.

    This is the heterogeneity of TGPA [17]: each stage's array matches
    *its* layers' channel geometry, cutting the padding waste a uniform
    array pays on mismatched layers.

    Args:
        graph: The network.
        nodes: The stage's executed nodes.
        mac_budget: Maximum MAC units the stage's array may use.
        fallback: Shape to fall back on if nothing fits the budget.  The
            fallback is clamped to ``mac_budget`` too — the uniform
            split divides only the column dimension, so ``rows * simd``
            alone can exceed a deep pipeline's per-stage share, and an
            unclamped fallback would overcommit the device's DSPs.
    """
    fallback = _clamp_to_budget(fallback, max(1, mac_budget))
    jobs = []
    for name in nodes:
        layer = graph.layer(name)
        if not layer.has_weights:
            continue
        out = graph.output_shape(name)
        in_channels = getattr(layer, "in_channels", 0) or getattr(
            layer, "in_features", 0
        ) or out.channels
        jobs.append((layer.macs(graph.input_shapes(name)), out.channels, in_channels))
    if not jobs:
        return fallback

    best: SystolicArray | None = None
    best_cycles = float("inf")
    for rows in _ROW_CANDIDATES:
        for cols in _COL_CANDIDATES:
            for simd in _SIMD_CANDIDATES:
                if rows * cols * simd > mac_budget:
                    continue
                array = SystolicArray(rows=rows, cols=cols, simd=simd)
                cycles = sum(
                    macs / array.effective_macs(m, c) for macs, m, c in jobs
                )
                if cycles < best_cycles:
                    best_cycles = cycles
                    best = array
    if best is None:
        return fallback
    return best


def _stage_accel(
    base: AcceleratorConfig,
    array: SystolicArray,
    index: int,
) -> AcceleratorConfig:
    return AcceleratorConfig(
        name=f"{base.name}-stage{index}",
        precision=base.precision,
        array=array,
        tile=base.tile,
        frequency=base.frequency,
        device=base.device,
        ddr=base.ddr,
        ddr_efficiency=base.ddr_efficiency,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


def _stage_latency(
    model: LatencyModel,
    nodes: list[str],
    lcmm: LCMMResult,
    streamed: frozenset[str],
) -> float:
    """Stage latency with boundary tensors streamed on chip for free."""
    onchip = frozenset(lcmm.onchip_tensors | streamed)
    return sum(
        model.node_latency(node, onchip, lcmm.residuals) for node in nodes
    )


def design_pipeline(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    num_stages: int,
    options: LCMMOptions | None = None,
    sram_share: float | None = None,
    tune_arrays: bool = True,
) -> PipelineResult:
    """Build a ``num_stages``-deep pipelined design with per-stage LCMM.

    Args:
        graph: The DNN computation graph.
        base: Single-accelerator design point to divide between stages.
        num_stages: Pipeline depth (1 reproduces the plain LCMM design).
        options: LCMM switches applied inside every stage.
        sram_share: Fraction of the device SRAM available to each stage;
            defaults to an even split.
        tune_arrays: Give each stage an array shape tuned to its layers
            (the TGPA heterogeneity); False divides the base array evenly.

    Raises:
        ValueError: On a pipeline deeper than the executed layer count.
    """
    schedule = graph.compute_schedule()
    if not 1 <= num_stages <= len(schedule):
        raise ValueError(
            f"cannot pipeline {len(schedule)} layers into {num_stages} stages"
        )
    if sram_share is None:
        sram_share = 1.0 / num_stages
    if not 0.0 < sram_share <= 1.0:
        raise ValueError("sram_share must be in (0, 1]")

    uniform_array = _stage_array(base.array, num_stages)
    stage_base = _stage_accel(base, uniform_array, 0)
    balance_model = LatencyModel(graph, stage_base)
    weights = [balance_model.node_latency(n) for n in schedule]
    cuts = balanced_contiguous_partition(weights, num_stages)
    boundaries = [0] + cuts + [len(schedule)]

    # Stage-boundary feature values stream between accelerators on chip.
    streamed: set[str] = set()
    stage_node_sets = [
        set(schedule[boundaries[i] : boundaries[i + 1]])
        for i in range(len(boundaries) - 1)
    ]
    node_stage = {
        node: idx for idx, nodes in enumerate(stage_node_sets) for node in nodes
    }
    for tensor in graph.feature_tensors():
        if tensor.producer not in node_stage:
            continue
        producer_stage = node_stage[tensor.producer]
        if any(node_stage.get(c) != producer_stage for c in tensor.consumers):
            streamed.add(tensor.name)
    streamed_frozen = frozenset(streamed)

    # One shared model per stage design point (stages share the array
    # geometry, so one model suffices).
    stages: list[PipelineStage] = []
    options = options or LCMMOptions()
    stage_options = LCMMOptions(
        feature_reuse=options.feature_reuse,
        weight_prefetch=options.weight_prefetch,
        splitting=options.splitting,
        use_greedy=options.use_greedy,
        granularity=options.granularity,
        sram_budget=int(base.device.sram_bytes * sram_share),
        prefetch_refinement=options.prefetch_refinement,
    )
    mac_budget = max(1, base.array.macs // num_stages)
    for idx in range(len(boundaries) - 1):
        nodes = schedule[boundaries[idx] : boundaries[idx + 1]]
        if tune_arrays:
            array = tune_stage_array(graph, list(nodes), mac_budget, uniform_array)
        else:
            array = uniform_array
        accel = _stage_accel(base, array, idx)
        # LCMM runs on the stage *subgraph*, so the stage's SRAM slice
        # can only hold tensors its own nodes live with.  (The previous
        # whole-graph run let a stage pin foreign-stage tensors into its
        # slice — burning budget on tensors that never cut its latency.)
        if len(nodes) == len(schedule):
            stage_graph = graph  # single stage: bit-identical to plain LCMM
        else:
            stage_graph = stage_subgraph(graph, list(nodes), idx)
        model = LatencyModel(stage_graph, accel)
        lcmm = run_lcmm(stage_graph, accel, options=stage_options, model=model)
        latency = _stage_latency(model, list(nodes), lcmm, streamed_frozen)
        stages.append(
            PipelineStage(
                index=idx, nodes=list(nodes), accel=accel, lcmm=lcmm, latency=latency
            )
        )

    image_latency = sum(s.latency for s in stages)
    period = max(s.latency for s in stages)
    return PipelineResult(
        stages=stages, image_latency=image_latency, period=period
    )

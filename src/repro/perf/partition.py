"""Multi-die layer-pipelined partitioning with an inter-die link model.

ROADMAP item 5 — the scale-out axis.  The network is partitioned into
``k`` contiguous stages, one per FPGA **die**, arranged as a linear
daisy-chain pipeline (AutoWS's deployment model for weight-streamed
transformers; TGPA's for heterogeneous CNN stages):

* every die is a *whole* device: it keeps its own SRAM budget, its own
  DDR channels and (by default) the full systolic array of the base
  design point — compute and memory genuinely scale with the die count,
  unlike the single-chip fabric-division of :mod:`repro.perf.pipeline`;
* stage-boundary feature tensors are **not free**: they cross the
  inter-die link at a configurable per-link bandwidth.  A tensor
  consumed two stages downstream physically traverses every link in
  between (store-and-forward on the chain), so each cut's traffic is the
  classic edge-cut of the dataflow graph at that schedule position;
* per-die LCMM runs on a **stage subgraph** containing only the stage's
  own nodes (boundary inputs become proxy input layers), so a die can
  only spend its SRAM on tensors its own nodes live with — the
  whole-graph over-approximation of the single-chip sketch cannot
  happen by construction;
* stage boundaries are chosen by a dynamic program over true per-stage
  costs *including* link time: ``cost(i, j) = max(sum of node
  latencies, receive time at cut i, send time at cut j)`` — the Eq.-1
  ``max(compute, transfer)`` shape lifted to the stage level, since the
  link streams while the die computes;
* steady-state batch throughput integrates with
  :mod:`repro.perf.batching`: persistent per-die weight buffers pay
  their prefetch once, so the pipeline period is the slowest stage's
  *steady* latency including its link time.

Degradation: the requested die count clamps to ``[1, min(8, layers)]``;
with the link model off (``link=None``) or when the partitioned design
does not beat the single-die baseline, the result falls back to the
single-die compilation (accept-if-improves, the PR-9 pass idiom).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.graph import ComputationGraph
from repro.ir.layer import InputLayer, OpType
from repro.ir.tensor import feature_tensor_name
from repro.lcmm.framework import LCMMOptions, LCMMResult, run_lcmm
from repro.perf.batching import BatchResult, persistent_weight_tensors
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig

__all__ = [
    "MAX_DEVICES",
    "InterDieLink",
    "DieStage",
    "PartitionResult",
    "cut_traffic_bytes",
    "design_partition",
    "partition_batched_latency",
    "stage_subgraph",
    "throughput_balanced_cuts",
]

#: Hard ceiling on the pipeline depth — the largest multi-FPGA chain the
#: deployment model targets; requests above it clamp (and report it).
MAX_DEVICES = 8


@dataclass(frozen=True)
class InterDieLink:
    """One direction of the serial link between neighbouring dies.

    Attributes:
        gbps: Raw link bandwidth in GB/s (1 GB = 1e9 bytes) — e.g. 12.5
            for a 100 GbE chain, ~30 for an Aurora quad.
        efficiency: Fraction of the raw bandwidth sustained after
            protocol framing/flow-control overheads.
    """

    gbps: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError(f"link bandwidth must be positive, got {self.gbps}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("link efficiency must be in (0, 1]")

    @property
    def bytes_per_second(self) -> float:
        """Sustained bandwidth in bytes/second."""
        return self.gbps * 1e9 * self.efficiency

    def latency(self, num_bytes: int | float) -> float:
        """Seconds to move ``num_bytes`` across the link."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.bytes_per_second


def cut_traffic_bytes(graph: ComputationGraph, element_bytes: int) -> list[int]:
    """Bytes crossing every cut position of the compute schedule.

    Entry ``c`` is the feature-tensor traffic over a stage boundary
    placed *before* schedule index ``c``: every tensor produced at an
    index ``< c`` (the input image counts as index ``-1``: it enters at
    die 0) with a consumer at an index ``>= c``.  On a daisy-chain a
    tensor consumed several stages downstream is forwarded hop by hop,
    so it contributes to every cut it spans — this is exactly the
    per-link traffic, pass-through included.

    Entries 0 and ``n`` are always zero: host input and network output
    move through die DDR, not over an inter-die link (they are already
    charged as ordinary if/of slots of the latency model).
    """
    schedule = graph.compute_schedule()
    index = {name: i for i, name in enumerate(schedule)}
    traffic = [0] * (len(schedule) + 1)
    for tensor in graph.feature_tensors():
        producer_idx = index.get(tensor.producer, -1)
        consumer_idxs = [index[c] for c in tensor.consumers if c in index]
        if not consumer_idxs:
            continue
        last = max(consumer_idxs)
        num_bytes = tensor.bytes(element_bytes)
        # Range-add over the spanned cuts (producer_idx, last].
        for cut in range(max(producer_idx + 1, 1), min(last + 1, len(schedule))):
            traffic[cut] += num_bytes
    return traffic


def throughput_balanced_cuts(
    weights: list[float],
    cut_seconds: list[float],
    k: int,
) -> list[int]:
    """Optimal contiguous ``k``-partition under the linked-stage cost.

    Minimises the pipeline bottleneck where stage ``[i, j)`` costs
    ``max(sum(weights[i:j]), cut_seconds[i], cut_seconds[j])`` — compute
    overlapped with the stage's receive and send streams (the Eq.-1
    shape at stage granularity).  Unlike the binary-search pre-pass this
    sees the link time a candidate boundary would create, so it will
    shift a cut off a fat feature map onto a thin one even at the price
    of slightly less balanced compute.

    Args:
        weights: Per-node latencies, in schedule order (length ``n``).
        cut_seconds: Link seconds per cut position (length ``n + 1``;
            entries 0 and ``n`` must be 0).
        k: Stage count, ``1 <= k <= n``.

    Returns:
        Exactly ``k - 1`` strictly increasing cut indices in ``(0, n)``.

    Raises:
        ValueError: On an infeasible ``k`` or mismatched inputs.
    """
    n = len(weights)
    if not 1 <= k <= n:
        raise ValueError(f"cannot split {n} items into {k} runs")
    if len(cut_seconds) != n + 1:
        raise ValueError("cut_seconds must have one entry per cut position")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")

    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)

    def stage_cost(i: int, j: int) -> float:
        return max(prefix[j] - prefix[i], cut_seconds[i], cut_seconds[j])

    inf = float("inf")
    # dp[j] = minimal bottleneck of the first j items in s stages.
    dp = [0.0] + [inf] * n
    choice: list[list[int]] = []
    for s in range(1, k + 1):
        nxt = [inf] * (n + 1)
        arg = [0] * (n + 1)
        # Stage s covers (i, j]; previous stages cover the first i items.
        lo_j = s  # each stage is non-empty
        hi_j = n - (k - s)  # leave room for the remaining stages
        for j in range(lo_j, hi_j + 1):
            best, best_i = inf, -1
            for i in range(s - 1, j):
                if dp[i] >= best:
                    continue
                cost = max(dp[i], stage_cost(i, j))
                if cost < best:
                    best, best_i = cost, i
            nxt[j], arg[j] = best, best_i
        dp = nxt
        choice.append(arg)
    cuts: list[int] = []
    j = n
    for s in range(k, 1, -1):
        j = choice[s - 1][j]
        cuts.append(j)
    cuts.reverse()
    return cuts


def stage_subgraph(
    graph: ComputationGraph, stage_nodes: list[str], index: int
) -> ComputationGraph:
    """Extract one stage as a standalone graph with proxy inputs.

    The subgraph contains the stage's compute nodes (the original layer
    objects, shared — they are never mutated), any concat nodes they
    read through (concatenation is address steering and takes no
    execution step), and one proxy :class:`InputLayer` per boundary
    input, named after the foreign producer so every tensor identity
    (``f:<producer>``) matches the full graph.  LCMM on the subgraph can
    therefore only allocate the stage's *own* live tensors — boundary
    inputs behave exactly like the network input does on a single die
    (pinned on chip if the allocator finds it worthwhile, streamed from
    the die's DDR otherwise).
    """
    members = set(stage_nodes)
    concats: set[str] = set()
    proxies: set[str] = set()
    stack = [src for name in stage_nodes for src in graph.layer(name).inputs]
    while stack:
        src = stack.pop()
        if src in members or src in concats or src in proxies:
            continue
        if graph.layer(src).op_type is OpType.CONCAT:
            concats.add(src)
            stack.extend(graph.layer(src).inputs)
        else:
            proxies.add(src)
    sub = ComputationGraph(name=f"{graph.name}::stage{index}")
    for name in graph.schedule():
        if name in proxies:
            sub.add(InputLayer(name=name, shape=graph.output_shape(name)))
        elif name in members or name in concats:
            sub.add(graph.layer(name))
    sub.validate()
    return sub


@dataclass
class DieStage:
    """One die of the partitioned pipeline.

    Attributes:
        index: Die number along the chain, 0-based.
        nodes: Executed nodes of this stage, in schedule order.
        accel: The die's design point (a full device).
        lcmm: The stage-local allocation, computed on the stage subgraph.
        compute_latency: First-image stage latency excluding link time
            (per-node Eq. 1 sums plus prefetch residuals).
        steady_compute_latency: Steady-state stage latency excluding
            link time — persistent weight buffers no longer re-fill.
        recv_bytes: Boundary bytes received on the left link per image.
        send_bytes: Boundary bytes sent on the right link per image.
        recv_latency: Seconds the left link streams per image.
        send_latency: Seconds the right link streams per image.
    """

    index: int
    nodes: list[str]
    accel: AcceleratorConfig
    lcmm: LCMMResult
    compute_latency: float
    steady_compute_latency: float
    recv_bytes: int
    send_bytes: int
    recv_latency: float
    send_latency: float

    @property
    def latency(self) -> float:
        """First-image stage latency: compute overlapped with its links."""
        return max(self.compute_latency, self.recv_latency, self.send_latency)

    @property
    def steady_latency(self) -> float:
        """Steady-state stage latency: the term the period maximises."""
        return max(
            self.steady_compute_latency, self.recv_latency, self.send_latency
        )

    @property
    def link_bound(self) -> bool:
        """Whether a link, not compute, limits this stage's throughput."""
        return max(self.recv_latency, self.send_latency) > self.steady_compute_latency


@dataclass
class PartitionResult:
    """Outcome of a multi-die partitioned design.

    Attributes:
        stages: The per-die stages in chain order (one for single-die).
        boundaries: Schedule boundaries, ``len(stages) + 1`` entries.
        cut_bytes: Link traffic per internal cut, one per link.
        link: The inter-die link model (None when disabled).
        image_latency: One image end to end: every stage's first-image
            compute plus every link crossing on the critical path.
        period: Steady-state initiation interval — the slowest stage
            including its link time, after persistent weights settled.
        devices_requested: Die count the caller asked for.
        fell_back: Why the single-die result was kept, or None when the
            partitioned design was accepted.
        single_latency: Latency of the single-die baseline compilation.
    """

    stages: list[DieStage]
    boundaries: list[int]
    cut_bytes: list[int]
    link: InterDieLink | None
    image_latency: float
    period: float
    devices_requested: int
    fell_back: str | None = None
    single_latency: float = 0.0

    @property
    def num_devices(self) -> int:
        """Dies actually used after clamping/fallback."""
        return len(self.stages)

    @property
    def steady_state_throughput(self) -> float:
        """Images per second once the pipeline is full."""
        return 1.0 / self.period

    @property
    def speedup_vs_single(self) -> float:
        """Steady-state throughput gain over the single-die design."""
        return self.single_latency / self.period


def _die_accel(base: AcceleratorConfig, index: int) -> AcceleratorConfig:
    """The design point of one die: the full base device, relabelled."""
    return replace(base, name=f"{base.name}-die{index}")


def _stage_latencies(
    model: LatencyModel, lcmm: LCMMResult
) -> tuple[float, float]:
    """(first-image, steady-state) stage latency excluding link time.

    The first image pays every prefetch residual; in steady state the
    weight buffers that hold a single tensor stay resident across images
    (:func:`repro.perf.batching.persistent_weight_tensors`), so only the
    recurring residuals remain.
    """
    first = lcmm.latency
    persistent = persistent_weight_tensors(lcmm)
    recurring = {
        name: value
        for name, value in lcmm.residuals.items()
        if name not in persistent
    }
    steady = model.total_latency(
        lcmm.onchip_tensors, recurring, lcmm.fractions or None
    )
    return first, steady


def _single_die(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    options: LCMMOptions,
    devices_requested: int,
    fell_back: str | None,
    cache=None,
) -> PartitionResult:
    """The single-die floor: one plain LCMM compilation, bit-identical
    to the non-partitioned flow (same graph object, same design point,
    same options), wrapped in the partition result shape."""
    model = LatencyModel(graph, base)
    lcmm = run_lcmm(graph, base, options=options, model=model, cache=cache)
    first, steady = _stage_latencies(model, lcmm)
    schedule = graph.compute_schedule()
    stage = DieStage(
        index=0,
        nodes=list(schedule),
        accel=base,
        lcmm=lcmm,
        compute_latency=first,
        steady_compute_latency=steady,
        recv_bytes=0,
        send_bytes=0,
        recv_latency=0.0,
        send_latency=0.0,
    )
    return PartitionResult(
        stages=[stage],
        boundaries=[0, len(schedule)],
        cut_bytes=[],
        link=None,
        image_latency=first,
        period=steady,
        devices_requested=devices_requested,
        fell_back=fell_back,
        single_latency=steady,
    )


def design_partition(
    graph: ComputationGraph,
    base: AcceleratorConfig,
    devices: int,
    link: InterDieLink | None = InterDieLink(gbps=12.5),
    options: LCMMOptions | None = None,
    cache=None,
) -> PartitionResult:
    """Partition a network across ``devices`` dies in a linear pipeline.

    Args:
        graph: The DNN computation graph.
        base: The per-die design point.  Every die is a whole device —
            full array, full SRAM, own DDR channels.
        devices: Requested die count; clamps to
            ``[1, min(MAX_DEVICES, executed layers)]``.
        link: Inter-die link model.  ``None`` disables it, which refuses
            to fabricate free-streaming speedups: the result degrades to
            the single-die compilation (``fell_back = "link-model-off"``).
        options: LCMM switches applied on every die (``sram_budget``
            caps each die's SRAM individually).
        cache: Optional :class:`~repro.cache.store.CompilationCache`
            forwarded to the single-die baseline compilation (per-stage
            subgraph compilations are not cached individually — the
            partitioned artifact is keyed as a whole by
            :func:`repro.fingerprint.pipeline_key`).

    Returns:
        The partitioned design, or the single-die result when the
        partitioned pipeline does not improve steady-state throughput
        (accept-if-improves — ``fell_back`` records why).
    """
    schedule = graph.compute_schedule()
    options = options or LCMMOptions()
    requested = devices
    devices = max(1, min(devices, MAX_DEVICES, len(schedule)))
    if devices == 1:
        return _single_die(graph, base, options, requested, None, cache=cache)
    if link is None:
        single = _single_die(
            graph, base, options, requested, "link-model-off", cache=cache
        )
        return single

    # Stage assignment: DP over per-node latencies under the per-die
    # model plus the exact link time each candidate boundary creates.
    balance_model = LatencyModel(graph, base)
    weights = [balance_model.node_latency(n) for n in schedule]
    traffic = cut_traffic_bytes(graph, base.precision.bytes)
    cut_seconds = [link.latency(b) for b in traffic]
    cuts = throughput_balanced_cuts(weights, cut_seconds, devices)
    boundaries = [0] + cuts + [len(schedule)]

    stages: list[DieStage] = []
    for idx in range(devices):
        nodes = schedule[boundaries[idx] : boundaries[idx + 1]]
        accel = _die_accel(base, idx)
        sub = stage_subgraph(graph, list(nodes), idx)
        model = LatencyModel(sub, accel)
        lcmm = run_lcmm(sub, accel, options=options, model=model)
        first, steady = _stage_latencies(model, lcmm)
        recv = traffic[boundaries[idx]] if idx > 0 else 0
        send = traffic[boundaries[idx + 1]] if idx < devices - 1 else 0
        stages.append(
            DieStage(
                index=idx,
                nodes=list(nodes),
                accel=accel,
                lcmm=lcmm,
                compute_latency=first,
                steady_compute_latency=steady,
                recv_bytes=recv,
                send_bytes=send,
                recv_latency=link.latency(recv),
                send_latency=link.latency(send),
            )
        )

    image_latency = sum(s.compute_latency for s in stages) + sum(
        link.latency(traffic[c]) for c in cuts
    )
    period = max(s.steady_latency for s in stages)

    # Accept-if-improves: the partitioned pipeline must beat the
    # single-die steady state, else keep the known-good baseline.
    single = _single_die(graph, base, options, requested, None, cache=cache)
    if period >= single.period:
        single.fell_back = "no-improvement"
        return single
    return PartitionResult(
        stages=stages,
        boundaries=boundaries,
        cut_bytes=[traffic[c] for c in cuts],
        link=link,
        image_latency=image_latency,
        period=period,
        devices_requested=requested,
        fell_back=None,
        single_latency=single.period,
    )


def partition_batched_latency(result: PartitionResult, batch: int) -> BatchResult:
    """Steady-state batch profile of a partitioned pipeline.

    The first image fills the pipeline end to end (every stage's
    first-image compute plus every link crossing); each subsequent image
    retires one steady-state period later — the slowest stage including
    its link time, with persistent per-die weight buffers already
    resident.

    Raises:
        ValueError: If ``batch`` is not positive.
    """
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")
    first = result.image_latency
    steady = result.period
    total = first + (batch - 1) * steady
    return BatchResult(
        first_image_latency=first,
        steady_image_latency=steady,
        batch=batch,
        total_latency=total,
    )

"""Steady-state multi-image inference.

The paper evaluates single-image latency (FPGAs serve latency-critical
inference), but notes in Sec. 3.2 that once weight buffers are resident
"weights could be reused for multiple instances of inference".  This
module models that steady state for a stream of images:

* a weight buffer holding a **single** tensor persists across images —
  its prefetch is paid once, on the first image;
* a weight buffer **shared** by several tensors is re-filled during every
  image (the time-multiplexing that saved the SRAM), so its prefetch
  residual recurs;
* feature tensors are produced and consumed within one image and behave
  identically every image.

The first image therefore pays all residuals; subsequent images pay only
the recurring ones, and throughput converges to the steady-state rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.tensor import is_weight_tensor_name
from repro.lcmm.framework import LCMMResult
from repro.perf.latency import LatencyModel


@dataclass(frozen=True)
class BatchResult:
    """Latency/throughput profile of a batched run.

    Attributes:
        first_image_latency: Latency of image 1 (all prefetch residuals).
        steady_image_latency: Latency of every subsequent image.
        batch: Number of images profiled.
        total_latency: End-to-end time for the whole batch.
    """

    first_image_latency: float
    steady_image_latency: float
    batch: int
    total_latency: float

    @property
    def images_per_second(self) -> float:
        """Steady-state frame rate."""
        return 1.0 / self.steady_image_latency

    @property
    def amortized_latency(self) -> float:
        """Per-image latency averaged over the batch."""
        return self.total_latency / self.batch


def persistent_weight_tensors(result: LCMMResult) -> frozenset[str]:
    """On-chip weight tensors that own their buffer exclusively.

    These stay resident across images; shared buffers are re-filled per
    image.
    """
    persistent = set()
    for pbuf in result.physical_buffers:
        names = pbuf.tensor_names
        if len(names) == 1 and is_weight_tensor_name(names[0]):
            persistent.add(names[0])
    return frozenset(persistent)


def batched_latency(
    model: LatencyModel,
    result: LCMMResult,
    batch: int,
) -> BatchResult:
    """Profile a batch of images under an LCMM allocation.

    Args:
        model: The latency model of the design point.
        result: The allocation to run under.
        batch: Number of images (>= 1).

    Raises:
        ValueError: If ``batch`` is not positive.
    """
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")

    persistent = persistent_weight_tensors(result)
    recurring_residuals = {
        name: value
        for name, value in result.residuals.items()
        if name not in persistent
    }
    first = model.total_latency(result.onchip_tensors, result.residuals)
    steady = model.total_latency(result.onchip_tensors, recurring_residuals)
    total = first + (batch - 1) * steady
    return BatchResult(
        first_image_latency=first,
        steady_image_latency=steady,
        batch=batch,
        total_latency=total,
    )


def umm_batched_latency(model: LatencyModel, batch: int) -> BatchResult:
    """Profile a batch under uniform memory management (no state reuse)."""
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")
    per_image = model.umm_latency()
    return BatchResult(
        first_image_latency=per_image,
        steady_image_latency=per_image,
        batch=batch,
        total_latency=batch * per_image,
    )

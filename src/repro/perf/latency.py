"""Per-layer latency model — the quantity Eq. 1 of the paper combines.

For each node ``i`` the accelerator executes, the model produces

* ``lat_c(i)`` — compute latency on the systolic array, and
* one *slot* per off-chip tensor stream of the node: its total transferred
  bytes (tile reloads included) and the resulting transfer latency on its
  memory interface.

The node latency under a given on-chip allocation is then

    ``lat(i) = max(lat_c(i), sum of off-chip if-slot latencies,
                   wt-slot latency, of-slot latency)``

because double buffering overlaps compute with transfer (Sec. 3.3) and the
three tensor kinds use three independent DDR interfaces, while multiple
input features of one node share the single "if" interface and therefore
serialise.

Note on Eq. 1's ``x_d(i)``: the paper states ``x_d(i) = 1`` means on-chip
yet multiplies it *into* the latency term; taken literally an on-chip
tensor would add transfer latency.  We implement the evident intent —
on-chip tensors stop paying off-chip transfer (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.graph import ComputationGraph
from repro.ir.layer import (
    Attention,
    ComputeKind,
    Conv2D,
    DepthwiseConv2D,
    Gemm,
    GemmDims,
    Layer,
    Pooling,
)
from repro.ir.tensor import TensorKind, feature_tensor_name, weight_tensor_name
from repro.perf.systolic import (
    AcceleratorConfig,
    gemm_compute_cycles,
    gemm_reload_trips,
)


@dataclass(frozen=True)
class Slot:
    """One off-chip tensor stream of one node.

    Attributes:
        node: Node name.
        kind: Tensor kind (if / wt / of).
        tensor: Name of the tensor value carried — ``f:<producer>`` for
            features, ``w:<node>`` for weights.  Putting this value
            on-chip removes the slot's transfer latency from the node.
        bytes: Total bytes transferred for this slot in one inference,
            tile reloads included.
        latency: Transfer latency in seconds on the slot's interface.
    """

    node: str
    kind: TensorKind
    tensor: str
    bytes: int
    latency: float


@dataclass
class LayerLatency:
    """Latency decomposition of one node.

    Attributes:
        node: Node name.
        compute: Compute latency ``lat_c(i)`` in seconds.
        slots: Transfer slots, in (if..., wt, of) order.
        macs: Nominal multiply-accumulate count of the node.
    """

    node: str
    compute: float
    slots: list[Slot]
    macs: int

    def slot_latency(
        self,
        kind: TensorKind,
        onchip: frozenset[str] = frozenset(),
        residuals: dict[str, float] | None = None,
        fractions: dict[str, float] | None = None,
    ) -> float:
        """Summed latency of this node's slots of one kind.

        Off-chip slots contribute their full transfer latency; on-chip
        slots contribute their *residual* (the unhidden part of a weight
        prefetch), defaulting to zero.  A tensor pinned *fractionally*
        (``fractions[name] = f``) keeps ``1 - f`` of its transfer — the
        resident channels stop streaming, the rest still do.
        """
        total = 0.0
        for s in self.slots:
            if s.kind is not kind:
                continue
            if s.tensor in onchip:
                if residuals:
                    total += residuals.get(s.tensor, 0.0)
            elif fractions and s.tensor in fractions:
                total += s.latency * (1.0 - fractions[s.tensor])
            else:
                total += s.latency
        return total

    def latency(
        self,
        onchip: frozenset[str] = frozenset(),
        residuals: dict[str, float] | None = None,
        fractions: dict[str, float] | None = None,
    ) -> float:
        """Effective node latency under an on-chip allocation (Eq. 1)."""
        return max(
            self.compute,
            self.slot_latency(TensorKind.IFMAP, onchip, residuals, fractions),
            self.slot_latency(TensorKind.WEIGHT, onchip, residuals, fractions),
            self.slot_latency(TensorKind.OFMAP, onchip, residuals, fractions),
        )

    @property
    def total_transfer_bytes(self) -> int:
        """Bytes moved over all interfaces with everything off-chip."""
        return sum(s.bytes for s in self.slots)

    @property
    def worst_transfer(self) -> float:
        """Largest per-interface transfer latency with everything off-chip."""
        kinds = (TensorKind.IFMAP, TensorKind.WEIGHT, TensorKind.OFMAP)
        return max(self.slot_latency(k) for k in kinds)

    @property
    def is_memory_bound(self) -> bool:
        """Whether off-chip transfer, not compute, limits this node."""
        return self.worst_transfer > self.compute


class LatencyModel:
    """Latency model of one (graph, accelerator design) pair.

    Precomputes the latency decomposition of every executed node once;
    allocation-dependent queries are then cheap, which matters because the
    DNNK dynamic program evaluates marginal gains in its inner loop.

    Args:
        graph: The DNN computation graph.
        accel: The accelerator design point.
    """

    def __init__(self, graph: ComputationGraph, accel: AcceleratorConfig) -> None:
        self.graph = graph
        self.accel = accel
        self._layers: dict[str, LayerLatency] = {}
        for name in graph.compute_schedule():
            self._layers[name] = self._characterize(name)

    @classmethod
    def from_layers(
        cls,
        graph: ComputationGraph,
        accel: AcceleratorConfig,
        layers: dict[str, LayerLatency],
    ) -> "LatencyModel":
        """Build a model from an already-characterised layer table.

        Used by passes that rewrite the transfer decomposition (layer
        fusion zeroes fused slots) without re-running characterisation:
        the derived model answers every allocation query against the
        edited slots while keeping the graph/accel identity.
        """
        model = cls.__new__(cls)
        model.graph = graph
        model.accel = accel
        model._layers = dict(layers)
        return model

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _transfer_latency(self, kind: TensorKind, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` over the ``kind`` interface."""
        if num_bytes == 0:
            return 0.0
        bandwidth = self.accel.interface_bandwidth(kind.value)
        return num_bytes / bandwidth

    def _characterize(self, name: str) -> LayerLatency:
        layer = self.graph.layer(name)
        kind = layer.compute_kind
        if kind is ComputeKind.DEPTHWISE:
            assert isinstance(layer, DepthwiseConv2D)
            return self._characterize_depthwise(name, layer)
        if kind is ComputeKind.CONV:
            assert isinstance(layer, Conv2D)
            return self._characterize_conv(name, layer)
        if kind is ComputeKind.GEMM:
            assert isinstance(layer, Gemm)
            if layer.conv_datapath:
                return self._characterize_fc(name, layer)
            return self._characterize_gemm(name, layer)
        if kind is ComputeKind.ATTENTION:
            assert isinstance(layer, Attention)
            return self._characterize_attention(name, layer)
        if kind is ComputeKind.NORM:
            return self._characterize_norm(name, layer)
        if kind is ComputeKind.POOL:
            assert isinstance(layer, Pooling)
            return self._characterize_pool(name, layer)
        if kind is ComputeKind.ELTWISE:
            return self._characterize_eltwise(name, layer)
        raise ValueError(f"cannot characterise compute kind {kind} of {name!r}")

    def _input_slots(self, name: str, reloads: int = 1) -> list[Slot]:
        """One if-slot per feature value the node reads, with reloads."""
        elem = self.accel.precision.bytes
        slots = []
        for src in self.graph.feature_sources(name):
            num_bytes = self.graph.output_shape(src).volume * elem * reloads
            slots.append(
                Slot(
                    node=name,
                    kind=TensorKind.IFMAP,
                    tensor=feature_tensor_name(src),
                    bytes=num_bytes,
                    latency=self._transfer_latency(TensorKind.IFMAP, num_bytes),
                )
            )
        return slots

    def _output_slot(self, name: str) -> Slot:
        elem = self.accel.precision.bytes
        num_bytes = self.graph.output_shape(name).volume * elem
        return Slot(
            node=name,
            kind=TensorKind.OFMAP,
            tensor=feature_tensor_name(name),
            bytes=num_bytes,
            latency=self._transfer_latency(TensorKind.OFMAP, num_bytes),
        )

    def _weight_slot(self, name: str, layer: Layer, reloads: int) -> Slot:
        elem = self.accel.precision.bytes
        shape = layer.weight_shape
        assert shape is not None
        num_bytes = shape.volume * elem * reloads
        return Slot(
            node=name,
            kind=TensorKind.WEIGHT,
            tensor=weight_tensor_name(name),
            bytes=num_bytes,
            latency=self._transfer_latency(TensorKind.WEIGHT, num_bytes),
        )

    def _conv_reloads(self, name: str, layer: Conv2D) -> tuple[int, int]:
        """Per-layer schedule selection: (ifmap reloads, weight reloads).

        The default loop order streams the input once per output-channel
        tile and the weights once per spatial tile (Fig. 1's dataflow).
        When the design provides residency buffers and the layer's
        input-channel working set (or full weight tensor slice) fits, the
        per-layer schedule chosen by the DSE keeps it resident and the
        corresponding reload factor drops to one.
        """
        out = self.graph.output_shape(name)
        tile = self.accel.tile
        elem = self.accel.precision.bytes
        n_tm = tile.output_channel_trips(out.channels)
        n_sp = tile.spatial_trips(out.height, out.width)

        # Input residency: all input channels of one spatial tile (halo
        # included) stay on chip across the output-channel loop.
        if n_tm > 1 and self.accel.if_resident_cap > 0:
            in_h = tile.th * layer.stride[0] + layer.kernel[0] - layer.stride[0]
            in_w = tile.tw * layer.stride[1] + layer.kernel[1] - layer.stride[1]
            if_working_set = layer.in_channels * in_h * in_w * elem
            if if_working_set <= self.accel.if_resident_cap:
                n_tm = 1

        # Weight residency: one output-channel tile's weights over all
        # input channels stay on chip across the spatial loop.
        if n_sp > 1 and self.accel.wt_resident_cap > 0:
            wt_working_set = (
                tile.tm * layer.in_channels * layer.kernel[0] * layer.kernel[1] * elem
            )
            if wt_working_set <= self.accel.wt_resident_cap:
                n_sp = 1
        return n_tm, n_sp

    def _characterize_conv(self, name: str, layer: Conv2D) -> LayerLatency:
        out = self.graph.output_shape(name)
        macs = layer.macs(self.graph.input_shapes(name))
        array = self.accel.array

        n_tm, n_sp = self._conv_reloads(name, layer)

        effective_macs = array.effective_macs(out.channels, layer.in_channels)
        compute = macs / (effective_macs * self.accel.frequency)

        slots = self._input_slots(name, reloads=n_tm)
        slots.append(self._weight_slot(name, layer, reloads=n_sp))
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=macs)

    def _characterize_depthwise(self, name: str, layer: DepthwiseConv2D) -> LayerLatency:
        """Depthwise convolution: no input-channel reduction.

        The SIMD lanes of the PE array reduce over input channels, which a
        depthwise layer does not have, so only the rows x cols lanes do
        useful work — the characteristic inefficiency of depthwise layers
        on channel-parallel accelerators.  Each input channel feeds
        exactly its own output channel, so the input streams once
        (no output-channel reload factor).
        """
        out = self.graph.output_shape(name)
        macs = layer.macs(self.graph.input_shapes(name))
        array = self.accel.array
        channel_eff = out.channels / (
            math.ceil(out.channels / array.rows) * array.rows
        )
        effective = array.rows * array.cols * channel_eff
        compute = macs / (effective * self.accel.frequency)

        n_sp = self.accel.tile.spatial_trips(out.height, out.width)
        slots = self._input_slots(name, reloads=1)
        slots.append(self._weight_slot(name, layer, reloads=n_sp))
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=macs)

    def _characterize_fc(self, name: str, layer: Gemm) -> LayerLatency:
        """Conv-datapath GEMM: the CNN classifier head.

        Runs on the convolution datapath as a 1x1 convolution over a 1x1
        spatial extent, so it pays the channel-padding waste model and a
        single streaming pass over every tensor — the historical
        ``FullyConnected`` characterisation, unchanged.
        """
        macs = layer.macs(self.graph.input_shapes(name))
        array = self.accel.array
        effective_macs = array.effective_macs(layer.out_features, layer.in_features)
        compute = macs / (effective_macs * self.accel.frequency)
        slots = self._input_slots(name, reloads=1)
        slots.append(self._weight_slot(name, layer, reloads=1))
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=macs)

    def _gemm_reloads(self, dims: GemmDims) -> tuple[int, int]:
        """Schedule selection for a GEMM node: (input, weight) reloads."""
        return gemm_reload_trips(
            dims,
            self.accel.tile,
            self.accel.precision.bytes,
            self.accel.if_resident_cap,
            self.accel.wt_resident_cap,
        )

    def _characterize_gemm(self, name: str, layer: Gemm) -> LayerLatency:
        """Systolic-datapath GEMM over a token sequence."""
        macs = layer.macs(self.graph.input_shapes(name))
        dims = layer.gemm_dims()
        cycles = gemm_compute_cycles(dims, self.accel.array, self.accel.tile)
        compute = cycles / self.accel.frequency
        n_if, n_wt = self._gemm_reloads(dims)
        slots = self._input_slots(name, reloads=n_if)
        slots.append(self._weight_slot(name, layer, reloads=n_wt))
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=macs)

    def _characterize_attention(self, name: str, layer: Attention) -> LayerLatency:
        """Fused multi-head attention: compute is the sum of the composed
        GEMMs; the attention intermediates stay in the tile buffers, so
        the only off-chip streams are the input sequence (reloaded per
        output-feature tile of the QKV projection), the fused projection
        weights and the output sequence.
        """
        macs = layer.macs(self.graph.input_shapes(name))
        array, tile = self.accel.array, self.accel.tile
        cycles = sum(gemm_compute_cycles(d, array, tile) for d in layer.gemm_dims())
        compute = cycles / self.accel.frequency
        n_if, n_wt = self._gemm_reloads(layer.gemm_dims()[0])
        slots = self._input_slots(name, reloads=n_if)
        slots.append(self._weight_slot(name, layer, reloads=n_wt))
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=macs)

    def _characterize_norm(self, name: str, layer: Layer) -> LayerLatency:
        """Layer normalisation: two passes (statistics, normalise) over the
        data on the vector lanes, negligible arithmetic — memory bound on
        any realistic design, like eltwise.
        """
        out = self.graph.output_shape(name)
        compute = 2 * out.volume / (self.accel.array.macs * self.accel.frequency)
        slots = self._input_slots(name)
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=0)

    def _characterize_pool(self, name: str, layer: Pooling) -> LayerLatency:
        out = self.graph.output_shape(name)
        # One comparison/add per kernel element per output — executed on the
        # array's vector lanes, so the rate matches the MAC rate.
        if layer.global_pool:
            (inp,) = self.graph.input_shapes(name)
            ops = inp.volume
        else:
            ops = out.volume * layer.kernel[0] * layer.kernel[1]
        compute = ops / (self.accel.array.macs * self.accel.frequency)
        slots = self._input_slots(name)
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=0)

    def _characterize_eltwise(self, name: str, layer: Layer) -> LayerLatency:
        out = self.graph.output_shape(name)
        compute = out.volume / (self.accel.array.macs * self.accel.frequency)
        slots = self._input_slots(name)
        slots.append(self._output_slot(name))
        return LayerLatency(node=name, compute=compute, slots=slots, macs=0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """Executed nodes in schedule order."""
        return list(self._layers)

    def layer(self, name: str) -> LayerLatency:
        """Latency decomposition of one node."""
        try:
            return self._layers[name]
        except KeyError:
            raise KeyError(f"node {name!r} is not an executed layer") from None

    def slots(self) -> Iterable[Slot]:
        """All transfer slots of all nodes, in schedule order."""
        for ll in self._layers.values():
            yield from ll.slots

    def node_latency(
        self,
        name: str,
        onchip: frozenset[str] = frozenset(),
        residuals: dict[str, float] | None = None,
        fractions: dict[str, float] | None = None,
    ) -> float:
        """Effective latency of one node under an allocation (Eq. 1)."""
        return self.layer(name).latency(onchip, residuals, fractions)

    def total_latency(
        self,
        onchip: frozenset[str] = frozenset(),
        residuals: dict[str, float] | None = None,
        fractions: dict[str, float] | None = None,
    ) -> float:
        """End-to-end inference latency under an allocation.

        The schedule is sequential — the accelerator executes one node at a
        time, overlapping each node's transfers with its own compute via
        double buffering (Fig. 1 of the paper).

        Args:
            onchip: Tensor values fully resident on chip.
            residuals: Unhidden prefetch time per on-chip weight tensor.
            fractions: Partial residency per tensor (0, 1): the resident
                share stops streaming, the remainder still pays transfer.
        """
        return sum(
            ll.latency(onchip, residuals, fractions) for ll in self._layers.values()
        )

    def umm_latency(self) -> float:
        """Latency with everything off-chip (the UMM baseline)."""
        return self.total_latency(frozenset())

    def compute_bound_latency(self) -> float:
        """Lower bound: latency if no transfer ever stalled the array."""
        return sum(ll.compute for ll in self._layers.values())

    def memory_bound_nodes(self) -> list[str]:
        """Executed nodes whose UMM latency is transfer-limited."""
        return [name for name, ll in self._layers.items() if ll.is_memory_bound]

    def throughput(self, latency: float) -> float:
        """Ops/second achieved for one inference finishing in ``latency``."""
        if latency <= 0:
            raise ValueError("latency must be positive")
        total_ops = 2 * sum(ll.macs for ll in self._layers.values())
        return total_ops / latency

    def bandwidth_requirement(self, name: str) -> float:
        """Bytes/second the node needs to never stall (paper Sec. 2.2)."""
        ll = self.layer(name)
        if ll.compute <= 0:
            return float("inf")
        return ll.total_transfer_bytes / ll.compute

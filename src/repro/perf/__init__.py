"""Performance model of the systolic-array accelerator.

Models the two-level loop-tiling dataflow of the paper's baseline
accelerator ([18], "Automated Systolic Array Architecture Synthesis...",
DAC 2017): outer loops stream tiles from DDR, middle loops feed the PE
array, inner loops are fully unrolled in hardware (Fig. 1 of the LCMM
paper).  The model produces, per layer, the compute latency and the three
per-interface transfer latencies that Eq. 1 of the paper combines, plus
roofline characterisation and a small design-space explorer that stands in
for the external DSE the paper plugs LCMM into.
"""

from repro.perf.tiling import TileConfig
from repro.perf.systolic import AcceleratorConfig, SystolicArray, default_accelerator
from repro.perf.engine import AllocationEngine, EngineStats
from repro.perf.latency import LatencyModel, LayerLatency, Slot
from repro.perf.roofline import RooflineModel, RooflinePoint
from repro.perf.dse import (
    DesignPoint,
    WorkerStats,
    best_design,
    candidate_tiles,
    explore_designs,
)
from repro.perf.pool import ScorerPool, close_pool, persistent_pool
from repro.perf.space import (
    DesignSpace,
    SampledSpace,
    SpaceResult,
    explore_space,
    large_space,
    small_space,
)
from repro.perf.batching import BatchResult, batched_latency, umm_batched_latency
from repro.perf.partition import (
    DieStage,
    InterDieLink,
    PartitionResult,
    design_partition,
    partition_batched_latency,
)
from repro.perf.pipeline import PipelineResult, PipelineStage, design_pipeline

__all__ = [
    "TileConfig",
    "SystolicArray",
    "AcceleratorConfig",
    "default_accelerator",
    "AllocationEngine",
    "EngineStats",
    "LatencyModel",
    "LayerLatency",
    "Slot",
    "RooflineModel",
    "RooflinePoint",
    "DesignPoint",
    "WorkerStats",
    "best_design",
    "candidate_tiles",
    "explore_designs",
    "ScorerPool",
    "close_pool",
    "persistent_pool",
    "DesignSpace",
    "SampledSpace",
    "SpaceResult",
    "explore_space",
    "large_space",
    "small_space",
    "BatchResult",
    "batched_latency",
    "umm_batched_latency",
    "DieStage",
    "InterDieLink",
    "PartitionResult",
    "design_partition",
    "partition_batched_latency",
    "PipelineResult",
    "PipelineStage",
    "design_pipeline",
]

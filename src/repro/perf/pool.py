"""Persistent, reusable worker pools for design-space scoring.

``BENCH_engine.json`` showed the original parallel DSE path *losing* to
the serial fast path (64-point sweep: 17.6x serial vs 4.4x with
``workers=4``): every sweep paid full ``ProcessPoolExecutor`` spin-up,
every chunk re-pickled result objects, and the fixed ``n / (workers*4)``
chunking left nothing to amortise any of it against.  This module is the
fix — a pool that outlives a single sweep and a wire protocol sized to
the actual work:

* **One pool per graph, kept warm.**  The initializer ships the
  computation graph (the only heavy payload) exactly once per worker
  process.  The pool persists across ``explore_designs`` / ``sweep`` /
  ``cotune`` / cache-warm-start calls on the same graph; a module
  registry (:func:`persistent_pool`) hands the live pool back whenever
  the (graph fingerprint, workers, tracing, fault plans) identity
  matches, and :func:`close_pool` / ``lcmm dse --pool fresh`` manage its
  lifetime explicitly.
* **Scorers memoised per worker.**  Chunks carry the *base* design point
  (~1 kB of scalars) and a worker builds one
  :class:`~repro.perf.dse._SweepScorer` per base fingerprint (small
  LRU), so the graph is re-characterised at most once per
  (worker, base) — exploded multi-base spaces stream through the same
  warm pool.
* **Compact encoding.**  Tiles travel as a packed int array (16
  bytes/tile instead of a pickled :class:`TileConfig` each) and scores
  return as a packed float array plus the measured wall seconds —
  no per-point object pickling in either direction.
* **Adaptive chunking.**  Chunk sizes are derived from the measured
  per-point scoring cost (:meth:`ScorerPool.observe` keeps an EWMA fed
  by both parent-side calibration and worker-reported chunk timings)
  so each chunk costs roughly :data:`TARGET_CHUNK_SECONDS` of work —
  large enough to bury the IPC, small enough to balance and retry.

Fault handling composes with the hardened retry loop in
:mod:`repro.perf.dse`: a broken or stranded pool is *refreshed*
(:meth:`ScorerPool.refresh` discards the executor; the next
:meth:`ScorerPool.ensure` builds a fresh one with identical initargs),
so crash/hang faults trigger fresh-pool retries without leaking the
persistent pool object or its registry slot.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from array import array
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigError
from repro.obs import spans as obs
from repro.robustness import inject
from repro.robustness.inject import declare_fault_point, fault_point
from repro.perf.tiling import TileConfig

if TYPE_CHECKING:
    from concurrent.futures import Future

    from repro.ir.graph import ComputationGraph

__all__ = [
    "ResilientPool",
    "ScorerPool",
    "TARGET_CHUNK_SECONDS",
    "active_pool",
    "adaptive_chunk_size",
    "close_pool",
    "decode_tiles",
    "encode_tiles",
    "persistent_pool",
]

#: Ints per tile in the packed wire encoding (tm, tn, th, tw).
TILE_WORDS = 4

#: Wall seconds of scoring work one adaptive chunk aims to hold.  Large
#: against the ~100 us submit/receive cost of a chunk, small enough that
#: a sweep still splits into enough chunks to balance and to retry
#: cheaply on a fault.
TARGET_CHUNK_SECONDS = 0.05

#: Ceiling on chunks per worker, so tiny per-point costs never shatter a
#: sweep into thousands of IPC round-trips.
_MAX_ROUNDS_PER_WORKER = 64

#: Scorers a worker keeps alive at once.  Exploded spaces walk bases
#: sequentially, so consecutive chunks share a base and a tiny LRU hits.
_SCORER_LRU = 4

#: Deadline for the warm-up pings that prove the pool came up at all.
_WARMUP_TIMEOUT = 60.0

declare_fault_point("dse.chunk", "one tile chunk scored in a DSE worker")


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------

def encode_tiles(tiles: Sequence[TileConfig]) -> array:
    """Pack tiles into a flat int array (``TILE_WORDS`` ints per tile)."""
    flat = array("i")
    for tile in tiles:
        flat.extend((tile.tm, tile.tn, tile.th, tile.tw))
    return flat


def decode_tiles(encoded: array) -> list[TileConfig]:
    """Rebuild :class:`TileConfig` objects from :func:`encode_tiles` output."""
    it = iter(encoded)
    return [TileConfig(tm, tn, th, tw) for tm, tn, th, tw in zip(it, it, it, it)]


def adaptive_chunk_size(
    points: int,
    workers: int,
    per_point_seconds: float | None,
    target_seconds: float = TARGET_CHUNK_SECONDS,
) -> int:
    """Chunk size scaled from the measured per-point cost and worker count.

    With no measurement yet (a cold pool) this falls back to the fixed
    four-rounds-per-worker split; with one, the chunk holds roughly
    ``target_seconds`` of scoring work, clamped so every worker gets at
    least one chunk and no worker sees more than
    :data:`_MAX_ROUNDS_PER_WORKER` of them.
    """
    if points <= 0:
        return 1
    workers = max(1, workers)
    if per_point_seconds is None or per_point_seconds <= 0.0:
        return max(1, math.ceil(points / (workers * 4)))
    size = max(1, int(target_seconds / per_point_seconds))
    size = min(size, math.ceil(points / workers))
    size = max(size, math.ceil(points / (workers * _MAX_ROUNDS_PER_WORKER)))
    return size


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------

#: The graph this worker scores against, shipped once by the initializer.
_worker_graph: "ComputationGraph | None" = None

#: Per-worker scorer cache: base fingerprint -> _SweepScorer (LRU).
_worker_scorers: "OrderedDict[str, object]" = OrderedDict()


def _pool_init(
    graph: "ComputationGraph",
    fault_plans: tuple = (),
    trace: bool = False,
) -> None:
    """Worker initializer: receives the graph exactly once per process."""
    global _worker_graph
    _worker_graph = graph
    _worker_scorers.clear()
    # Fault injection armed in the parent follows the work into the
    # worker (chaos tests for the crash/timeout recovery paths).
    inject.install_plans(fault_plans)
    # Tracing armed in the parent follows too: the worker runs its own
    # tracer (own epoch, own process label) and ships finished spans
    # back with each chunk for parent-side merging.  A forked worker
    # inherits the parent's tracer object, so always install a fresh
    # one (or none) rather than recording into the inherited copy.
    if trace:
        obs.enable(f"dse-worker-{os.getpid()}")
    else:
        obs.disable()


def _pool_ping() -> int:
    """Warm-up no-op proving a worker process came up and initialized."""
    return os.getpid()


def _scorer_for(base, base_key: str):
    """This worker's memoised scorer for a base design point."""
    scorer = _worker_scorers.get(base_key)
    if scorer is None:
        from repro.perf.dse import _SweepScorer

        scorer = _SweepScorer(_worker_graph, base)
        _worker_scorers[base_key] = scorer
        while len(_worker_scorers) > _SCORER_LRU:
            _worker_scorers.popitem(last=False)
    else:
        _worker_scorers.move_to_end(base_key)
    return scorer


def _pool_lower_bounds(bases, base_keys: Sequence[str]) -> array:
    """Characterise bases in a worker and return their sweep floors.

    The per-base graph characterisation behind
    :func:`repro.perf.roofline.sweep_lower_bound` is the serial
    bottleneck of a pruned exploded sweep (hundreds of bases, a handful
    of surviving tiles), so :func:`repro.perf.space.explore_space` fans
    it out over the same pool that scores the tiles.
    """
    return array(
        "d",
        [
            _scorer_for(base, key).lower_bound()
            for base, key in zip(bases, base_keys)
        ],
    )


def _pool_score_chunk(
    base, base_key: str, encoded: array, index: int = 0
) -> tuple[array, float, list[dict]]:
    """Score one packed chunk of tiles in a worker process.

    Returns the scores as a packed float array, the measured wall
    seconds (fed back into the parent's adaptive chunk sizing), and the
    serialized spans recorded while scoring (empty when tracing is off).
    """
    fault_point("dse.chunk", chunk=index)
    tracer = obs.tracer()
    mark = len(tracer.records) if tracer is not None else 0
    start = time.perf_counter()
    with obs.span(
        "dse.chunk", chunk=index, tiles=len(encoded) // TILE_WORDS
    ):
        scorer = _scorer_for(base, base_key)
        score = scorer.score
        scores = array("d", [score(tile) for tile in decode_tiles(encoded)])
    seconds = time.perf_counter() - start
    spans = (
        [record.as_dict() for record in tracer.records[mark:]]
        if tracer is not None
        else []
    )
    return scores, seconds, spans


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------

class ResilientPool:
    """A lazily created process pool with warm-up, refresh and close.

    The lifecycle contract shared by every pool in the system (the DSE
    :class:`ScorerPool` below, the serving daemon's compile pool in
    :mod:`repro.serve.jobs`):

    * The executor is not built until the first :meth:`ensure`, so
      merely resolving a pool costs nothing.
    * :meth:`ensure` warms the fresh executor with one ping per worker,
      so the initializer has demonstrably run before real work is
      dispatched — job deadlines never absorb process spawn time, and an
      environment that cannot spawn fails *here* (with
      ``OSError``/``RuntimeError``, which callers' environmental
      fallbacks catch) rather than mid-job.
    * :meth:`refresh` replaces a broken or stranded executor (crashed
      worker, uncancellable hung future) without losing the pool
      object, its identity or its measurements — the fault costs the
      executor its life, not the pool its registry slot.
    * :meth:`close` ends the pool's life explicitly (idempotent).

    Subclasses override :meth:`_build_executor` to attach their
    initializer and its arguments.
    """

    def __init__(self, workers: int, warmup_timeout: float = _WARMUP_TIMEOUT) -> None:
        if workers < 1:
            raise ConfigError(
                "pool workers must be at least 1", details={"workers": workers}
            )
        self.workers = int(workers)
        #: Incremented every time :meth:`refresh` discards an executor.
        self.generation = 0
        #: Total wall seconds spent spinning up executors (all generations).
        self.init_seconds_total = 0.0
        self._warmup_timeout = warmup_timeout
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def _build_executor(self) -> ProcessPoolExecutor:
        """Construct the executor (override to attach an initializer)."""
        return ProcessPoolExecutor(max_workers=self.workers)

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def is_warm(self) -> bool:
        """Whether a live executor exists right now."""
        return self._executor is not None

    def ensure(self) -> tuple[ProcessPoolExecutor, float]:
        """The live executor, creating and warming one if needed.

        Returns ``(executor, seconds)`` where ``seconds`` is the wall
        time spent bringing the pool up (0.0 when it was already warm).
        """
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        if self._executor is not None:
            return self._executor, 0.0
        start = time.perf_counter()
        executor = self._build_executor()
        try:
            pings = [executor.submit(_pool_ping) for _ in range(self.workers)]
            done, not_done = futures_wait(pings, timeout=self._warmup_timeout)
            if not_done:
                raise RuntimeError(
                    f"worker pool warm-up timed out after {self._warmup_timeout}s"
                )
            for ping in done:
                ping.result()  # surfaces initializer failures
        except BaseException:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        elapsed = time.perf_counter() - start
        self._executor = executor
        self.init_seconds_total += elapsed
        return executor, elapsed

    def refresh(self) -> None:
        """Discard the current executor (broken pool / stranded worker).

        The pool object stays alive and registered; the next
        :meth:`ensure` builds a fresh executor with identical initargs.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.generation += 1

    def close(self) -> None:
        """Shut the pool down for good (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._closed = True


class ScorerPool(ResilientPool):
    """A lazily created, reusable process pool bound to one graph.

    Extends :class:`ResilientPool` with the DSE-specific identity (graph
    fingerprint, tracing state, armed fault plans — see :meth:`matches`)
    and the adaptive chunk-size measurements that survive across sweeps.

    Args:
        graph: The computation graph workers score against.
        workers: Worker process count.
        trace: Ship parent tracing into the workers (worker spans are
            returned with each chunk for merging).
        plans: Fault plans to install in each worker; defaults to the
            plans armed in this process at construction time.
        graph_fp: Precomputed :func:`~repro.fingerprint.graph_fingerprint`
            (avoids re-serializing the graph when the caller already has
            it).
    """

    def __init__(
        self,
        graph: "ComputationGraph",
        workers: int,
        trace: bool = False,
        plans: Iterable | None = None,
        graph_fp: str | None = None,
    ) -> None:
        super().__init__(workers)
        from repro.fingerprint import graph_fingerprint

        self.graph = graph
        self.trace = bool(trace)
        self.plans = tuple(plans) if plans is not None else inject.active_plans()
        self.graph_fp = graph_fp or graph_fingerprint(graph)
        #: EWMA of measured seconds per scored point (None until observed).
        self.per_point_seconds: float | None = None
        #: Chunks successfully scored over the pool's lifetime.
        self.chunks_scored = 0

    def _build_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_pool_init,
            initargs=(self.graph, self.plans, self.trace),
        )

    # -- identity ------------------------------------------------------

    def matches(
        self, graph_fp: str, workers: int, trace: bool, plans: tuple
    ) -> bool:
        """Whether this pool can serve a request with the given identity."""
        return (
            not self.closed
            and self.graph_fp == graph_fp
            and self.workers == workers
            and self.trace == trace
            and self.plans == plans
        )

    # -- scoring support ----------------------------------------------

    def submit_chunk(
        self, base, base_key: str, encoded: array, index: int
    ) -> "Future":
        """Submit one packed chunk against the live executor."""
        executor = self._executor
        if executor is None:
            raise RuntimeError("ensure() the pool before submitting chunks")
        return executor.submit(_pool_score_chunk, base, base_key, encoded, index)

    def submit_bounds(self, bases, base_keys: Sequence[str]) -> "Future":
        """Submit one batch of per-base lower-bound computations."""
        executor = self._executor
        if executor is None:
            raise RuntimeError("ensure() the pool before submitting bounds")
        return executor.submit(_pool_lower_bounds, bases, base_keys)

    def observe(self, points: int, seconds: float) -> None:
        """Feed one measured (points scored, wall seconds) sample."""
        if points <= 0 or seconds <= 0.0:
            return
        sample = seconds / points
        if self.per_point_seconds is None:
            self.per_point_seconds = sample
        else:
            self.per_point_seconds = 0.5 * self.per_point_seconds + 0.5 * sample

    def chunk_size(self, points: int) -> int:
        """Adaptive chunk size for a sweep of ``points`` on this pool."""
        return adaptive_chunk_size(points, self.workers, self.per_point_seconds)

    def describe(self) -> dict:
        """Lifetime counters for ``lcmm dse`` / stats output."""
        return {
            "workers": self.workers,
            "warm": self.is_warm(),
            "generation": self.generation,
            "chunks_scored": self.chunks_scored,
            "init_seconds_total": self.init_seconds_total,
            "per_point_seconds": self.per_point_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        state = "closed" if self._closed else ("warm" if self.is_warm() else "cold")
        return (
            f"ScorerPool(workers={self.workers}, {state}, "
            f"gen={self.generation}, graph={self.graph_fp[:12]})"
        )


# ----------------------------------------------------------------------
# Process-wide registry (one persistent pool at a time)
# ----------------------------------------------------------------------

_PERSISTENT: ScorerPool | None = None


def persistent_pool(
    graph: "ComputationGraph",
    workers: int,
    trace: bool | None = None,
    graph_fp: str | None = None,
) -> ScorerPool:
    """The process-wide persistent pool for ``(graph, workers)``.

    Returns the live pool when its identity — graph fingerprint, worker
    count, tracing state and armed fault plans — matches the request;
    otherwise closes the old pool and registers a fresh (still lazy)
    one.  Keeping at most one persistent pool bounds resident worker
    processes regardless of how many different sweeps a session runs.
    """
    global _PERSISTENT
    if trace is None:
        trace = obs.enabled()
    plans = inject.active_plans()
    if graph_fp is None:
        from repro.fingerprint import graph_fingerprint

        graph_fp = graph_fingerprint(graph)
    pool = _PERSISTENT
    if pool is not None and pool.matches(graph_fp, workers, trace, plans):
        return pool
    if pool is not None:
        pool.close()
    _PERSISTENT = ScorerPool(
        graph, workers, trace=trace, plans=plans, graph_fp=graph_fp
    )
    return _PERSISTENT


def active_pool() -> ScorerPool | None:
    """The registered persistent pool, if any (for tests and stats)."""
    return _PERSISTENT


def close_pool() -> None:
    """Close and drop the persistent pool (idempotent)."""
    global _PERSISTENT
    if _PERSISTENT is not None:
        _PERSISTENT.close()
        _PERSISTENT = None


atexit.register(close_pool)

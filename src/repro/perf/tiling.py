"""Loop tiling of the convolution nest.

The accelerator executes each convolution as a two-level tiled loop nest
(Fig. 1(a) of the paper).  The outer loops walk tiles of the output
channels (``tm``), input channels (``tn``) and output spatial extent
(``th`` x ``tw``); each outer iteration streams one tile of each tensor
between DDR and the on-chip tile buffers.  The tiling determines

* the **tile buffer sizes** (doubled for double buffering), and
* the **reload factors**: with output channels outermost, the whole input
  feature map is re-streamed once per output-channel tile
  (``ceil(M/tm)`` times) and the whole weight tensor once per spatial tile
  (``ceil(H/th) * ceil(W/tw)`` times), while each output element is written
  exactly once (partial sums accumulate on chip across input-channel
  tiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TileConfig:
    """Tile sizes of the convolution loop nest.

    Attributes:
        tm: Output-channel tile (outermost loop).
        tn: Input-channel tile (innermost, accumulated on chip).
        th: Output-row tile.
        tw: Output-column tile.
    """

    tm: int
    tn: int
    th: int
    tw: int

    def __post_init__(self) -> None:
        if min(self.tm, self.tn, self.th, self.tw) <= 0:
            raise ValueError(f"tile sizes must be positive, got {self}")

    # ------------------------------------------------------------------
    # Reload factors
    # ------------------------------------------------------------------
    def output_channel_trips(self, out_channels: int) -> int:
        """Outer-loop trip count over output channels: ceil(M / tm)."""
        return math.ceil(out_channels / self.tm)

    def spatial_trips(self, out_h: int, out_w: int) -> int:
        """Trip count over output spatial tiles: ceil(H/th) * ceil(W/tw)."""
        return math.ceil(out_h / self.th) * math.ceil(out_w / self.tw)

    # ------------------------------------------------------------------
    # GEMM loop nest
    # ------------------------------------------------------------------
    # A GEMM node reuses the same tile buffers under a transposed naming:
    # token rows (M) take the place of the spatial extent, output features
    # (P) take the place of output channels, and the reduction depth (N)
    # accumulates on chip across input-feature tiles — so, exactly as for
    # convolution, the reduction tile ``tn`` bounds buffer slices but
    # never adds reloads or compute trips.

    @property
    def gemm_rows(self) -> int:
        """Token rows per tile: the spatial tile reinterpreted (th * tw)."""
        return self.th * self.tw

    def gemm_row_trips(self, m: int) -> int:
        """Trip count over token-row tiles: ceil(M / (th * tw))."""
        return math.ceil(m / self.gemm_rows)

    def gemm_output_trips(self, p: int) -> int:
        """Trip count over output-feature tiles: ceil(P / tm)."""
        return math.ceil(p / self.tm)

    # ------------------------------------------------------------------
    # Tile buffer footprints
    # ------------------------------------------------------------------
    def ifmap_tile_elems(self, kernel: tuple[int, int], stride: tuple[int, int]) -> int:
        """Elements of one input tile, including the convolution halo."""
        in_h = self.th * stride[0] + kernel[0] - stride[0]
        in_w = self.tw * stride[1] + kernel[1] - stride[1]
        return self.tn * in_h * in_w

    def weight_tile_elems(self, kernel: tuple[int, int]) -> int:
        """Elements of one weight tile."""
        return self.tm * self.tn * kernel[0] * kernel[1]

    def ofmap_tile_elems(self) -> int:
        """Elements of one output tile."""
        return self.tm * self.th * self.tw

    def tile_buffer_bytes(
        self,
        element_bytes: int,
        kernel: tuple[int, int] = (3, 3),
        stride: tuple[int, int] = (1, 1),
        double_buffered: bool = True,
    ) -> int:
        """Total on-chip footprint of the three tile buffers.

        Args:
            element_bytes: Bytes per element at the design precision.
            kernel: Worst-case kernel the buffers must accommodate.
            stride: Stride paired with that kernel.
            double_buffered: Double the footprint for ping-pong operation
                (the accelerator overlaps transfer with compute, Sec. 3.3).
        """
        elems = (
            self.ifmap_tile_elems(kernel, stride)
            + self.weight_tile_elems(kernel)
            + self.ofmap_tile_elems()
        )
        factor = 2 if double_buffered else 1
        return elems * element_bytes * factor

    def __str__(self) -> str:
        return f"(tm={self.tm}, tn={self.tn}, th={self.th}, tw={self.tw})"

"""Exploded accelerator design spaces with dominance pre-pruning.

:mod:`repro.perf.dse` sweeps the tile axis of *one* base design.  This
module widens the sweep to the full design space the external DSE of
[18] would explore — PE array shapes x tile sizes x clock x precision x
DDR configuration — at the 10^5-to-10^6-point scale where SoMa/AutoWS
(PAPERS.md) show communication/allocation co-design actually pays off.

Scoring every point at that scale is wasteful, because most of the space
is *provably* uncompetitive before any scoring happens:

* **Tile dominance.**  The sweep score is invariant in the input-channel
  tile ``tn`` — conv reload traffic depends only on ``tm`` and
  ``th x tw``, and GEMM nodes tile only their token-row (``th * tw``)
  and output-feature (``tm``) loops while the reduction depth
  accumulates on chip — so of all budget-feasible tiles sharing
  ``(tm, th, tw)`` only the first-enumerated needs scoring — the rest
  are equal-score duplicates with a larger or equal buffer footprint.
* **Roofline base dominance.**  :func:`repro.perf.roofline.sweep_lower_bound`
  evaluates a base with every DDR reload at its floor of one trip; no
  tile on that base can do better.  Bases are scored in ascending order
  of this bound, and a base whose *floor* already exceeds the best
  design found so far is discarded whole, with every tile unscored.

Both prunings are exact: :func:`explore_space` returns the bit-identical
best design point (same accelerator, same score) with pruning on or off,
and every pruned count is reported — in the returned
:class:`SpaceResult`, in ``WorkerStats.points_pruned`` and in the
``dse.points_pruned`` metric.  There are no silent caps.

Scoring streams through one persistent :class:`~repro.perf.pool.ScorerPool`
shared across every base (workers memoise per-base scorers in a small
LRU), and per-tile scores warm-start from the
:class:`~repro.cache.store.CompilationCache` under the same per-base
``sweep_key`` that :func:`~repro.perf.dse.explore_designs` uses — a
repeated exploded sweep only scores what it has never seen.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CapacityError, ConfigError
from repro.fingerprint import accel_fingerprint
from repro.hw.fpga import FPGADevice, VU9P
from repro.hw.precision import ALL_PRECISIONS, INT8, INT16, Precision
from repro.obs import spans as obs
from repro.perf import pool as pool_mod
from repro.perf.dse import DesignPoint, WorkerStats, _SweepScorer, explore_designs
from repro.perf.pool import ScorerPool
from repro.perf.systolic import AcceleratorConfig, SystolicArray
from repro.perf.tiling import TileConfig

if TYPE_CHECKING:
    from repro.cache.store import CompilationCache
    from repro.ir.graph import ComputationGraph

__all__ = [
    "DesignSpace",
    "SampledSpace",
    "SpaceResult",
    "explore_space",
    "large_space",
    "small_space",
]


@dataclass(frozen=True)
class DesignSpace:
    """A cartesian accelerator design space.

    The cross product of every axis below defines the candidate set; one
    *base* design per (array, precision, frequency, DDR efficiency,
    residency caps) combination, times one point per tile shape.  Bases
    whose array does not fit the device's DSP budget at the requested
    precision are excluded up front (and counted — see
    :meth:`infeasible_bases`).

    Attributes:
        arrays: PE array shapes to consider.
        precisions: Arithmetic precisions.
        frequencies: Achieved clocks in Hz.
        ddr_efficiencies: Sustained fractions of theoretical DDR
            bandwidth (the memory-system axis).
        tm_values: Output-channel tile extents.
        tn_values: Input-channel tile extents.
        spatial_values: Square spatial tile extents (``th == tw``).
        if_resident_caps: Input-residency buffer capacities in bytes
            (0 disables the option).
        wt_resident_caps: Weight-residency buffer capacities in bytes.
        device: Target FPGA.
    """

    arrays: tuple[SystolicArray, ...]
    precisions: tuple[Precision, ...] = (INT16, INT8)
    frequencies: tuple[float, ...] = (190e6,)
    ddr_efficiencies: tuple[float, ...] = (1.0,)
    tm_values: tuple[int, ...] = (16, 32, 64, 128)
    tn_values: tuple[int, ...] = (16, 32, 64)
    spatial_values: tuple[int, ...] = (7, 14, 28, 56)
    if_resident_caps: tuple[int, ...] = (0,)
    wt_resident_caps: tuple[int, ...] = (0,)
    device: FPGADevice = VU9P

    def __post_init__(self) -> None:
        for axis in (
            "arrays", "precisions", "frequencies", "ddr_efficiencies",
            "tm_values", "tn_values", "spatial_values",
            "if_resident_caps", "wt_resident_caps",
        ):
            if not getattr(self, axis):
                raise ConfigError(
                    f"design-space axis {axis!r} must be non-empty"
                )

    def tiles(self) -> list[TileConfig]:
        """Tile shapes, in canonical enumeration order."""
        return [
            TileConfig(tm=tm, tn=tn, th=sp, tw=sp)
            for tm, tn, sp in itertools.product(
                self.tm_values, self.tn_values, self.spatial_values
            )
        ]

    def _base_combos(self):
        return itertools.product(
            self.precisions,
            self.arrays,
            self.frequencies,
            self.ddr_efficiencies,
            self.if_resident_caps,
            self.wt_resident_caps,
        )

    def bases(self) -> list[AcceleratorConfig]:
        """Feasible base designs, in canonical enumeration order.

        Names are deterministic functions of the axis values, so the
        per-base ``sweep_key`` — and with it the warm-start cache —
        is stable across runs.
        """
        tile0 = TileConfig(
            tm=self.tm_values[0],
            tn=self.tn_values[0],
            th=self.spatial_values[0],
            tw=self.spatial_values[0],
        )
        out: list[AcceleratorConfig] = []
        for prec, array, freq, eff, if_cap, wt_cap in self._base_combos():
            if array.dsp_slices(prec) > self.device.dsp_slices:
                continue
            out.append(
                AcceleratorConfig(
                    name=(
                        f"space-{prec.name}-{array}"
                        f"-f{freq / 1e6:g}mhz-e{eff:g}"
                        f"-ri{if_cap}-rw{wt_cap}"
                    ),
                    precision=prec,
                    array=array,
                    tile=tile0,
                    frequency=freq,
                    device=self.device,
                    ddr_efficiency=eff,
                    if_resident_cap=if_cap,
                    wt_resident_cap=wt_cap,
                )
            )
        return out

    def infeasible_bases(self) -> int:
        """Axis combinations excluded by the device's DSP budget."""
        return sum(
            1
            for prec, array, *_ in self._base_combos()
            if array.dsp_slices(prec) > self.device.dsp_slices
        )

    def size(self) -> int:
        """Candidate (base, tile) points, before any budget filtering."""
        return len(self.bases()) * len(self.tiles())

    def groups(self) -> list[tuple[AcceleratorConfig, list[TileConfig]]]:
        """(base, candidate tiles) pairs in canonical order."""
        tiles = self.tiles()
        return [(base, tiles) for base in self.bases()]

    def sample(self, n: int, seed: int = 0) -> "SampledSpace":
        """A uniform random subset of ``n`` points (without replacement).

        Sampling is deterministic in ``seed``, and the surviving tiles
        of each base keep their canonical enumeration order, so pruned
        and unpruned sweeps of the same sample stay comparable.
        """
        if n <= 0:
            raise ConfigError("sample size must be positive", details={"n": n})
        bases = self.bases()
        tiles = self.tiles()
        total = len(bases) * len(tiles)
        n = min(n, total)
        rng = random.Random(seed)
        picks = sorted(rng.sample(range(total), n))
        grouped: dict[int, list[TileConfig]] = {}
        for p in picks:
            grouped.setdefault(p // len(tiles), []).append(tiles[p % len(tiles)])
        return SampledSpace(
            groups_=[(bases[i], grouped[i]) for i in sorted(grouped)],
            infeasible=self.infeasible_bases(),
        )


@dataclass
class SampledSpace:
    """An explicit (base, tiles) subset produced by :meth:`DesignSpace.sample`."""

    groups_: list[tuple[AcceleratorConfig, list[TileConfig]]]
    infeasible: int = 0

    def size(self) -> int:
        return sum(len(tiles) for _, tiles in self.groups_)

    def groups(self) -> list[tuple[AcceleratorConfig, list[TileConfig]]]:
        return self.groups_

    def infeasible_bases(self) -> int:
        return self.infeasible


def small_space(device: FPGADevice = VU9P) -> DesignSpace:
    """The ~2k-point space the CI ``dse-scaling`` job sweeps."""
    return DesignSpace(
        arrays=(
            SystolicArray(rows=32, cols=16, simd=11),
            SystolicArray(rows=16, cols=16, simd=8),
            SystolicArray(rows=8, cols=8, simd=8),
        ),
        precisions=(INT16, INT8),
        frequencies=(150e6, 190e6, 230e6),
        ddr_efficiencies=(0.7, 1.0),
        device=device,
    )


def large_space(device: FPGADevice = VU9P) -> DesignSpace:
    """The exploded ~10^5-point space (ROADMAP open item 2).

    Six array shapes x three precisions (FP32 only where five DSPs per
    MAC still fit the device) x six clocks x four DDR efficiencies x two
    input-residency options, times a 200-tile grid.
    """
    return DesignSpace(
        arrays=(
            SystolicArray(rows=32, cols=16, simd=11),
            SystolicArray(rows=16, cols=16, simd=11),
            SystolicArray(rows=32, cols=8, simd=11),
            SystolicArray(rows=16, cols=16, simd=8),
            SystolicArray(rows=16, cols=8, simd=8),
            SystolicArray(rows=8, cols=8, simd=8),
        ),
        precisions=ALL_PRECISIONS,
        frequencies=(120e6, 150e6, 180e6, 190e6, 220e6, 250e6),
        ddr_efficiencies=(0.6, 0.7, 0.85, 1.0),
        tm_values=(8, 16, 24, 32, 48, 64, 96, 128, 160, 192),
        tn_values=(8, 16, 32, 64),
        spatial_values=(7, 14, 28, 56, 112),
        if_resident_caps=(0, 1 << 15),
        device=device,
    )


@dataclass
class SpaceResult:
    """Outcome of one :func:`explore_space` sweep.

    Attributes:
        points: Scored design points, ascending UMM latency.  With
            pruning on this omits the provably dominated points, but its
            head — the best design and score — is bit-identical to an
            unpruned sweep.
        total_points: Budget-feasible (base, tile) points in the space.
        scored_points: Points actually scored (or warm-started).
        pruned_dominated: Points removed by ``tn`` tile dominance.
        pruned_bounded: Points removed whole-base by the roofline bound.
        infeasible_bases: Axis combinations excluded by the DSP budget.
        bases_total: Feasible bases in the space.
        bases_scored: Bases that reached scoring.
        bases_pruned: Bases discarded entirely by the roofline bound.
        stats: Aggregated :class:`~repro.perf.dse.WorkerStats` over every
            per-base sweep (``points_pruned`` holds the pruned total).
    """

    points: list[DesignPoint]
    total_points: int
    scored_points: int
    pruned_dominated: int
    pruned_bounded: int
    infeasible_bases: int
    bases_total: int
    bases_scored: int
    bases_pruned: int
    stats: WorkerStats = field(default_factory=WorkerStats)

    @property
    def pruned_points(self) -> int:
        """All points discarded before scoring."""
        return self.pruned_dominated + self.pruned_bounded

    @property
    def best(self) -> DesignPoint:
        """The lowest-latency design in the space."""
        return self.points[0]


def _dominant_tiles(
    tiles: list[TileConfig], element_bytes: int, budget: int
) -> tuple[list[TileConfig], int, int]:
    """Budget-filter then drop ``tn`` duplicates.

    Returns (kept tiles, feasible count, dominated count).  The sweep
    score never depends on ``tn``, so among feasible tiles sharing
    ``(tm, th, tw)`` only the first-enumerated is kept — it is the one
    a full stable-sorted sweep would rank first of the group anyway.
    """
    feasible = [
        t for t in tiles if t.tile_buffer_bytes(element_bytes) <= budget
    ]
    kept: list[TileConfig] = []
    seen: set[tuple[int, int, int]] = set()
    for tile in feasible:
        key = (tile.tm, tile.th, tile.tw)
        if key in seen:
            continue
        seen.add(key)
        kept.append(tile)
    return kept, len(feasible), len(feasible) - len(kept)


def _lower_bounds(
    graph: "ComputationGraph",
    prepped: list[tuple[int, "AcceleratorConfig", list[TileConfig]]],
    sweep_pool: ScorerPool | None,
    workers: int,
    stats: WorkerStats,
    scorers: dict[int, _SweepScorer],
) -> dict[int, float]:
    """Roofline floor per base, fanned out to the pool when one exists.

    Characterising a base for its bound costs the same graph walk the
    sweep itself pays, so on heavily pruned exploded spaces the bounds
    are most of the total work.  With a pool the batches run in the
    workers (warming their per-base scorer caches as a side effect);
    without one — or if the pool fails mid-flight — the parent computes
    the missing floors itself and keeps those scorers for the sweep.
    The floats are identical either way, so pruning decisions are too.
    """
    bounds: dict[int, float] = {}
    if sweep_pool is not None and workers > 1 and len(prepped) > 1:
        try:
            _, elapsed = sweep_pool.ensure()
            stats.init_seconds += elapsed
            per_batch = max(1, math.ceil(len(prepped) / (workers * 2)))
            futures = []
            for start in range(0, len(prepped), per_batch):
                batch = prepped[start : start + per_batch]
                futures.append((
                    [idx for idx, _, _ in batch],
                    sweep_pool.submit_bounds(
                        [base for _, base, _ in batch],
                        [
                            accel_fingerprint(base, include_tile=False)
                            for _, base, _ in batch
                        ],
                    ),
                ))
            for idxs, future in futures:
                for idx, value in zip(idxs, future.result()):
                    bounds[idx] = value
        except Exception:
            bounds.clear()  # broken pool: fall through to parent-side
    for idx, base, _ in prepped:
        if idx not in bounds:
            scorer = _SweepScorer(graph, base)
            scorers[idx] = scorer
            bounds[idx] = scorer.lower_bound()
    return bounds


def explore_space(
    graph: "ComputationGraph",
    space: DesignSpace | SampledSpace,
    tile_buffer_budget: int,
    workers: int = 1,
    prune: bool = True,
    top: int | None = None,
    chunk_timeout: float | None = None,
    chunk_retries: int = 1,
    stats: WorkerStats | None = None,
    cache: "CompilationCache | None" = None,
    pool: ScorerPool | None = None,
    pool_mode: str = "keep",
) -> SpaceResult:
    """Sweep an exploded design space, pruning what cannot win.

    Args:
        graph: The DNN to optimise for.
        space: A :class:`DesignSpace` (cartesian) or the result of
            :meth:`DesignSpace.sample` (sampled mode).
        tile_buffer_budget: Byte budget for the double-buffered tile
            buffers, applied per base at its element width.
        workers: Process count for scoring; every base shares one pool.
        prune: Apply tile dominance and the roofline base bound.  The
            best design and score are bit-identical either way; pruning
            only skips provably worse points (all counted, never
            silent).
        top: Optionally truncate the returned points to the best ``top``.
        chunk_timeout: Per-chunk deadline forwarded to each base sweep.
        chunk_retries: Chunk retry budget forwarded to each base sweep.
        stats: Optional aggregate :class:`~repro.perf.dse.WorkerStats`.
        cache: Optional compilation cache; per-tile scores warm-start
            under each base's ``sweep_key``.
        pool: Explicit pool to score on (caller owns its lifetime).
        pool_mode: ``"keep"`` (default) uses the process-wide persistent
            pool; ``"fresh"`` builds a private pool and closes it before
            returning.  Ignored when ``pool`` is given.

    Returns:
        A :class:`SpaceResult`; ``result.best`` is the space optimum.

    Raises:
        repro.errors.CapacityError: When no point in the space fits the
            tile-buffer budget.
        repro.errors.ConfigError: On ``workers < 1`` or an unknown
            ``pool_mode``.
    """
    if workers < 1:
        raise ConfigError("workers must be at least 1", details={"workers": workers})
    if pool_mode not in ("keep", "fresh"):
        raise ConfigError(
            "pool_mode must be 'keep' or 'fresh'",
            details={"pool_mode": pool_mode},
        )
    stats = stats if stats is not None else WorkerStats()
    groups = space.groups()

    # Per-base preparation: budget filter and tile dominance.
    prepped: list[tuple[int, AcceleratorConfig, list[TileConfig]]] = []
    total_points = 0
    pruned_dominated = 0
    for idx, (base, tiles) in enumerate(groups):
        if prune:
            kept, feasible, dominated = _dominant_tiles(
                tiles, base.precision.bytes, tile_buffer_budget
            )
        else:
            kept = [
                t for t in tiles
                if t.tile_buffer_bytes(base.precision.bytes) <= tile_buffer_budget
            ]
            feasible, dominated = len(kept), 0
        total_points += feasible
        pruned_dominated += dominated
        if kept:
            prepped.append((idx, base, kept))
    if not prepped:
        raise CapacityError(
            f"no design point in the space fits a {tile_buffer_budget}-byte "
            "tile-buffer budget",
            details={"tile_buffer_budget": tile_buffer_budget},
        )

    pruned_bounded = 0
    bases_pruned = 0
    incumbent = float("inf")
    per_base: dict[int, list[DesignPoint]] = {}
    private_pool: ScorerPool | None = None
    sweep_pool = pool
    with obs.span(
        "dse.space",
        graph=graph.name,
        bases=len(prepped),
        points=total_points,
        workers=workers,
        prune=prune,
    ):
        try:
            if sweep_pool is None and workers > 1:
                if pool_mode == "fresh":
                    private_pool = ScorerPool(graph, workers)
                    sweep_pool = private_pool
                else:
                    sweep_pool = pool_mod.persistent_pool(graph, workers)
            scorers: dict[int, _SweepScorer] = {}
            bounds: dict[int, float] = {}
            if prune:
                bounds = _lower_bounds(
                    graph, prepped, sweep_pool, workers, stats, scorers
                )
                # Most promising floors first maximises how early the
                # incumbent tightens and how much the bound can discard.
                order = sorted(prepped, key=lambda p: (bounds[p[0]], p[0]))
            else:
                order = prepped
            for idx, base, kept in order:
                if prune and bounds[idx] > incumbent:
                    # Strictly above the incumbent: no tile on this base
                    # can beat *or tie* the best already found.
                    pruned_bounded += len(kept)
                    bases_pruned += 1
                    continue
                base_stats = WorkerStats()
                points = explore_designs(
                    graph,
                    base,
                    tile_buffer_budget,
                    tiles=kept,
                    workers=workers,
                    chunk_timeout=chunk_timeout,
                    chunk_retries=chunk_retries,
                    stats=base_stats,
                    cache=cache,
                    pool=sweep_pool,
                    scorer=scorers.get(idx),
                )
                stats.absorb(base_stats)
                per_base[idx] = points
                incumbent = min(incumbent, points[0].umm_latency)
        finally:
            if private_pool is not None:
                private_pool.close()
        stats.points_pruned += pruned_dominated + pruned_bounded
        obs.annotate(
            "dse.pruned",
            dominated=pruned_dominated,
            bounded=pruned_bounded,
            bases_pruned=bases_pruned,
            scored=total_points - pruned_dominated - pruned_bounded,
        )
        if obs.enabled():
            from repro.obs.metrics import registry

            registry().counter("dse.points_pruned").inc(
                pruned_dominated + pruned_bounded, graph=graph.name
            )

    # Reassemble in canonical base order before the final stable sort:
    # ties across bases then resolve exactly as an unpruned sweep would.
    merged: list[DesignPoint] = []
    for idx in sorted(per_base):
        merged.extend(per_base[idx])
    merged.sort(key=lambda p: p.umm_latency)
    scored_points = sum(len(points) for points in per_base.values())
    return SpaceResult(
        points=merged[:top] if top is not None else merged,
        total_points=total_points,
        scored_points=scored_points,
        pruned_dominated=pruned_dominated,
        pruned_bounded=pruned_bounded,
        infeasible_bases=space.infeasible_bases(),
        bases_total=len(groups),
        bases_scored=len(per_base),
        bases_pruned=bases_pruned,
        stats=stats,
    )

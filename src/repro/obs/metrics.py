"""Metrics: labeled counters, gauges and histograms.

The aggregate side of :mod:`repro.obs` — where spans answer "where did
this run's milliseconds go", metrics answer "how much work happened":
engine transitions, DSE chunk retries, degradation levels.  Each metric
owns a family of *series* keyed by its label values, mirroring the
Prometheus data model but with zero dependencies and an in-process
registry.

Instruments are cheap (one lock + dict update per observation) but not
free, so production call sites record them at run granularity — e.g.
mirroring :class:`repro.perf.engine.EngineStats` once per compilation —
never inside per-node hot loops.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "registry",
    "reset_registry",
]


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(key: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _Metric:
    """Shared machinery: name, description, per-label-set series."""

    kind = "metric"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}
        self._lock = threading.Lock()

    def series(self) -> dict[str, Any]:
        """Snapshot of every series as ``label-string -> value``."""
        with self._lock:
            return {_label_str(key): self._snap(value) for key, value in self._series.items()}

    @staticmethod
    def _snap(value: Any) -> Any:
        return value


class Counter(_Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {value})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


class Gauge(_Metric):
    """A point-in-time value per label set (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)


@dataclass
class HistogramSummary:
    """Running summary of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


class Histogram(_Metric):
    """Distribution summary (count/total/min/max/mean) per label set."""

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            summary = self._series.get(key)
            if summary is None:
                summary = self._series[key] = HistogramSummary()
            summary.count += 1
            summary.total += value
            summary.minimum = min(summary.minimum, value)
            summary.maximum = max(summary.maximum, value)

    def summary(self, **labels: Any) -> HistogramSummary:
        with self._lock:
            return self._series.get(_label_key(labels), HistogramSummary())

    @staticmethod
    def _snap(value: HistogramSummary) -> dict:
        return value.as_dict()


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Asking twice for the same name returns the same instrument; asking
    for an existing name as a different kind raises, so two subsystems
    cannot silently fight over one series.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type, name: str, description: str) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, description)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, description)

    def snapshot(self) -> dict[str, dict]:
        """Every metric with every series, JSON-friendly, sorted by name."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: {
                "kind": metric.kind,
                "description": metric.description,
                "series": metric.series(),
            }
            for name, metric in sorted(metrics.items())
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry production code records into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the process-wide registry (between runs/tests)."""
    _REGISTRY.reset()

"""Unified observability: spans, metrics, exporters.

One shared answer to "where did the milliseconds go on this run?" —
previously split across ``PassManager.timings()``, ``EngineStats`` and
``WorkerStats``, each with its own ad-hoc reporting.  Three pieces:

* **Spans** (:mod:`repro.obs.spans`): hierarchical timed regions with a
  thread-local stack, structured attributes and instant annotations;
  workers serialize theirs back for cross-process merging.
* **Metrics** (:mod:`repro.obs.metrics`): a registry of labeled
  counters/gauges/histograms for aggregate work counts.
* **Exporters** (:mod:`repro.obs.export`): Chrome/Perfetto trace JSON,
  a flat JSON dump, and the human ``lcmm stats`` table.

Zero dependencies, stdlib only.  Tracing is **off by default** and the
disabled path is a no-op guard (one global load per :func:`span` call;
see ``benchmarks/test_obs_overhead.py``), so instrumented code is free
to ship with spans in place.  Naming conventions live in
``docs/observability.md``.

Typical use::

    from repro import obs

    with obs.tracing() as tracer:
        result = run_lcmm(graph, accel)
    obs.write_chrome_trace("trace.json", tracer,
                           metrics=obs.registry().snapshot())
"""

from repro.obs.export import (
    chrome_trace,
    flat_json,
    prometheus_text,
    stats_table,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    registry,
    reset_registry,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanEvent,
    SpanRecord,
    Tracer,
    annotate,
    current_span,
    disable,
    enable,
    enabled,
    span,
    timed_span,
    tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "SpanRecord",
    "Tracer",
    "annotate",
    "chrome_trace",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "flat_json",
    "prometheus_text",
    "registry",
    "reset_registry",
    "span",
    "stats_table",
    "timed_span",
    "tracer",
    "tracing",
    "write_chrome_trace",
]

"""Hierarchical tracing spans with a thread-local span stack.

The tracing side of :mod:`repro.obs`.  A :class:`Span` is a context
manager that measures monotonic wall time and, when a :class:`Tracer` is
active, records itself with structured attributes, a unique id and a
parent link taken from the top of the calling thread's span stack — so
nested ``with span(...)`` blocks form a tree without any explicit
plumbing.

**Disabled cost is one global load.**  :func:`span` returns the shared
:data:`NULL_SPAN` singleton when no tracer is active; entering and
exiting it does nothing at all.  Call sites that need the measured wall
time even without a tracer (the :class:`PassManager`'s per-pass
accounting) use :func:`timed_span`, which always times but only records
when a tracer is active.

**Cross-process merging.**  Workers (the parallel DSE pool) run their
own tracer, serialize finished spans with :meth:`SpanRecord.as_dict`,
and ship them back with their results; the parent tracer's
:meth:`Tracer.merge` remaps span ids into its own id space — preserving
parent/child links within the merged batch — and tags the records with
the worker's process label.  Clock epochs are *not* aligned across
processes: merged spans stay on their own process timeline (Chrome's
trace viewer renders each pid separately), and the schema only promises
monotonicity within a process.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanEvent",
    "SpanRecord",
    "Tracer",
    "annotate",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "span",
    "timed_span",
    "tracer",
    "tracing",
]


@dataclass(frozen=True)
class SpanEvent:
    """One instant annotation: a named point in time inside a trace.

    Attributes:
        name: Kebab-case event tag (e.g. ``"fault-injected"``).
        time: Seconds relative to the owning tracer's epoch.
        attrs: Structured supporting values.
    """

    name: str
    time: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanEvent":
        return cls(
            name=data["name"], time=data["time"], attrs=dict(data.get("attrs", {}))
        )


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, with times relative to its tracer's epoch.

    Attributes:
        name: Hierarchical dotted span name (``"pass.allocate_dnnk"``).
        span_id: Unique (per trace) id.
        parent_id: Enclosing span's id, or ``None`` for a root span.
        start: Seconds from the tracer epoch to span entry.
        duration: Wall seconds between entry and exit (never negative).
        process: Label of the emitting process (``"main"``,
            ``"dse-worker-1234"``...).
        thread: ``threading.get_ident()`` of the emitting thread.
        attrs: Structured attributes given at creation (plus ``"error"``
            when the span exited via an exception).
        events: Instant annotations emitted inside the span.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    duration: float
    process: str
    thread: int
    attrs: Mapping[str, Any] = field(default_factory=dict)
    events: tuple[SpanEvent, ...] = ()

    def as_dict(self) -> dict:
        """JSON/pickle-friendly view (the worker serialization format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "process": self.process,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data["start"],
            duration=data["duration"],
            process=data.get("process", "main"),
            thread=data.get("thread", 0),
            attrs=dict(data.get("attrs", {})),
            events=tuple(
                SpanEvent.from_dict(event) for event in data.get("events", ())
            ),
        )


class Tracer:
    """Collects finished spans for one process.

    Thread-safe: ids come from an atomic counter, the span stack is
    thread-local (each thread nests independently), and the finished
    record list is guarded by a lock.
    """

    def __init__(self, process: str = "main") -> None:
        self.process = process
        #: ``perf_counter`` value all record times are relative to.
        self.epoch = time.perf_counter()
        #: Finished spans, in completion order.
        self.records: list[SpanRecord] = []
        #: Instant annotations emitted outside any open span.
        self.events: list[SpanEvent] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list["Span"]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_span(self) -> "Span | None":
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def next_id(self) -> int:
        return next(self._ids)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)

    def add_event(self, event: SpanEvent) -> None:
        with self._lock:
            self.events.append(event)

    def merge(
        self, serialized: Iterable[Mapping[str, Any]], process: str | None = None
    ) -> int:
        """Adopt spans serialized in another process; returns the count.

        Span ids are remapped into this tracer's id space so merged
        traces never collide; parent links *within* the batch are
        remapped consistently, while parents that are not part of the
        batch (none, in practice) become roots.  Times are left on the
        worker's own epoch — the schema promises monotonicity per
        process, not cross-process alignment.
        """
        batch = [SpanRecord.from_dict(data) for data in serialized]
        id_map = {record.span_id: self.next_id() for record in batch}
        merged = [
            replace(
                record,
                span_id=id_map[record.span_id],
                parent_id=id_map.get(record.parent_id),
                process=process if process is not None else record.process,
            )
            for record in batch
        ]
        with self._lock:
            self.records.extend(merged)
        return len(merged)


#: The process-wide active tracer (``None`` = tracing disabled).
_ACTIVE: Tracer | None = None


class Span:
    """A timed region; records into the tracer active at entry.

    Always measures wall time (``seconds`` is valid even with tracing
    disabled); id assignment, stack membership and record emission only
    happen under an active tracer.  Reusable but not reentrant.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start", "_end", "_tracer", "_events")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._start = 0.0
        self._end = 0.0
        self._tracer: Tracer | None = None
        self._events: list[SpanEvent] = []

    @property
    def seconds(self) -> float:
        """Measured wall time (0.0 before the span has exited)."""
        return self._end - self._start if self._end else 0.0

    def annotate(self, name: str, **attrs: Any) -> None:
        """Attach an instant event to this span (no-op when untraced)."""
        if self._tracer is not None:
            self._events.append(
                SpanEvent(name, time.perf_counter() - self._tracer.epoch, attrs)
            )

    def __enter__(self) -> "Span":
        tracer = _ACTIVE
        self._tracer = tracer
        if tracer is not None:
            self.span_id = tracer.next_id()
            stack = tracer._stack()
            self.parent_id = stack[-1].span_id if stack else None
            stack.append(self)
        self._start = time.perf_counter()
        self._end = 0.0
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = time.perf_counter()
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            elif self in stack:  # pragma: no cover — unbalanced exit
                stack.remove(self)
            attrs = dict(self.attrs)
            if exc_type is not None:
                attrs["error"] = exc_type.__name__
            tracer.record(
                SpanRecord(
                    name=self.name,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    start=self._start - tracer.epoch,
                    duration=self._end - self._start,
                    process=tracer.process,
                    thread=threading.get_ident(),
                    attrs=attrs,
                    events=tuple(self._events),
                )
            )
            self._events = []
        return False


class _NullSpan:
    """The disabled-tracing span: every operation is a no-op."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, name: str, **attrs: Any) -> None:
        return None


#: Shared no-op span returned by :func:`span` while tracing is disabled.
NULL_SPAN = _NullSpan()


def enabled() -> bool:
    """Whether a tracer is currently active."""
    return _ACTIVE is not None


def tracer() -> Tracer | None:
    """The active tracer, or ``None``."""
    return _ACTIVE


def enable(process: str = "main") -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _ACTIVE
    _ACTIVE = Tracer(process)
    return _ACTIVE


def disable() -> None:
    """Remove the active tracer; :func:`span` reverts to the no-op."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(process: str = "main") -> Iterator[Tracer]:
    """Scoped tracing: installs a fresh tracer, restores the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    installed = Tracer(process)
    _ACTIVE = installed
    try:
        yield installed
    finally:
        _ACTIVE = previous


def span(name: str, **attrs: Any):
    """A traced region, or the shared no-op when tracing is disabled.

    The instrumentation primitive for call sites that only care about
    the trace: with no tracer active this is one global load and returns
    :data:`NULL_SPAN` without allocating anything.
    """
    if _ACTIVE is None:
        return NULL_SPAN
    return Span(name, **attrs)


def timed_span(name: str, **attrs: Any) -> Span:
    """A span that measures wall time even when tracing is disabled.

    For call sites whose timing feeds an API of its own (the pass
    manager's ``timings()``): the measurement always happens, the trace
    record only under an active tracer.
    """
    return Span(name, **attrs)


def current_span() -> Span | None:
    """The innermost open span on this thread (``None`` when untraced)."""
    tracer = _ACTIVE
    return tracer.current_span() if tracer is not None else None


def annotate(name: str, **attrs: Any) -> None:
    """Attach an instant event to the innermost open span.

    Falls back to the tracer's top-level event list when no span is open;
    a single dict-load no-op when tracing is disabled.  This is how
    deeply nested machinery (fault injection, recovery handlers) marks
    occurrences without threading a span through every signature.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.annotate(name, **attrs)
    else:
        tracer.add_event(SpanEvent(name, time.perf_counter() - tracer.epoch, attrs))

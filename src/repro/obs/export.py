"""Trace and metrics exporters.

Three consumers, three formats:

* :func:`chrome_trace` — the Chrome ``chrome://tracing`` / Perfetto JSON
  object model (``traceEvents`` with complete ``"X"`` events per span,
  instant ``"i"`` events per annotation, and process-name metadata), one
  timeline per process so merged DSE worker spans render beside the
  parent;
* :func:`flat_json` — the full span/event/metric dump for programmatic
  consumers and the property tests;
* :func:`stats_table` — the human ``lcmm stats`` rendition: spans
  aggregated by name (count, total, mean, min, max) followed by every
  metric series.

All exporters are pure functions over :class:`~repro.obs.spans.SpanRecord`
sequences — they never touch the active tracer, so tests can feed them
synthetic records.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.spans import SpanEvent, SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "flat_json",
    "prometheus_text",
    "stats_table",
    "write_chrome_trace",
]


def _pid_map(records: Sequence[SpanRecord]) -> dict[str, int]:
    """Stable process-label -> pid assignment; ``"main"`` is always 1."""
    pids: dict[str, int] = {}
    for record in records:
        if record.process not in pids:
            pids[record.process] = 0
    ordered = sorted(pids, key=lambda p: (p != "main", p))
    return {process: index + 1 for index, process in enumerate(ordered)}


def _tid_map(records: Sequence[SpanRecord]) -> dict[tuple[str, int], int]:
    """Per-process thread-ident -> small tid assignment."""
    tids: dict[tuple[str, int], int] = {}
    counts: dict[str, int] = {}
    for record in records:
        key = (record.process, record.thread)
        if key not in tids:
            counts[record.process] = counts.get(record.process, 0) + 1
            tids[key] = counts[record.process]
    return tids


def chrome_trace(
    records: Sequence[SpanRecord],
    events: Iterable[SpanEvent] = (),
    metrics: Mapping[str, Any] | None = None,
) -> dict:
    """The trace as a Chrome/Perfetto JSON object (not yet serialized).

    Span times are exported in microseconds, as the format requires.
    The metrics snapshot, when given, rides along under ``otherData`` —
    Perfetto ignores it, programmatic consumers keep one self-contained
    artifact.
    """
    pids = _pid_map(records)
    tids = _tid_map(records)
    trace_events: list[dict] = []
    for process, pid in sorted(pids.items(), key=lambda item: item[1]):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for record in records:
        pid = pids[record.process]
        tid = tids[(record.process, record.thread)]
        args = dict(record.attrs)
        args["span_id"] = record.span_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        trace_events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for event in record.events:
            trace_events.append(
                {
                    "ph": "i",
                    "name": event.name,
                    "ts": event.time * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": dict(event.attrs),
                }
            )
    main_pid = pids.get("main", 1)
    for event in events:
        trace_events.append(
            {
                "ph": "i",
                "name": event.name,
                "ts": event.time * 1e6,
                "pid": main_pid,
                "tid": 0,
                "s": "p",
                "args": dict(event.attrs),
            }
        )
    trace: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if metrics is not None:
        trace["otherData"] = {"metrics": dict(metrics)}
    return trace


def flat_json(
    records: Sequence[SpanRecord],
    events: Iterable[SpanEvent] = (),
    metrics: Mapping[str, Any] | None = None,
) -> dict:
    """The complete observability state as one JSON-friendly dict."""
    return {
        "spans": [record.as_dict() for record in records],
        "events": [event.as_dict() for event in events],
        "metrics": dict(metrics) if metrics is not None else {},
    }


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    metrics: Mapping[str, Any] | None = None,
) -> int:
    """Serialize a tracer's spans to ``path``; returns the span count."""
    trace = chrome_trace(tracer.records, tracer.events, metrics=metrics)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1, default=str)
        handle.write("\n")
    return len(tracer.records)


def _prom_name(name: str) -> str:
    """A registry metric name as a legal Prometheus identifier."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: str) -> str:
    """Render the registry's ``k=v,k2=v2`` label string for Prometheus."""
    if not labels:
        return ""
    pairs = []
    for part in labels.split(","):
        key, _, value = part.partition("=")
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        pairs.append(f'{_prom_name(key)}="{escaped}"')
    return "{" + ",".join(pairs) + "}"


def prometheus_text(metrics: Mapping[str, Any]) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Takes the output of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` and renders one
    ``# HELP`` / ``# TYPE`` block per metric.  Histograms — which the
    registry keeps as count/total/min/max summaries, not buckets — are
    exposed as ``<name>_count`` / ``<name>_sum`` (the standard summary
    pair) plus ``_min`` / ``_max`` gauges.  The serving daemon's
    ``/metrics`` endpoint returns exactly this.
    """
    lines: list[str] = []
    for name, payload in sorted(metrics.items()):
        prom = _prom_name(name)
        kind = payload.get("kind", "gauge")
        help_text = payload.get("description", "") or name
        series = payload.get("series", {})
        if kind == "histogram":
            lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} summary")
            for labels, value in sorted(series.items()):
                rendered = _prom_labels(labels)
                lines.append(f"{prom}_count{rendered} {value['count']}")
                lines.append(f"{prom}_sum{rendered} {value['total']:.9g}")
                if value.get("min") is not None:
                    lines.append(f"{prom}_min{rendered} {value['min']:.9g}")
                if value.get("max") is not None:
                    lines.append(f"{prom}_max{rendered} {value['max']:.9g}")
        else:
            prom_kind = "counter" if kind == "counter" else "gauge"
            lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} {prom_kind}")
            for labels, value in sorted(series.items()):
                lines.append(f"{prom}{_prom_labels(labels)} {value:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_rows(headers: tuple[str, ...], rows: list[tuple]) -> str:
    """Minimal fixed-width table (kept local: obs imports nothing above it)."""
    table = [tuple(str(cell) for cell in row) for row in [headers, *rows]]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def stats_table(
    records: Sequence[SpanRecord],
    metrics: Mapping[str, Any] | None = None,
) -> str:
    """Spans aggregated by name plus every metric series, as text."""
    aggregate: dict[str, list[float]] = {}
    for record in records:
        aggregate.setdefault(record.name, []).append(record.duration)
    span_rows = [
        (
            name,
            len(durations),
            f"{sum(durations) * 1e3:.3f}",
            f"{sum(durations) / len(durations) * 1e3:.3f}",
            f"{min(durations) * 1e3:.3f}",
            f"{max(durations) * 1e3:.3f}",
        )
        for name, durations in sorted(
            aggregate.items(), key=lambda item: -sum(item[1])
        )
    ]
    sections = [
        "Spans (by total time):",
        _format_rows(
            ("span", "count", "total ms", "mean ms", "min ms", "max ms"), span_rows
        )
        if span_rows
        else "  (none recorded)",
    ]
    if metrics:
        metric_rows = []
        for name, payload in metrics.items():
            series = payload.get("series", {})
            if not series:
                continue
            for labels, value in sorted(series.items()):
                if isinstance(value, dict):  # histogram summary
                    rendered = (
                        f"count={value['count']} total={value['total']:.6g} "
                        f"mean={value['mean']:.6g}"
                    )
                else:
                    rendered = f"{value:.6g}"
                metric_rows.append(
                    (name, payload.get("kind", "?"), labels or "-", rendered)
                )
        sections.append("")
        sections.append("Metrics:")
        sections.append(
            _format_rows(("metric", "kind", "labels", "value"), metric_rows)
            if metric_rows
            else "  (none recorded)"
        )
    return "\n".join(sections)

"""repro — reproduction of the DAC 2019 LCMM paper.

"Overcoming Data Transfer Bottlenecks in FPGA-based DNN Accelerators via
Layer Conscious Memory Management" (Wei, Liang, Cong; DAC 2019).

Top-level convenience imports cover the public API a downstream user needs:
the model zoo, the hardware descriptions, the accelerator performance
model, and the LCMM / UMM memory-management entry points.
"""

from repro.hw import FP32, INT8, INT16, Precision, VU9P, make_vu9p_ddr
from repro.models import get_model, list_models
from repro.perf import AcceleratorConfig, LatencyModel, RooflineModel, explore_designs
from repro.lcmm import LCMMResult, UMMResult, run_lcmm, run_umm

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "INT8",
    "INT16",
    "FP32",
    "VU9P",
    "make_vu9p_ddr",
    "get_model",
    "list_models",
    "AcceleratorConfig",
    "LatencyModel",
    "RooflineModel",
    "explore_designs",
    "run_lcmm",
    "run_umm",
    "LCMMResult",
    "UMMResult",
    "__version__",
]

"""FPGA device descriptions.

The paper's experiments all target the Xilinx Virtex UltraScale+ VU9P
(Sec. 2.2 and Sec. 4): 6840 DSP48E2 slices, 2160 BRAM36 blocks (~9.49 MB)
and 960 URAM blocks (33.75 MB), roughly "40 MB" of on-chip memory in total
(Fig. 2(b)), fed by four DDR4 banks of 19.2 GB/s each.  The device object
carries those inventories plus the clock frequencies the paper reports for
each design style.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.precision import Precision
from repro.hw.sram import SRAMBudget


@dataclass(frozen=True)
class FPGADevice:
    """Resource inventory of one FPGA device.

    Attributes:
        name: Device name, e.g. ``"xcvu9p"``.
        dsp_slices: Total DSP48 slices.
        clb_luts: Total CLB LUTs (used only for utilisation reporting).
        sram: On-chip memory inventory (BRAM + URAM blocks).
        ddr_banks: Number of off-chip DDR banks.
        ddr_bank_bandwidth: Peak bandwidth of one DDR bank in bytes/second.
        default_frequency: Nominal achievable clock in Hz used when a design
            does not override it.
    """

    name: str
    dsp_slices: int
    clb_luts: int
    sram: SRAMBudget
    ddr_banks: int
    ddr_bank_bandwidth: float
    default_frequency: float = 200e6

    def __post_init__(self) -> None:
        if self.dsp_slices <= 0:
            raise ValueError("dsp_slices must be positive")
        if self.ddr_banks <= 0:
            raise ValueError("ddr_banks must be positive")
        if self.ddr_bank_bandwidth <= 0:
            raise ValueError("ddr_bank_bandwidth must be positive")
        if self.default_frequency <= 0:
            raise ValueError("default_frequency must be positive")

    @property
    def sram_bytes(self) -> int:
        """Total on-chip memory in bytes (BRAM + URAM)."""
        return self.sram.total_bytes

    @property
    def total_ddr_bandwidth(self) -> float:
        """Aggregate off-chip bandwidth across all banks, bytes/second."""
        return self.ddr_banks * self.ddr_bank_bandwidth

    def peak_macs(self, precision: Precision, dsp_utilization: float = 1.0) -> int:
        """Parallel MAC units the DSP inventory can host at a precision.

        Args:
            precision: Arithmetic precision (drives DSPs per MAC).
            dsp_utilization: Fraction of DSP slices the design may claim.
        """
        if not 0.0 < dsp_utilization <= 1.0:
            raise ValueError(f"dsp_utilization must be in (0, 1], got {dsp_utilization}")
        return int(self.dsp_slices * dsp_utilization) // precision.dsps_per_mac

    def peak_ops_per_second(
        self,
        precision: Precision,
        frequency: float | None = None,
        dsp_utilization: float = 1.0,
    ) -> float:
        """Peak throughput in ops/second (one MAC = two operations).

        Args:
            precision: Arithmetic precision.
            frequency: Clock in Hz; defaults to :attr:`default_frequency`.
            dsp_utilization: Fraction of DSP slices the design may claim.
        """
        freq = self.default_frequency if frequency is None else frequency
        return 2.0 * self.peak_macs(precision, dsp_utilization) * freq


#: DDR4 peak bandwidth per bank quoted in the paper (Sec. 2.2): 19.2 GB/s.
VU9P_DDR_BANK_BANDWIDTH = 19.2e9

#: The Xilinx VU9P device used throughout the paper's evaluation.
VU9P = FPGADevice(
    name="xcvu9p",
    dsp_slices=6840,
    clb_luts=1_182_240,
    sram=SRAMBudget(bram36_blocks=2160, uram_blocks=960),
    ddr_banks=4,
    ddr_bank_bandwidth=VU9P_DDR_BANK_BANDWIDTH,
    default_frequency=200e6,
)


def make_vu9p() -> FPGADevice:
    """Return a fresh VU9P device description.

    ``VU9P`` is frozen so sharing the module-level instance is safe; this
    factory exists for call sites that prefer an explicit constructor.
    """
    return VU9P


#: Alveo U280: a VU9P-class fabric fed by HBM2 instead of DDR4.  Modelled
#: as 8 pseudo-banks of 57.5 GB/s (the full part exposes 32 channels /
#: 460 GB/s; the accelerator's three streams cannot saturate more).  The
#: interesting property for this repository: with an order of magnitude
#: more bandwidth, far fewer layers are memory bound — LCMM's headroom
#: shrinks, which quantifies how much of the paper's gain is really the
#: DDR4 bottleneck.
U280 = FPGADevice(
    name="xcu280",
    dsp_slices=9024,
    clb_luts=1_304_000,
    sram=SRAMBudget(bram36_blocks=2016, uram_blocks=960),
    ddr_banks=8,
    ddr_bank_bandwidth=57.5e9,
    default_frequency=200e6,
)


def make_u280() -> FPGADevice:
    """Return the HBM-based Alveo U280 device description."""
    return U280

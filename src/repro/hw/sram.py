"""On-chip SRAM block arithmetic for Xilinx UltraScale+ devices.

Xilinx devices provide two kinds of on-chip memory: block RAM (BRAM, 18 Kbit
primitives pairable into 36 Kbit blocks) and UltraRAM (URAM, 288 Kbit
blocks).  The paper reports buffer sizes in URAM blocks ("9 of them consuming
32 URAM blocks", Sec. 4.1) and utilisation percentages per memory kind
(Tab. 2 and Tab. 3), so the reproduction needs the same block-level
accounting: a buffer of *S* bytes occupies ``ceil(S / block_bytes)`` whole
blocks, and utilisation is blocks-used over blocks-available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes per BRAM18 primitive (18 Kbit).
BRAM18_BYTES = 18 * 1024 // 8

#: Bytes per BRAM36 block (36 Kbit).
BRAM36_BYTES = 36 * 1024 // 8

#: Bytes per URAM block (288 Kbit).
URAM_BYTES = 288 * 1024 // 8


def blocks_for(size_bytes: int, block_bytes: int) -> int:
    """Number of whole memory blocks needed to hold ``size_bytes``.

    Args:
        size_bytes: Buffer payload size in bytes (may be zero).
        block_bytes: Capacity of one block in bytes.

    Raises:
        ValueError: If either argument is negative or ``block_bytes`` is zero.
    """
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
    if block_bytes <= 0:
        raise ValueError(f"block_bytes must be positive, got {block_bytes}")
    return math.ceil(size_bytes / block_bytes)


@dataclass
class SRAMBudget:
    """A divisible on-chip memory budget expressed in BRAM and URAM blocks.

    The allocator (:mod:`repro.lcmm.dnnk`) treats on-chip memory as a single
    capacity in bytes; this class converts between that flat view and the
    device's block inventories.  Large tensor buffers are placed in URAM
    first (the paper stores memory-bound tensors in URAM, Tab. 2) and spill
    into BRAM once URAM runs out.

    Attributes:
        bram36_blocks: Number of 36 Kbit BRAM blocks available.
        uram_blocks: Number of 288 Kbit URAM blocks available.
    """

    bram36_blocks: int
    uram_blocks: int

    def __post_init__(self) -> None:
        if self.bram36_blocks < 0 or self.uram_blocks < 0:
            raise ValueError("block counts must be non-negative")

    @property
    def bram_bytes(self) -> int:
        """Total BRAM capacity in bytes."""
        return self.bram36_blocks * BRAM36_BYTES

    @property
    def uram_bytes(self) -> int:
        """Total URAM capacity in bytes."""
        return self.uram_blocks * URAM_BYTES

    @property
    def total_bytes(self) -> int:
        """Total on-chip memory capacity in bytes."""
        return self.bram_bytes + self.uram_bytes

    def split_buffer(self, size_bytes: int) -> tuple[int, int]:
        """Place one buffer URAM-first and report the blocks it would use.

        Args:
            size_bytes: Buffer size in bytes.

        Returns:
            ``(uram_blocks, bram36_blocks)`` the buffer would occupy when
            filled into URAM first and overflowing into BRAM.  The result is
            not bounded by the budget — callers compare it against the
            remaining inventory.
        """
        uram_needed = blocks_for(size_bytes, URAM_BYTES)
        if uram_needed <= self.uram_blocks:
            return uram_needed, 0
        overflow = size_bytes - self.uram_blocks * URAM_BYTES
        return self.uram_blocks, blocks_for(overflow, BRAM36_BYTES)

    def scaled(self, fraction: float) -> "SRAMBudget":
        """A budget with both inventories scaled by ``fraction`` (floored)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        return SRAMBudget(
            bram36_blocks=int(self.bram36_blocks * fraction),
            uram_blocks=int(self.uram_blocks * fraction),
        )


@dataclass
class SRAMUsage:
    """Mutable tally of block consumption against a :class:`SRAMBudget`."""

    budget: SRAMBudget
    uram_used: int = 0
    bram36_used: int = 0

    def can_fit(self, size_bytes: int) -> bool:
        """Whether a buffer of ``size_bytes`` fits in the remaining blocks."""
        uram_free = self.budget.uram_blocks - self.uram_used
        bram_free = self.budget.bram36_blocks - self.bram36_used
        uram_needed = blocks_for(size_bytes, URAM_BYTES)
        if uram_needed <= uram_free:
            return True
        overflow = size_bytes - uram_free * URAM_BYTES
        return blocks_for(overflow, BRAM36_BYTES) <= bram_free

    def allocate(self, size_bytes: int) -> tuple[int, int]:
        """Consume blocks for one buffer, URAM first.

        Returns:
            ``(uram_blocks, bram36_blocks)`` consumed.

        Raises:
            MemoryError: If the buffer does not fit in the remaining blocks.
        """
        if not self.can_fit(size_bytes):
            raise MemoryError(
                f"buffer of {size_bytes} bytes does not fit: "
                f"{self.uram_free} URAM and {self.bram36_free} BRAM36 blocks free"
            )
        uram_free = self.budget.uram_blocks - self.uram_used
        uram_needed = blocks_for(size_bytes, URAM_BYTES)
        if uram_needed <= uram_free:
            self.uram_used += uram_needed
            return uram_needed, 0
        overflow = size_bytes - uram_free * URAM_BYTES
        bram_needed = blocks_for(overflow, BRAM36_BYTES)
        self.uram_used += uram_free
        self.bram36_used += bram_needed
        return uram_free, bram_needed

    @property
    def uram_free(self) -> int:
        """URAM blocks not yet consumed."""
        return self.budget.uram_blocks - self.uram_used

    @property
    def bram36_free(self) -> int:
        """BRAM36 blocks not yet consumed."""
        return self.budget.bram36_blocks - self.bram36_used

    @property
    def uram_utilization(self) -> float:
        """Fraction of URAM blocks consumed (0 when the device has none)."""
        if self.budget.uram_blocks == 0:
            return 0.0
        return self.uram_used / self.budget.uram_blocks

    @property
    def bram_utilization(self) -> float:
        """Fraction of BRAM36 blocks consumed (0 when the device has none)."""
        if self.budget.bram36_blocks == 0:
            return 0.0
        return self.bram36_used / self.budget.bram36_blocks

    @property
    def used_bytes(self) -> int:
        """Total bytes of on-chip memory consumed, block-granular."""
        return self.uram_used * URAM_BYTES + self.bram36_used * BRAM36_BYTES

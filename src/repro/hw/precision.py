"""Data precisions and their arithmetic cost on Xilinx DSP slices.

The paper evaluates three data types: 8-bit fixed point, 16-bit fixed point
and 32-bit floating point (Sec. 4).  Two properties of a precision drive the
results:

* **bytes per element** — scales every tensor size and therefore every
  off-chip transfer latency and every on-chip buffer footprint;
* **DSP slices per multiply-accumulate** — a fixed-point MAC costs one DSP
  slice while a single-precision floating point MAC costs five (Sec. 4.1),
  which shrinks the compute array and, with it, the bandwidth *requirement*
  of every layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Precision:
    """An arithmetic precision used by an accelerator design.

    Attributes:
        name: Human-readable identifier (``"int8"``, ``"fp32"``...).
        bits: Width of one element in bits.
        dsps_per_mac: DSP slices consumed by one multiply-accumulate unit.
        is_floating_point: True for IEEE floating point types.
    """

    name: str
    bits: int
    dsps_per_mac: int
    is_floating_point: bool = False

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits % 8 != 0:
            raise ValueError(f"bits must be a positive multiple of 8, got {self.bits}")
        if self.dsps_per_mac <= 0:
            raise ValueError(f"dsps_per_mac must be positive, got {self.dsps_per_mac}")

    @property
    def bytes(self) -> int:
        """Size of one element in bytes."""
        return self.bits // 8

    def __str__(self) -> str:
        return self.name


#: 8-bit fixed point: 1 DSP slice per MAC.
INT8 = Precision(name="int8", bits=8, dsps_per_mac=1)

#: 16-bit fixed point: 1 DSP slice per MAC.
INT16 = Precision(name="int16", bits=16, dsps_per_mac=1)

#: 32-bit floating point: 5 DSP slices per MAC on Xilinx FPGAs (Sec. 4.1).
FP32 = Precision(name="fp32", bits=32, dsps_per_mac=5, is_floating_point=True)

#: The precisions swept in the paper's evaluation, in presentation order.
ALL_PRECISIONS = (INT8, INT16, FP32)

_BY_NAME = {p.name: p for p in ALL_PRECISIONS}
_ALIASES = {
    "8": INT8,
    "8-bit": INT8,
    "16": INT16,
    "16-bit": INT16,
    "32": FP32,
    "32-bit": FP32,
    "float32": FP32,
    "float": FP32,
}


def precision_by_name(name: str) -> Precision:
    """Look up a precision by name or common alias.

    Args:
        name: ``"int8"``, ``"int16"``, ``"fp32"`` or an alias such as
            ``"8-bit"`` / ``"32"``.

    Raises:
        KeyError: If the name matches no known precision.
    """
    key = name.strip().lower()
    if key in _BY_NAME:
        return _BY_NAME[key]
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError(f"unknown precision {name!r}; known: {sorted(_BY_NAME)}")

"""Off-chip memory system model.

The accelerator's dataflow (Fig. 1 of the paper) streams three tensors
concurrently: input features, weights and output features.  The paper
assigns each stream one third of the theoretical four-bank DDR4 bandwidth
(Sec. 2.2): ``19.2 GB/s x 4 / 3 = 25.6 GB/s`` per interface.  This module
models that split and the latency of moving a given number of bytes over an
interface, including a fixed per-burst overhead so that many tiny transfers
cost more than one large one — the effect that makes tile size matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.fpga import FPGADevice


@dataclass(frozen=True)
class MemoryInterface:
    """One logical off-chip memory stream (ifmap, weight or ofmap).

    Attributes:
        name: Stream identifier, one of ``"if"``, ``"wt"``, ``"of"``.
        bandwidth: Sustained bandwidth in bytes/second.
        burst_overhead: Fixed latency per burst in seconds (DDR row
            activation + AXI handshake); zero reproduces the paper's purely
            bandwidth-based model.
    """

    name: str
    bandwidth: float
    burst_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.burst_overhead < 0:
            raise ValueError("burst_overhead must be non-negative")

    def transfer_time(self, num_bytes: float, bursts: int = 1) -> float:
        """Seconds to move ``num_bytes`` in ``bursts`` bursts.

        Args:
            num_bytes: Payload size in bytes (zero yields zero time).
            bursts: Number of separate bursts the payload is split into.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if bursts < 1:
            raise ValueError("bursts must be at least 1")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.bandwidth + bursts * self.burst_overhead


@dataclass(frozen=True)
class DDRSystem:
    """The full off-chip memory system seen by the accelerator.

    Three concurrent interfaces share the device's aggregate bandwidth.  The
    paper divides the theoretical total evenly between the three streams;
    :func:`make_vu9p_ddr` reproduces that 25.6 GB/s-per-interface figure.

    Attributes:
        ifmap: Interface carrying input feature tiles.
        weight: Interface carrying weight tiles (and prefetches).
        ofmap: Interface carrying output feature tiles.
    """

    ifmap: MemoryInterface
    weight: MemoryInterface
    ofmap: MemoryInterface

    def interface(self, kind: str) -> MemoryInterface:
        """Look up an interface by tensor kind (``"if"``/``"wt"``/``"of"``)."""
        try:
            return {"if": self.ifmap, "wt": self.weight, "of": self.ofmap}[kind]
        except KeyError:
            raise KeyError(f"unknown interface kind {kind!r}; expected if/wt/of") from None

    @property
    def total_bandwidth(self) -> float:
        """Sum of the three interface bandwidths, bytes/second."""
        return self.ifmap.bandwidth + self.weight.bandwidth + self.ofmap.bandwidth


def make_vu9p_ddr(
    device: FPGADevice,
    burst_overhead: float = 0.0,
) -> DDRSystem:
    """Build the paper's DDR model: total bandwidth split three ways.

    Args:
        device: FPGA device supplying bank count and per-bank bandwidth.
        burst_overhead: Optional per-burst fixed cost in seconds applied to
            every interface (0 reproduces the paper's model exactly).
    """
    share = device.total_ddr_bandwidth / 3.0
    return DDRSystem(
        ifmap=MemoryInterface("if", share, burst_overhead),
        weight=MemoryInterface("wt", share, burst_overhead),
        ofmap=MemoryInterface("of", share, burst_overhead),
    )

"""Hardware platform models: FPGA devices, precisions, and the memory system.

This subpackage models the *fixed* part of the problem: the Xilinx VU9P
device the paper evaluates on (DSP slices, BRAM and URAM inventories), the
data precisions it sweeps (8/16-bit fixed point and 32-bit floating point)
and the DDR4 off-chip memory system (four banks, per-interface bandwidth
share).  Everything downstream — the performance model in :mod:`repro.perf`
and the allocator in :mod:`repro.lcmm` — is parameterised by these objects,
so other devices can be described without touching the algorithms.
"""

from repro.hw.precision import FP32, INT8, INT16, Precision
from repro.hw.fpga import FPGADevice, U280, VU9P, make_u280, make_vu9p
from repro.hw.memory import DDRSystem, MemoryInterface, make_vu9p_ddr
from repro.hw.sram import BRAM18_BYTES, BRAM36_BYTES, URAM_BYTES, SRAMBudget

__all__ = [
    "Precision",
    "INT8",
    "INT16",
    "FP32",
    "FPGADevice",
    "VU9P",
    "make_vu9p",
    "U280",
    "make_u280",
    "DDRSystem",
    "MemoryInterface",
    "make_vu9p_ddr",
    "SRAMBudget",
    "BRAM18_BYTES",
    "BRAM36_BYTES",
    "URAM_BYTES",
]

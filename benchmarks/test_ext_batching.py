"""Extension bench: steady-state batched throughput.

Not a paper table — quantifies Sec. 3.2's remark that resident weights
"could be reused for multiple instances of inference": after the first
image pays the unhidden prefetch residuals, persistent weight buffers
stop costing anything and throughput settles at the steady-state rate.
"""

import pytest

from repro.analysis.experiments import BENCHMARKS, reference_design, run_comparison
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.perf.batching import batched_latency, umm_batched_latency

from conftest import attach

BATCH = 32


def run_all():
    rows = []
    for model_name in BENCHMARKS:
        cmp = run_comparison(model_name, INT16)
        lcmm_batch = batched_latency(cmp.lcmm_model, cmp.lcmm, BATCH)
        umm_batch = umm_batched_latency(cmp.umm_model, BATCH)
        rows.append((model_name, lcmm_batch, umm_batch))
    return rows


def test_batched_throughput(benchmark):
    rows = benchmark(run_all)

    print(f"\nSteady-state throughput over a batch of {BATCH} images (16-bit)")
    print(
        format_table(
            ("Model", "first (ms)", "steady (ms)", "img/s", "UMM img/s", "speedup"),
            [
                (
                    name,
                    f"{l.first_image_latency * 1e3:.3f}",
                    f"{l.steady_image_latency * 1e3:.3f}",
                    f"{l.images_per_second:.1f}",
                    f"{u.images_per_second:.1f}",
                    f"{u.steady_image_latency / l.steady_image_latency:.2f}",
                )
                for name, l, u in rows
            ],
        )
    )

    attach(
        benchmark,
        steady_speedups={
            name: round(u.steady_image_latency / l.steady_image_latency, 3)
            for name, l, u in rows
        },
    )

    for name, lcmm_batch, umm_batch in rows:
        assert lcmm_batch.steady_image_latency <= lcmm_batch.first_image_latency + 1e-15
        assert lcmm_batch.total_latency < umm_batch.total_latency

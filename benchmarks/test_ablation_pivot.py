"""Ablation bench: DNNK's pivot compensation vs naive additive values.

Eq. 4's point is that buffer values are not additive: without pivot
compensation the DP over-counts gains when several tensors of one
operation go on chip.  This bench runs DNNK with the compensated gain
evaluator against a deliberately naive variant that always uses each
buffer's standalone latency reduction, at several tight capacities where
over-counting actually distorts choices.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.hw.precision import INT16
from repro.hw.sram import URAM_BYTES
from repro.lcmm.dnnk import dnnk_allocate
from repro.lcmm.feature_reuse import feature_reuse_pass
from repro.lcmm.prefetch import weight_prefetch_pass
from repro.lcmm.splitting import combine_buffers
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach


def naive_allocate(buffers, model, capacity, granularity=URAM_BYTES):
    """0/1 knapsack on standalone (additive) buffer values — no pivots."""
    import math

    units = capacity // granularity
    sizes = [math.ceil(b.size_bytes / granularity) for b in buffers]
    values = [b.total_latency_reduction for b in buffers]
    best = [0.0] * (units + 1)
    decisions = []
    for i, size in enumerate(sizes):
        row = [False] * (units + 1)
        if size <= units:
            new_best = list(best)
            for j in range(units, size - 1, -1):
                take = best[j - size] + values[i]
                if take > best[j]:
                    new_best[j] = take
                    row[j] = True
            best = new_best
        decisions.append(row)
    chosen = []
    j = units
    for i in range(len(buffers) - 1, -1, -1):
        if decisions[i][j]:
            chosen.append(i)
            j -= sizes[i]
    return frozenset(n for i in chosen for n in buffers[i].tensor_names)


@pytest.fixture(scope="module")
def setup():
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT16, "lcmm")
    model = LatencyModel(graph, accel)
    feature = feature_reuse_pass(graph, model)
    prefetch = weight_prefetch_pass(graph, model)
    buffers = combine_buffers([feature.buffers, prefetch.buffers])
    return model, buffers


def test_pivot_compensation(benchmark, setup):
    model, buffers = setup
    capacities = [2 * URAM_BYTES * k for k in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)]

    def run_compensated():
        return [
            model.total_latency(
                dnnk_allocate(buffers, model, cap).onchip_tensors
            )
            for cap in capacities
        ]

    compensated = benchmark(run_compensated)
    naive = [
        model.total_latency(naive_allocate(buffers, model, cap))
        for cap in capacities
    ]

    print("\nAblation — pivot compensation (GoogLeNet 16-bit, tight capacities)")
    print(f"{'capacity':>12}  {'DNNK (ms)':>10}  {'naive (ms)':>10}")
    wins = strict_wins = 0
    for cap, c, n in zip(capacities, compensated, naive):
        marker = "<" if c < n - 1e-12 else ("=" if abs(c - n) <= 1e-12 else ">")
        wins += c <= n + 1e-12
        strict_wins += c < n - 1e-12
        print(f"{cap // URAM_BYTES:>9} blk  {c * 1e3:10.4f}  {n * 1e3:10.4f}  {marker}")

    attach(
        benchmark,
        compensated_ms=[round(v * 1e3, 4) for v in compensated],
        naive_ms=[round(v * 1e3, 4) for v in naive],
    )

    # Pivot compensation never loses at any capacity and wins outright at
    # several — the additive DP over-counts gains of tensors that share an
    # operation (Eq. 4's motivating example).
    assert wins == len(capacities)
    assert strict_wins >= 2
    assert sum(compensated) < sum(naive)

"""Bench: exploded design-space sweep — scaling, pruning, exactness.

Sweeps a >=10^4-point design space (a ~2k-point one under
``BENCH_SMOKE=1``) over GoogLeNet with roofline/dominance pruning on,
times ``workers=4`` against ``workers=1`` on the persistent pool, and
writes the results to ``BENCH_dse_scale.json`` at the repo root.

Two guarantees are asserted here, not just measured:

* pruning is exact — the best design and score are bit-identical with
  pruning on and off;
* on a >=4-core runner, ``workers=4`` must reach a 3x speedup over
  ``workers=1`` on the pruned sweep (skip-with-reason on smaller
  machines, where the recorded numbers still document what the host
  achieved).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.hw.precision import INT8, INT16
from repro.models import get_model
from repro.perf import pool as pool_mod
from repro.perf.dse import WorkerStats
from repro.perf.space import DesignSpace, explore_space, small_space
from repro.perf.systolic import SystolicArray

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse_scale.json"
_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
_REPEATS = 2 if _SMOKE else 3
_BUDGET = 4 * 2**20


def _bench_space() -> DesignSpace:
    """The swept space: ~2k points for smoke, >=10^4 for the full bench."""
    if _SMOKE:
        return small_space()
    return DesignSpace(
        arrays=(
            SystolicArray(rows=32, cols=16, simd=11),
            SystolicArray(rows=16, cols=16, simd=8),
            SystolicArray(rows=8, cols=8, simd=8),
        ),
        precisions=(INT16, INT8),
        frequencies=(150e6, 190e6, 230e6, 250e6),
        ddr_efficiencies=(0.6, 0.8, 1.0),
        tm_values=(8, 16, 24, 32, 48, 64, 96, 128),
        tn_values=(8, 16, 32, 64),
        spatial_values=(7, 14, 28, 56, 112),
    )


def _best_of(fn, repeats: int = _REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_space_sweep_scaling():
    graph = get_model("googlenet")
    space = _bench_space()
    if not _SMOKE:
        assert space.size() >= 10_000

    # Exactness first: the pruned sweep must land on the bit-identical
    # best design the full sweep finds.
    pruned = explore_space(graph, space, _BUDGET, prune=True)
    full = explore_space(graph, space, _BUDGET, prune=False)
    assert pruned.best.accel == full.best.accel
    assert pruned.best.umm_latency == full.best.umm_latency

    pool_mod.close_pool()
    stats_w4 = WorkerStats()
    explore_space(graph, space, _BUDGET, workers=4, stats=stats_w4)  # warm pool
    w1_s = _best_of(lambda: explore_space(graph, space, _BUDGET, workers=1))
    w4_s = _best_of(lambda: explore_space(graph, space, _BUDGET, workers=4))
    speedup = w1_s / w4_s
    cores = os.cpu_count() or 1

    payload = {
        "model": graph.name,
        "smoke": _SMOKE,
        "cpu_count": cores,
        "space_points": space.size(),
        "feasible_points": pruned.total_points,
        "scored_points": pruned.scored_points,
        "pruned_dominated": pruned.pruned_dominated,
        "pruned_bounded": pruned.pruned_bounded,
        "bases_pruned_whole": pruned.bases_pruned,
        "best_design": pruned.best.accel.name,
        "best_tile": str(pruned.best.accel.tile),
        "best_umm_latency": pruned.best.umm_latency,
        "pruning_best_identical": True,  # asserted above
        "workers1_seconds": w1_s,
        "workers4_seconds": w4_s,
        "speedup_workers4_over_workers1": speedup,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nspace sweep ({pruned.total_points} feasible pts, "
        f"{pruned.scored_points} scored, {cores} cores): "
        f"w=1 {w1_s * 1e3:.2f} ms, w=4 {w4_s * 1e3:.2f} ms ({speedup:.2f}x)"
    )

    if cores < 4:
        pytest.skip(
            f"3x scaling criterion needs a >=4-core runner, host has {cores}; "
            "timings recorded in BENCH_dse_scale.json"
        )
    assert speedup >= 3.0

"""Extension bench: how much of LCMM's gain is the DDR4 bottleneck?

Re-runs the 16-bit benchmark suite with the same fabric fed by HBM
(Alveo U280-style, ~6x the aggregate bandwidth).  The paper's entire
premise is DDR4 starvation; this bench quantifies it: with HBM, far fewer
layers are memory bound and the LCMM speedup collapses toward 1.0.
"""

import pytest

from repro.analysis.experiments import BENCHMARKS, reference_design
from repro.analysis.report import format_table
from repro.hw.fpga import U280
from repro.hw.precision import INT16
from repro.lcmm.framework import run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel
from repro.perf.roofline import RooflineModel
from repro.perf.systolic import AcceleratorConfig

from conftest import attach


def on_hbm(base: AcceleratorConfig) -> AcceleratorConfig:
    return AcceleratorConfig(
        name=f"{base.name}-hbm",
        precision=base.precision,
        array=base.array,
        tile=base.tile,
        frequency=base.frequency,
        device=U280,
        ddr_efficiency=base.ddr_efficiency,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


def run_suite():
    rows = []
    for name in BENCHMARKS:
        ddr4 = reference_design(name, INT16, "lcmm")
        hbm = on_hbm(ddr4)
        entry = {"model": name}
        for label, accel in (("ddr4", ddr4), ("hbm", hbm)):
            graph = get_model(name)
            model = LatencyModel(graph, accel)
            lcmm = run_lcmm(graph, accel, model=model)
            bound, total = RooflineModel(graph, accel, model).memory_bound_count(
                convs_only=True
            )
            entry[f"{label}_speedup"] = model.umm_latency() / lcmm.latency
            entry[f"{label}_bound"] = f"{bound}/{total}"
        rows.append(entry)
    return rows


def test_hbm(benchmark):
    rows = benchmark(run_suite)

    print("\nDDR4 vs HBM — is the paper's gain a bandwidth artifact? (16-bit)")
    print(
        format_table(
            ("Model", "DDR4 bound", "DDR4 speedup", "HBM bound", "HBM speedup"),
            [
                (
                    r["model"],
                    r["ddr4_bound"],
                    f"{r['ddr4_speedup']:.2f}",
                    r["hbm_bound"],
                    f"{r['hbm_speedup']:.2f}",
                )
                for r in rows
            ],
        )
    )

    attach(
        benchmark,
        hbm_speedups={r["model"]: round(r["hbm_speedup"], 3) for r in rows},
    )

    for r in rows:
        # LCMM never hurts, but HBM erodes the gain on every benchmark —
        # confirming the speedup is specifically a DDR4-starvation fix.
        assert 1.0 <= r["hbm_speedup"] < r["ddr4_speedup"]
"""Bench: the transformer zoo end to end — LCMM vs UMM, cold vs warm.

The op-generic IR's acceptance bar, turned into numbers and assertions
written to ``BENCH_transformer.json``:

* for **every** transformer model (BERT-base, ViT-B/16), the full LCMM
  pipeline must beat the UMM floor (asserted), with the per-model
  latencies and reduction percentages recorded;
* a **cold** batch compile of the transformer x config matrix through a
  fresh cache followed by a **warm** identical pass must be served
  entirely from the cache (asserted), timing both — the cache round-trip
  extended to the new workload family;
* warm fingerprints must verify against the checked-in golden files
  (asserted), tying the benchmark to the regression suite.

Weight-dominated graphs exercise the allocator differently from CNNs
(see :mod:`repro.models.transformer`), so this file is the canary for
regressions that CNN-only benchmarks cannot see.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.analysis.experiments import reference_design
from repro.cache import STANDARD_CONFIGS, batch_compile
from repro.hw.precision import INT8
from repro.lcmm.framework import LCMMOptions, run_lcmm, umm_only_result
from repro.models.zoo import get_model
from repro.perf.latency import LatencyModel

_TRANSFORMERS = ("bert_base", "vit_b16")
_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_transformer.json"
_GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def _lcmm_vs_umm() -> dict[str, dict]:
    per_model: dict[str, dict] = {}
    for name in _TRANSFORMERS:
        graph = get_model(name)
        accel = reference_design("resnet152", INT8, "lcmm")
        model = LatencyModel(graph, accel)
        umm = umm_only_result(graph, accel, model=model)
        lcmm = run_lcmm(graph, accel, options=LCMMOptions(), model=model)
        assert lcmm.latency < umm.latency, (
            f"{name}: LCMM ({lcmm.latency * 1e3:.3f} ms) must beat "
            f"UMM ({umm.latency * 1e3:.3f} ms)"
        )
        per_model[name] = {
            "nodes": len(graph.layers()),
            "umm_latency_ms": round(umm.latency * 1e3, 6),
            "lcmm_latency_ms": round(lcmm.latency * 1e3, 6),
            "reduction_pct": round((1 - lcmm.latency / umm.latency) * 100, 2),
            "speedup": round(umm.latency / lcmm.latency, 4),
            "onchip_tensors": len(lcmm.onchip_tensors),
            "degradation_level": lcmm.degradation_level,
        }
    return per_model


def test_transformer_lcmm_beats_umm():
    per_model = _lcmm_vs_umm()

    configs = list(STANDARD_CONFIGS)
    with tempfile.TemporaryDirectory(prefix="lcmm-bench-tfm-") as cache_dir:
        start = time.perf_counter()
        cold = batch_compile(
            models=list(_TRANSFORMERS), configs=configs, cache_dir=cache_dir
        )
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = batch_compile(
            models=list(_TRANSFORMERS), configs=configs, cache_dir=cache_dir
        )
        warm_seconds = time.perf_counter() - start

    assert cold.misses == len(_TRANSFORMERS) * len(configs)
    assert warm.all_hits, (
        f"warm pass missed the cache on {warm.misses} of {len(warm.outcomes)} jobs"
    )
    warm_problems = warm.verify_golden(_GOLDEN_DIR)
    assert warm_problems == [], "\n".join(warm_problems)

    report = {
        "models": per_model,
        "batch_compile": {
            "configs": configs,
            "jobs": len(cold.outcomes),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "golden_verified": True,
        },
    }
    _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nTransformer zoo — LCMM vs UMM (reproduced)")
    for name, row in per_model.items():
        print(
            f"  {name:10s}  UMM {row['umm_latency_ms']:9.3f} ms -> "
            f"LCMM {row['lcmm_latency_ms']:9.3f} ms  "
            f"(-{row['reduction_pct']:.1f}%, deg {row['degradation_level']})"
        )
    print(
        f"  batch-compile: cold {cold_seconds:.2f}s, warm {warm_seconds:.3f}s"
    )

"""Extension bench: LCMM on a depthwise-separable network (MobileNetV1).

MobileNet sits at the opposite roofline extreme from the paper's
benchmarks: depthwise layers have almost no data reuse, so most of the
network is memory bound.  This bench measures how much of that starvation
LCMM's tensor pinning recovers on the 16-bit reference design family.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.lcmm.framework import run_lcmm
from repro.lcmm.umm import run_umm
from repro.lcmm.validate import validate_result
from repro.models import get_model
from repro.perf.latency import LatencyModel
from repro.perf.roofline import RooflineModel

from conftest import attach


def run_mobilenet():
    graph = get_model("mobilenet_v1")
    accel_umm = reference_design("resnet152", INT16, "umm")
    accel_lcmm = reference_design("resnet152", INT16, "lcmm")
    umm_model = LatencyModel(graph, accel_umm)
    lcmm_model = LatencyModel(graph, accel_lcmm)
    umm = run_umm(graph, accel_umm, umm_model)
    lcmm = run_lcmm(graph, accel_lcmm, model=lcmm_model)
    return graph, umm_model, lcmm_model, umm, lcmm


def test_mobilenet(benchmark):
    graph, umm_model, lcmm_model, umm, lcmm = benchmark(run_mobilenet)
    validate_result(lcmm, lcmm_model)

    roofline = RooflineModel(graph, umm_model.accel, umm_model)
    bound, total = roofline.memory_bound_count(convs_only=True)
    dw_bound = sum(
        1
        for node in umm_model.nodes()
        if node.endswith("/dw") and umm_model.layer(node).is_memory_bound
    )
    dw_total = sum(1 for node in umm_model.nodes() if node.endswith("/dw"))

    print("\nMobileNetV1 16-bit — the depthwise stress case")
    print(
        format_table(
            ("Metric", "Value"),
            [
                ("memory-bound conv layers", f"{bound}/{total}"),
                ("memory-bound depthwise layers", f"{dw_bound}/{dw_total}"),
                ("UMM latency (ms)", f"{umm.latency * 1e3:.3f}"),
                ("LCMM latency (ms)", f"{lcmm.latency * 1e3:.3f}"),
                ("speedup", f"{umm.latency / lcmm.latency:.2f}x"),
                ("tensors on chip", len(lcmm.onchip_tensors)),
            ],
        )
    )

    attach(
        benchmark,
        speedup=round(umm.latency / lcmm.latency, 3),
        memory_bound=f"{bound}/{total}",
    )

    # Depthwise layers dominate the memory-bound population...
    assert dw_bound >= dw_total // 2
    # ...and LCMM recovers a meaningful share of the starvation.
    assert umm.latency / lcmm.latency > 1.1

"""Bench: the incremental evaluation engine vs the naive hot path.

Times the two acceptance workloads of the engine work and writes the
results to ``BENCH_engine.json`` at the repo root:

* ``run_lcmm`` on GoogLeNet with the engine off vs on (same prebuilt
  graph and latency model, timing the pipeline only);
* a 64-point tile DSE sweep, old per-tile ``LatencyModel`` scoring vs
  ``explore_designs`` (sweep scorer, ``workers=4``).

Both comparisons are exact-result-identical by construction (asserted
here and bit-for-bit in the tier-1 suite); this file measures only wall
time and evaluation counts.  Set ``BENCH_SMOKE=1`` to cut repeats for CI
smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8, INT16
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.models import get_model
from repro.perf.dse import _configure, candidate_tiles, explore_designs
from repro.perf.latency import LatencyModel

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_REPEATS = 2 if os.environ.get("BENCH_SMOKE") else 5


def _best_of(fn, repeats: int = _REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _record(section: str, payload: dict) -> None:
    data = {}
    if _RESULT_PATH.exists():
        data = json.loads(_RESULT_PATH.read_text())
    data[section] = payload
    _RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_run_lcmm_engine_speedup():
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT8, "lcmm")
    model = LatencyModel(graph, accel)
    naive_opts = LCMMOptions(use_engine=False)
    engine_opts = LCMMOptions(use_engine=True)

    naive = run_lcmm(graph, accel, options=naive_opts, model=model)
    fast = run_lcmm(graph, accel, options=engine_opts, model=model)
    assert fast.latency == naive.latency
    assert fast.onchip_tensors == naive.onchip_tensors

    naive_s = _best_of(lambda: run_lcmm(graph, accel, options=naive_opts, model=model))
    engine_s = _best_of(lambda: run_lcmm(graph, accel, options=engine_opts, model=model))
    speedup = naive_s / engine_s
    stats = fast.engine_stats
    _record(
        "run_lcmm_googlenet",
        {
            "naive_seconds": naive_s,
            "engine_seconds": engine_s,
            "speedup": speedup,
            "engine_stats": stats.as_dict() if stats else None,
        },
    )
    print(
        f"\nrun_lcmm googlenet: naive {naive_s * 1e3:.2f} ms, "
        f"engine {engine_s * 1e3:.2f} ms ({speedup:.2f}x)"
    )
    assert speedup >= 3.0


def test_dse_sweep_speedup():
    graph = get_model("inception_v4")
    base = reference_design("inception_v4", INT16, "lcmm")
    tiles = candidate_tiles(tn_values=(16, 32, 64, 128))
    assert len(tiles) == 64
    budget = 8 * 2**20

    def old_sweep():
        feasible = [
            t for t in tiles if t.tile_buffer_bytes(base.precision.bytes) <= budget
        ]
        return {
            t: LatencyModel(graph, _configure(base, t)).umm_latency()
            for t in feasible
        }

    def new_sweep():
        return explore_designs(graph, base, budget, tiles=tiles, workers=4)

    old_scores = old_sweep()
    new_points = new_sweep()
    assert len(new_points) == len(old_scores)
    for point in new_points:
        assert point.umm_latency == old_scores[point.accel.tile]

    old_s = _best_of(old_sweep)
    new_s = _best_of(new_sweep)
    serial_s = _best_of(lambda: explore_designs(graph, base, budget, tiles=tiles))
    speedup = old_s / new_s
    _record(
        "dse_sweep_64pt_inception_v4",
        {
            "points": len(new_points),
            "old_seconds": old_s,
            "new_seconds_workers4": new_s,
            "new_seconds_workers1": serial_s,
            "speedup_workers4": speedup,
            "speedup_workers1": old_s / serial_s,
        },
    )
    print(
        f"\ndse sweep ({len(new_points)} pts): old {old_s * 1e3:.2f} ms, "
        f"new(w=4) {new_s * 1e3:.2f} ms ({speedup:.2f}x), "
        f"new(w=1) {serial_s * 1e3:.2f} ms ({old_s / serial_s:.2f}x)"
    )
    assert speedup >= 2.0


def test_dse_pool_beats_serial_on_multicore():
    """Regression: the pooled sweep must now *win*, not lose, vs serial.

    The pre-pool parallel path was slower than the serial fast path
    (the BENCH_engine.json staleness this PR fixes).  On a >=4-core
    runner a warm persistent pool with adaptive chunks has to beat one
    worker on a sweep large enough to amortise the chunk IPC.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        # CI's dse-multicore job sets DSE_REQUIRE_MULTICORE=1 so the
        # scaling regression cannot silently skip *everywhere* — a
        # mis-provisioned runner fails loudly instead of green-skipping.
        if os.environ.get("DSE_REQUIRE_MULTICORE"):
            pytest.fail(
                f"DSE_REQUIRE_MULTICORE is set but the runner has only "
                f"{cores} core(s); the pool-scaling regression needs >=4"
            )
        pytest.skip(
            f"pool-scaling regression needs a >=4-core runner, host has {cores}"
        )
    from repro.perf import pool as pool_mod

    graph = get_model("inception_v4")
    base = reference_design("inception_v4", INT16, "lcmm")
    tiles = candidate_tiles(
        tm_values=(8, 16, 24, 32, 48, 64, 96, 128),
        tn_values=(8, 16, 32, 64),
        spatial_values=(7, 14, 28, 56, 112),
    )
    budget = 8 * 2**20

    pool_mod.close_pool()
    parallel = explore_designs(graph, base, budget, tiles=tiles, workers=4)
    serial = explore_designs(graph, base, budget, tiles=tiles)
    key = lambda pts: [(p.accel.tile, p.umm_latency) for p in pts]
    assert key(parallel) == key(serial)

    # The warm-up sweep above leaves the persistent pool hot; time what
    # a session actually sees on repeated sweeps.
    serial_s = _best_of(
        lambda: explore_designs(graph, base, budget, tiles=tiles)
    )
    pooled_s = _best_of(
        lambda: explore_designs(graph, base, budget, tiles=tiles, workers=4)
    )
    speedup = serial_s / pooled_s
    _record(
        "dse_pool_scaling_inception_v4",
        {
            "points": len(parallel),
            "cpu_count": cores,
            "workers1_seconds": serial_s,
            "workers4_seconds": pooled_s,
            "speedup_workers4_over_workers1": speedup,
        },
    )
    print(
        f"\ndse pool scaling ({len(parallel)} pts, {cores} cores): "
        f"w=1 {serial_s * 1e3:.2f} ms, w=4 {pooled_s * 1e3:.2f} ms "
        f"({speedup:.2f}x)"
    )
    assert speedup > 1.0

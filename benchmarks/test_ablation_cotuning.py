"""Ablation bench: tile/allocation co-tuning (the paper's Sec. 4.1 note).

The paper observes that after LCMM removes the off-chip bottleneck, a
smaller tile improves the design further ("we could use smaller tile size
... leading to less BRAM consumption").  This bench sweeps tile shapes on
GoogLeNet 16-bit, running full LCMM on each, and checks that the jointly
tuned design is at least as good as LCMM on the UMM-optimal tile.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.lcmm.cotuning import cotune
from repro.models import get_model
from repro.perf.dse import best_design
from repro.perf.latency import LatencyModel
from repro.perf.tiling import TileConfig

from conftest import attach

TILES = [
    TileConfig(16, 16, 7, 7),
    TileConfig(32, 32, 7, 7),
    TileConfig(32, 32, 14, 14),
    TileConfig(64, 32, 14, 14),
    TileConfig(64, 64, 28, 28),
]


def test_cotuning(benchmark):
    graph = get_model("googlenet")
    base = reference_design("googlenet", INT16, "lcmm")

    result = benchmark(cotune, graph, base, TILES)

    print("\nAblation — tile/allocation co-tuning (GoogLeNet 16-bit)")
    print(
        format_table(
            ("Tile", "Tile buffers (KB)", "UMM (ms)", "LCMM (ms)"),
            [
                (
                    str(p.tile),
                    f"{p.tile_buffer_bytes / 1024:.0f}",
                    f"{p.umm_latency * 1e3:.3f}",
                    f"{p.lcmm_latency * 1e3:.3f}",
                )
                for p in result.points
            ],
        )
    )
    print(f"Co-tuned best: {result.best_accel.tile} "
          f"-> {result.best_result.latency * 1e3:.3f} ms")

    # Reference: LCMM run on the tile a UMM-oriented DSE would pick.
    umm_best_tile = best_design(graph, base, 512 * 1024, tiles=TILES).tile
    umm_tile_point = next(p for p in result.points if p.tile == umm_best_tile)

    attach(
        benchmark,
        best_tile=str(result.best_accel.tile),
        umm_best_tile=str(umm_best_tile),
        best_lcmm_ms=round(result.best_result.latency * 1e3, 4),
    )

    assert result.best_result.latency <= umm_tile_point.lcmm_latency + 1e-15
    # The base (paper-calibrated) tile is never beaten by more than the
    # sweep's own spread — sanity on the calibration.
    base_point = next(p for p in result.points if p.tile == base.tile)
    assert result.best_result.latency <= base_point.lcmm_latency + 1e-15

"""Bench: DNNK runtime scaling in graph size and capacity granularity.

Not a paper table — an engineering characterisation of the allocator
itself: the DP is O(buffers x capacity-units), so halving the granularity
should roughly double the runtime, and the biggest benchmark model must
stay comfortably interactive.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.hw.precision import INT16
from repro.hw.sram import URAM_BYTES
from repro.lcmm.dnnk import dnnk_allocate
from repro.lcmm.feature_reuse import feature_reuse_pass
from repro.lcmm.prefetch import weight_prefetch_pass
from repro.lcmm.splitting import combine_buffers
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach


def make_inputs(model_name):
    graph = get_model(model_name)
    accel = reference_design(
        "resnet152" if model_name not in ("googlenet", "inception_v4") else model_name,
        INT16,
        "lcmm",
    )
    model = LatencyModel(graph, accel)
    feature = feature_reuse_pass(graph, model)
    prefetch = weight_prefetch_pass(graph, model)
    buffers = combine_buffers([feature.buffers, prefetch.buffers])
    capacity = accel.device.sram_bytes - accel.tile_buffer_bytes()
    return model, buffers, capacity


@pytest.mark.parametrize("model_name", ["googlenet", "resnet152", "inception_v4"])
def test_dnnk_scaling_models(benchmark, model_name):
    model, buffers, capacity = make_inputs(model_name)
    result = benchmark(dnnk_allocate, buffers, model, capacity)
    attach(
        benchmark,
        model=model_name,
        num_buffers=len(buffers),
        capacity_blocks=capacity // URAM_BYTES,
        allocated=len(result.allocated),
    )
    assert result.used_bytes <= capacity


@pytest.mark.parametrize("granularity", [URAM_BYTES, URAM_BYTES // 4])
def test_dnnk_scaling_granularity(benchmark, granularity):
    model, buffers, capacity = make_inputs("inception_v4")
    result = benchmark(dnnk_allocate, buffers, model, capacity, granularity)
    attach(benchmark, granularity=granularity, allocated=len(result.allocated))
    assert result.used_bytes <= capacity

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, records the
reproduced numbers in ``benchmark.extra_info`` (visible in the JSON
output of ``pytest-benchmark``) and prints a human-readable rendition, so
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced artifact
next to its generation time.
"""

from __future__ import annotations


def attach(benchmark, **info) -> None:
    """Record reproduced results on the benchmark fixture."""
    for key, value in info.items():
        benchmark.extra_info[key] = value

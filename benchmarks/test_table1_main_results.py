"""Bench: regenerate Table 1 — UMM vs LCMM across the benchmark matrix.

Paper's claims this reproduces: LCMM outperforms UMM for every benchmark
and precision; the average speedup is ~1.36x; 8-bit speedups are RN 1.42x,
GN 1.23x, IN 1.17x (we reproduce the ordering and rough magnitudes).
"""

from repro.analysis.experiments import run_table1
from repro.analysis.metrics import average_speedup
from repro.analysis.report import format_table

from conftest import attach


def test_table1(benchmark):
    rows = benchmark(run_table1)

    speedups = {
        (r.benchmark, r.precision): r.speedup for r in rows if r.design == "LCMM"
    }
    avg = average_speedup(speedups.values())

    print("\nTable 1 — detailed results (reproduced)")
    print(
        format_table(
            ("Benchmark", "Prec", "Design", "Latency(ms)", "Tops", "MHz", "SRAM", "Speedup"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.latency_ms:.3f}",
                    f"{r.tops:.3f}",
                    int(r.frequency_mhz),
                    f"{r.sram_utilization:.0%}",
                    f"{r.speedup:.2f}",
                )
                for r in rows
            ],
        )
    )
    print(f"Average speedup: {avg:.2f}x   (paper: 1.36x)")

    attach(
        benchmark,
        average_speedup=round(avg, 3),
        speedups={f"{k[0]}/{k[1]}": round(v, 3) for k, v in speedups.items()},
    )

    # Shape assertions mirroring the paper.
    assert all(s > 1.0 for s in speedups.values())
    assert 1.2 <= avg <= 1.6
    assert speedups[("resnet152", "int8")] > speedups[("inception_v4", "int8")]

"""Extension bench: allocator quality vs the provable optimum.

Compares DNNK (heuristic DP + local search), the density-greedy baseline
and the branch-and-bound exact allocator across a capacity sweep on
GoogLeNet 16-bit, reporting each heuristic's optimality gap.  The key
quality claim of the repository's allocator: within ~2% of optimal
everywhere on this instance.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.hw.sram import URAM_BYTES
from repro.lcmm.branch_bound import branch_and_bound_allocate
from repro.lcmm.dnnk import dnnk_allocate, greedy_allocate
from repro.lcmm.feature_reuse import feature_reuse_pass
from repro.lcmm.prefetch import weight_prefetch_pass
from repro.lcmm.splitting import combine_buffers
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach

CAPACITY_BLOCKS = (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def setup():
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT16, "lcmm")
    model = LatencyModel(graph, accel)
    feature = feature_reuse_pass(graph, model)
    prefetch = weight_prefetch_pass(graph, model)
    buffers = combine_buffers([feature.buffers, prefetch.buffers])
    return model, buffers


def test_allocator_quality(benchmark, setup):
    model, buffers = setup

    def run_dnnk():
        return [
            model.total_latency(
                dnnk_allocate(buffers, model, blocks * URAM_BYTES).onchip_tensors
            )
            for blocks in CAPACITY_BLOCKS
        ]

    dnnk = benchmark(run_dnnk)
    greedy = [
        model.total_latency(
            greedy_allocate(buffers, model, blocks * URAM_BYTES).onchip_tensors
        )
        for blocks in CAPACITY_BLOCKS
    ]
    optimal = [
        model.total_latency(
            branch_and_bound_allocate(
                buffers, model, blocks * URAM_BYTES
            ).onchip_tensors
        )
        for blocks in CAPACITY_BLOCKS
    ]

    print("\nAllocator quality vs branch-and-bound optimum (GoogLeNet 16-bit)")
    print(
        format_table(
            ("capacity (blk)", "DNNK (ms)", "greedy (ms)", "optimal (ms)", "DNNK gap"),
            [
                (
                    blocks,
                    f"{d * 1e3:.4f}",
                    f"{g * 1e3:.4f}",
                    f"{o * 1e3:.4f}",
                    f"{(d / o - 1) * 100:.2f}%",
                )
                for blocks, d, g, o in zip(CAPACITY_BLOCKS, dnnk, greedy, optimal)
            ],
        )
    )

    worst_gap = max(d / o - 1 for d, o in zip(dnnk, optimal))
    attach(benchmark, worst_gap_pct=round(worst_gap * 100, 3))

    for d, g, o in zip(dnnk, greedy, optimal):
        assert o <= d + 1e-15 and o <= g + 1e-15  # optimum really is optimal
        assert d / o - 1 <= 0.02  # DNNK within 2% of optimal

"""Bench: the serving daemon's front door under load.

Drives a live (inline-worker) ``lcmm serve`` instance over real HTTP
and turns the daemon's value proposition into numbers and assertions,
written to ``BENCH_serve.json``:

* **cold vs warm**: every (model, config) pair is compiled once cold
  (cache miss) and then re-requested warm; the warm p50 must be at
  least **10x** lower than the cold p50 (asserted) — a daemon that
  recompiles on every request is just a slow CLI;
* **fidelity**: every served fingerprint — cold and warm — must be
  bit-identical to the pinned golden regression fingerprints in
  ``tests/golden`` (asserted);
* **throughput**: concurrent warm clients measure requests/second
  through the full admission / single-flight / deadline machinery;
* **overload**: at 2x the admission capacity the daemon must shed the
  excess with structured 429s (and serve the rest) rather than queue
  unboundedly (asserted: sheds some, serves some, every response is
  one or the other).
"""

from __future__ import annotations

import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from pathlib import Path

from repro.robustness.inject import FaultPlan, disarm_all, injected
from repro.serve import ServerConfig, ServerThread, ServiceConfig

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
_GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
_MIN_WARM_SPEEDUP = 10.0

#: The served matrix: heavyweight models so the cold pass has real work
#: to amortize, plus small ones so the warm path's constant cost shows.
_MATRIX = [
    ("alexnet", "dnnk"),
    ("alexnet", "splitting"),
    ("squeezenet", "splitting"),
    ("googlenet", "splitting"),
    ("mobilenet_v1", "dnnk"),
    ("resnet50", "splitting"),
    ("inception_v4", "splitting"),
    ("resnet152", "dnnk"),
]
_WARM_ROUNDS = 5
_THROUGHPUT_CLIENTS = 4
_THROUGHPUT_REQUESTS = 60


def _post(server: ServerThread, payload: dict, timeout: float = 300.0):
    conn = HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request(
            "POST",
            "/v1/compile",
            json.dumps(payload),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read())
    finally:
        conn.close()
    return response.status, body


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _golden(model: str, config: str) -> dict:
    return json.loads((_GOLDEN_DIR / f"{model}.json").read_text())[config]


def test_serve_cold_warm_throughput_and_overload():
    disarm_all()
    results: dict = {}
    with tempfile.TemporaryDirectory(prefix="lcmm-bench-serve-") as cache_dir:
        thread = ServerThread(
            ServiceConfig(inline=True, workers=_THROUGHPUT_CLIENTS, cache_dir=cache_dir),
            ServerConfig(max_inflight=_THROUGHPUT_CLIENTS, queue_depth=16),
        ).start()
        try:
            # ---- cold pass: every request is a real compile ----------
            cold: list[float] = []
            for model, config in _MATRIX:
                start = time.perf_counter()
                status, body = _post(thread, {"model": model, "config": config})
                cold.append(time.perf_counter() - start)
                assert status == 200, body
                assert body["cache_hit"] is False
                assert body["degradation_level"] == 0
                assert body["fingerprint"] == _golden(model, config), (
                    f"{model}.{config}: served fingerprint diverges from golden"
                )

            # ---- warm pass: every request is an artifact lookup ------
            warm: list[float] = []
            for _ in range(_WARM_ROUNDS):
                for model, config in _MATRIX:
                    start = time.perf_counter()
                    status, body = _post(thread, {"model": model, "config": config})
                    warm.append(time.perf_counter() - start)
                    assert status == 200 and body["cache_hit"] is True
                    assert body["fingerprint"] == _golden(model, config)

            # ---- concurrent warm throughput --------------------------
            def one_request(i: int) -> float:
                model, config = _MATRIX[i % len(_MATRIX)]
                start = time.perf_counter()
                status, body = _post(thread, {"model": model, "config": config})
                assert status == 200 and body["cache_hit"] is True
                return time.perf_counter() - start

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=_THROUGHPUT_CLIENTS) as pool:
                latencies = list(pool.map(one_request, range(_THROUGHPUT_REQUESTS)))
            wall = time.perf_counter() - start
            throughput = _THROUGHPUT_REQUESTS / wall
        finally:
            assert thread.stop() is True

        cold_p50, cold_p99 = _quantile(cold, 0.5), _quantile(cold, 0.99)
        warm_p50, warm_p99 = _quantile(warm, 0.5), _quantile(warm, 0.99)
        speedup = cold_p50 / warm_p50
        assert speedup >= _MIN_WARM_SPEEDUP, (
            f"warm p50 only {speedup:.1f}x below cold p50 "
            f"({warm_p50 * 1e3:.2f} ms vs {cold_p50 * 1e3:.1f} ms); "
            f"need >= {_MIN_WARM_SPEEDUP:.0f}x"
        )

        # ---- overload: 2x admission capacity, fresh empty cache ------
        capacity = 2  # max_inflight + queue_depth
        offered = 4 * capacity  # concurrent clients at hard 2x the backlog cap
        with tempfile.TemporaryDirectory(prefix="lcmm-bench-shed-") as shed_dir:
            overload = ServerThread(
                ServiceConfig(inline=True, workers=1, cache_dir=shed_dir),
                ServerConfig(max_inflight=1, queue_depth=1),
            ).start()
            try:
                # Every job body stalls 0.3 s, so the offered burst piles
                # up against the backlog cap instead of draining instantly.
                with injected(
                    FaultPlan("serve.worker", mode="hang", hang_seconds=0.3)
                ):
                    def one_overload(i: int) -> int:
                        model, config = _MATRIX[i % len(_MATRIX)]
                        status, body = _post(
                            overload, {"model": model, "config": config}
                        )
                        if status == 429:
                            assert body["error"]["type"] == "OverloadedError"
                        else:
                            assert status == 200, body
                        return status

                    with ThreadPoolExecutor(max_workers=offered) as pool:
                        statuses = list(pool.map(one_overload, range(offered)))
            finally:
                assert overload.stop() is True

        served = statuses.count(200)
        shed = statuses.count(429)
        assert served + shed == offered  # every response structured
        assert served >= 1, "overload must not shed everything"
        assert shed >= 1, "2x overload must shed the excess, not queue it"
        shed_rate = shed / offered

    results["serve"] = {
        "matrix_jobs": len(_MATRIX),
        "cold_p50_ms": cold_p50 * 1e3,
        "cold_p99_ms": cold_p99 * 1e3,
        "warm_p50_ms": warm_p50 * 1e3,
        "warm_p99_ms": warm_p99 * 1e3,
        "warm_over_cold_p50": speedup,
        "min_warm_over_cold_p50": _MIN_WARM_SPEEDUP,
        "warm_throughput_rps": throughput,
        "throughput_clients": _THROUGHPUT_CLIENTS,
        "throughput_p99_ms": _quantile(latencies, 0.99) * 1e3,
        "overload": {
            "offered": offered,
            "capacity": capacity,
            "served": served,
            "shed": shed,
            "shed_rate": shed_rate,
        },
        "golden_verified": True,
    }
    _RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(
        f"\nserve bench: cold p50 {cold_p50 * 1e3:.1f} ms, warm p50 "
        f"{warm_p50 * 1e3:.2f} ms ({speedup:.0f}x), {throughput:.0f} rps warm, "
        f"overload shed {shed}/{offered} ({shed_rate:.0%}), golden verified"
    )

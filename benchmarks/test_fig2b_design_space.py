"""Bench: regenerate Fig. 2(b) — the 2^14-point per-block design space.

Paper's claims this reproduces: choosing on/off-chip storage per inception
block of Inception-v4 spans 16384 allocations whose performance is NOT
monotone in memory consumption — "more on-chip memory doesn't necessarily
mean higher performance" — which motivates the DNNK allocator.
"""

from repro.analysis.design_space import DesignSpaceEnumerator
from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8
from repro.models import get_model

from conftest import attach


def test_fig2b(benchmark):
    graph = get_model("inception_v4")
    accel = reference_design("inception_v4", INT8, "lcmm")
    enumerator = DesignSpaceEnumerator(graph, accel)
    assert len(enumerator.blocks) == 14

    points = benchmark(enumerator.enumerate)
    assert len(points) == 2**14

    best = max(points, key=lambda p: p.tops)
    worst = min(points, key=lambda p: p.tops)
    device_limit = accel.device.sram_bytes

    # The paper's observation, "more on-chip memory doesn't necessarily
    # mean higher performance", shows up two ways in the scatter:
    # (a) saturation — near-best performance is reachable with a fraction
    #     of the best point's memory, and
    # (b) scatter at the device limit — among points that fit the 40 MB
    #     device, many spend lots of memory yet stay far from the best
    #     feasible performance.
    cheapest_good = min(
        (p for p in points if p.tops >= 0.99 * best.tops),
        key=lambda p: p.onchip_bytes,
    )
    feasible = [p for p in points if p.onchip_bytes <= device_limit]
    best_feasible = max(feasible, key=lambda p: p.tops)
    big_spenders = [
        p
        for p in feasible
        if p.onchip_bytes >= 0.5 * device_limit
        and p.tops < 0.99 * best_feasible.tops
    ]

    print("\nFig. 2(b) — design space of memory allocation (reproduced)")
    print(f"Points evaluated: {len(points)} (2^14, as in the paper)")
    print(f"Worst: {worst.tops:.3f} Tops at {worst.onchip_bytes / 2**20:6.1f} MB")
    print(f"Best:  {best.tops:.3f} Tops at {best.onchip_bytes / 2**20:6.1f} MB")
    print(
        f"99% of best needs only {cheapest_good.onchip_bytes / 2**20:.1f} MB "
        f"({cheapest_good.onchip_bytes / best.onchip_bytes:.0%} of the best point)"
    )
    print(
        f"Feasible (<= device 41 MB) points spending >= 50% of the device yet "
        f"below 99% of best-feasible: {len(big_spenders)}"
    )

    attach(
        benchmark,
        num_points=len(points),
        best_tops=round(best.tops, 3),
        best_memory_mb=round(best.onchip_bytes / 2**20, 1),
        memory_for_99pct_mb=round(cheapest_good.onchip_bytes / 2**20, 1),
        big_spenders=len(big_spenders),
    )

    assert best.tops > worst.tops
    # (a) saturation: 99% of the best needs well under the best's memory.
    assert cheapest_good.onchip_bytes < 0.8 * best.onchip_bytes
    # (b) scatter: plenty of memory-hungry, underperforming allocations.
    assert len(big_spenders) > 100

"""Bench: disabled-tracing overhead of the observability hooks.

The instrumentation contract is that with no tracer active, every
``obs.span()`` call site reduces to one global load returning the shared
no-op span, and every ``obs.annotate()`` to a single dict-load guard —
so a production ``run_lcmm`` pays nothing measurable.  This file turns
that claim into numbers and an assertion, written to ``BENCH_obs.json``:

* results are **bit-for-bit identical** with tracing enabled, disabled,
  and as measured by the golden fingerprints (asserted);
* the analytic overhead bound — measured per-call guard cost times the
  number of instrumentation hits an enabled run actually records, with a
  10x call-count safety margin — must stay under 2 % of the disabled
  ``run_lcmm`` wall time on GoogLeNet;
* measured enabled vs disabled wall times are recorded for the record
  (not asserted: two ~20 ms wall-time samples are noisier than the 2 %
  budget, which is exactly why the bound is computed analytically).

Set ``BENCH_SMOKE=1`` to cut repeats for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import obs
from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8
from repro.lcmm.framework import run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
_REPEATS = 2 if os.environ.get("BENCH_SMOKE") else 5
_GUARD_CALLS = 20_000 if os.environ.get("BENCH_SMOKE") else 200_000
_OVERHEAD_BUDGET = 0.02
_CALL_COUNT_MARGIN = 10


def _best_of(fn, repeats: int = _REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_disabled_tracing_overhead_under_budget():
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT8, "lcmm")
    model = LatencyModel(graph, accel)

    obs.disable()
    baseline = run_lcmm(graph, accel, model=model)
    with obs.tracing("main") as tracer:
        traced = run_lcmm(graph, accel, model=model)

    # The hooks must not move the result at all.
    assert traced.latency == baseline.latency
    assert traced.onchip_tensors == baseline.onchip_tensors
    assert traced.sram_usage.used_bytes == baseline.sram_usage.used_bytes

    # Instrumentation hits one enabled run actually makes: recorded
    # spans plus instant annotations.  Disabled, each of those sites is
    # one guard; pad the count 10x for sites that only guard (metrics
    # publication, enabled() checks) without recording anything.
    hits = len(tracer.records) + len(tracer.events) + sum(
        len(record.events) for record in tracer.records
    )
    call_count = hits * _CALL_COUNT_MARGIN

    def guard_loop():
        for _ in range(_GUARD_CALLS):
            obs.span("bench.guard", key=1)

    assert obs.tracer() is None, "guard must be measured with tracing off"
    guard_seconds = _best_of(guard_loop) / _GUARD_CALLS

    disabled_seconds = _best_of(lambda: run_lcmm(graph, accel, model=model))
    with obs.tracing("main"):
        enabled_seconds = _best_of(lambda: run_lcmm(graph, accel, model=model))

    overhead_seconds = guard_seconds * call_count
    overhead_fraction = overhead_seconds / disabled_seconds
    assert overhead_fraction < _OVERHEAD_BUDGET, (
        f"disabled-tracing overhead bound {overhead_fraction:.4%} "
        f"exceeds the {_OVERHEAD_BUDGET:.0%} budget "
        f"({call_count} guarded calls at {guard_seconds * 1e9:.0f} ns)"
    )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "run_lcmm_googlenet": {
                    "disabled_seconds": disabled_seconds,
                    "enabled_seconds": enabled_seconds,
                    "enabled_span_count": len(tracer.records),
                    "instrumentation_hits": hits,
                    "guard_call_ns": guard_seconds * 1e9,
                    "overhead_bound_fraction": overhead_fraction,
                    "overhead_budget": _OVERHEAD_BUDGET,
                    "call_count_margin": _CALL_COUNT_MARGIN,
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nobs overhead: guard {guard_seconds * 1e9:.0f} ns/call, "
        f"{hits} hits ({call_count} assumed), "
        f"bound {overhead_fraction:.4%} of {disabled_seconds * 1e3:.2f} ms "
        f"(enabled run: {enabled_seconds * 1e3:.2f} ms)"
    )

"""Extension bench: fractional tensor residency under tight SRAM budgets.

A whole-tensor knapsack strands any capacity smaller than the smallest
remaining tensor; the fractional-fill extension pins a channel slice of a
spilled tensor into that leftover.  This bench sweeps tight budgets on
GoogLeNet 16-bit and reports what the partial pins recover.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.hw.sram import URAM_BYTES
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach

BUDGET_BLOCKS = (2, 4, 8, 16, 32)


def run_sweep():
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT16, "lcmm")
    model = LatencyModel(graph, accel)
    tile = accel.tile_buffer_bytes()
    rows = []
    for blocks in BUDGET_BLOCKS:
        budget = tile + blocks * URAM_BYTES
        plain = run_lcmm(
            graph, accel, options=LCMMOptions(sram_budget=budget), model=model
        )
        filled = run_lcmm(
            graph,
            accel,
            options=LCMMOptions(sram_budget=budget, fractional_fill=True),
            model=model,
        )
        rows.append((blocks, plain.latency, filled.latency, len(filled.fractions)))
    return rows


def test_fractional_fill(benchmark):
    rows = benchmark(run_sweep)

    print("\nFractional fill under tight budgets (GoogLeNet 16-bit)")
    print(
        format_table(
            ("budget (blk)", "whole-tensor (ms)", "with fill (ms)", "partial pins"),
            [
                (blocks, f"{plain * 1e3:.4f}", f"{filled * 1e3:.4f}", pins)
                for blocks, plain, filled, pins in rows
            ],
        )
    )

    attach(
        benchmark,
        recoveries={
            str(blocks): round((plain - filled) * 1e6, 2)
            for blocks, plain, filled, _ in rows
        },
    )

    for _, plain, filled, _ in rows:
        assert filled <= plain + 1e-15
    # At least one tight budget must actually benefit from a partial pin.
    assert any(filled < plain - 1e-12 for _, plain, filled, _ in rows)
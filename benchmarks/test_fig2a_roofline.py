"""Bench: regenerate Fig. 2(a) — the Inception-v4 roofline on VU9P.

Paper's claims this reproduces: a large fraction of Inception-v4's layers
are memory bound under the uniform dataflow (paper: 82 of 141, 58%), and
a majority of the memory-bound layers demand bandwidth far beyond one
DDR4 interface (paper: over 60% need >= 70 GB/s).
"""

from repro.analysis.experiments import run_fig2a

from conftest import attach


def test_fig2a(benchmark):
    roofline = benchmark(run_fig2a)

    bound, total = roofline.memory_bound_count(convs_only=True)
    points = roofline.points(convs_only=True)
    bound_points = [p for p in points if p.memory_bound]
    heavy = [p for p in bound_points if p.bandwidth_requirement >= 40e9]

    print("\nFig. 2(a) — Inception-v4 roofline (reproduced)")
    print(f"Peak performance:     {roofline.compute_roof / 1e12:.2f} Tops")
    print(f"Interface bandwidth:  {roofline.interface_bandwidth / 1e9:.1f} GB/s")
    print(f"Ridge point:          {roofline.ridge_point():.1f} ops/byte")
    print(f"Memory-bound layers:  {bound}/{total} ({bound / total:.0%};"
          f" paper: 82/141 = 58%)")
    print(f"Needing >=40 GB/s:    {len(heavy)}/{len(bound_points)} of memory-bound")
    sample = sorted(bound_points, key=lambda p: -p.bandwidth_requirement)[:5]
    for p in sample:
        print(
            f"  {p.node:32s} OI={p.operation_intensity:7.1f}  "
            f"needs {p.bandwidth_requirement / 1e9:6.1f} GB/s"
        )

    attach(
        benchmark,
        memory_bound=bound,
        total_layers=total,
        fraction=round(bound / total, 3),
        ridge_ops_per_byte=round(roofline.ridge_point(), 1),
    )

    assert total >= 140
    assert 0.3 <= bound / total <= 0.75
    assert heavy

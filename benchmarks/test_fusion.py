"""Bench: fusion ablation — fused+scheduled vs plain LCMM vs UMM.

Runs :func:`repro.analysis.experiments.run_fusion_ablation` over the
model zoo (a three-model subset under ``BENCH_SMOKE=1``) on the
bandwidth-constrained ablation design and writes the per-model table to
``BENCH_fusion.json`` at the repo root.

Two guarantees are asserted here, not just measured:

* monotonicity — on every model the fused pipeline never loses to plain
  LCMM and fused+scheduled never loses to fused (Eq.-1 objective, exact
  comparison; both passes are accept-if-improves so a tie means the
  pass found nothing and changed nothing);
* the constrained design is actually transfer-bound enough to exercise
  the passes — at least one model must show a strict improvement.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.experiments import run_fusion_ablation
from repro.models.zoo import list_models

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fusion.json"
_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

_MODELS = ("resnet50", "googlenet", "squeezenet") if _SMOKE else tuple(list_models())


def test_fusion_ablation():
    rows = run_fusion_ablation(models=_MODELS)
    assert [r.model_name for r in rows] == list(_MODELS)

    for row in rows:
        # Exact comparisons: accept-if-improves means a pass either
        # strictly improves the objective or leaves it bit-identical.
        # (No plain-vs-UMM assertion: the UMM column runs on its own
        # design point with a higher achieved clock — Tab. 1's pairing —
        # so a compute-bound model can legitimately favour it.)
        assert row.fused_ms <= row.plain_ms
        assert row.fused_sched_ms <= row.fused_ms
        assert (row.fused_edges > 0) or (row.fused_ms == row.plain_ms)

    assert any(r.improvement > 0.0 for r in rows), (
        "the ablation design is no longer transfer-bound: fusion and "
        "scheduling improved nothing anywhere"
    )

    payload = {
        "design": "reference resnet152/int8 LCMM @ 0.5x DDR efficiency, "
        "tile buffers + 2 MiB tensor budget",
        "models": {
            r.model_name: {
                "umm_ms": r.umm_ms,
                "plain_ms": r.plain_ms,
                "fused_ms": r.fused_ms,
                "fused_sched_ms": r.fused_sched_ms,
                "fused_edges": r.fused_edges,
                "shortcut_edges": r.shortcut_edges,
                "bytes_saved": r.bytes_saved,
                "improvement_vs_plain": r.improvement,
            }
            for r in rows
        },
        "best_improvement": max(r.improvement for r in rows),
        "smoke": _SMOKE,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print("\nfusion ablation (constrained design):")
    for r in rows:
        print(
            f"  {r.model_name:>14}: umm {r.umm_ms:8.3f}  plain {r.plain_ms:8.3f}  "
            f"fused {r.fused_ms:8.3f}  +sched {r.fused_sched_ms:8.3f} ms  "
            f"({r.fused_edges} edges, {r.improvement:6.2%})"
        )

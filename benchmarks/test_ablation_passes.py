"""Ablation bench: contribution of each LCMM pass.

DESIGN.md calls out four design choices; this bench disables each pass in
turn on GoogLeNet 16-bit (the paper's own breakdown configuration) and
reports the speedup each configuration retains.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.lcmm.umm import run_umm
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach

VARIANTS = {
    "full": LCMMOptions(),
    "no-feature-reuse": LCMMOptions(feature_reuse=False),
    "no-weight-prefetch": LCMMOptions(weight_prefetch=False),
    "no-splitting": LCMMOptions(splitting=False),
    "greedy-allocator": LCMMOptions(use_greedy=True),
}


@pytest.fixture(scope="module")
def setup():
    graph = get_model("googlenet")
    accel_umm = reference_design("googlenet", INT16, "umm")
    accel_lcmm = reference_design("googlenet", INT16, "lcmm")
    umm_model = LatencyModel(graph, accel_umm)
    lcmm_model = LatencyModel(graph, accel_lcmm)
    umm = run_umm(graph, accel_umm, umm_model)
    return graph, accel_lcmm, lcmm_model, umm


def run_all_variants(graph, accel, model):
    return {
        name: run_lcmm(graph, accel, options=options, model=model)
        for name, options in VARIANTS.items()
    }


def test_ablation_passes(benchmark, setup):
    graph, accel, model, umm = setup
    results = benchmark(run_all_variants, graph, accel, model)

    speedups = {name: umm.latency / r.latency for name, r in results.items()}

    print("\nAblation — GoogLeNet 16-bit speedup over UMM per configuration")
    print(
        format_table(
            ("Configuration", "Latency(ms)", "Speedup"),
            [
                (name, f"{results[name].latency * 1e3:.3f}", f"{speedups[name]:.3f}")
                for name in VARIANTS
            ],
        )
    )

    attach(benchmark, speedups={k: round(v, 3) for k, v in speedups.items()})

    full = speedups["full"]
    assert full >= speedups["no-feature-reuse"]
    assert full >= speedups["no-weight-prefetch"]
    assert full >= speedups["no-splitting"] - 1e-9
    # Both passes contribute measurably on GoogLeNet 16-bit.
    assert speedups["no-feature-reuse"] < full
    assert speedups["no-weight-prefetch"] < full

"""Bench: regenerate Fig. 8 — GoogLeNet 16-bit per-block analysis.

Paper's claims this reproduces: feature buffer reuse lifts the early
inception blocks (large feature maps, small filters); weight buffer
prefetching removes the weight bottleneck of the late blocks (5a/5b,
where feature maps shrink to 7x7 and weights dominate); their integration
improves every block (Fig. 8(c)).
"""

from repro.analysis.experiments import run_fig8
from repro.analysis.report import format_table

from conftest import attach


def test_fig8(benchmark):
    series = benchmark(run_fig8)
    by_label = {s.label: s for s in series}
    blocks = series[0].blocks

    print("\nFig. 8 — GoogLeNet 16-bit per-block performance in Tops (reproduced)")
    print(
        format_table(
            ("Design",) + tuple(b.replace("inception_", "") for b in blocks),
            [
                (s.label,) + tuple(f"{v:.2f}" for v in s.tops)
                for s in series
            ],
        )
    )

    umm = by_label["UMM"].tops
    feat = by_label["LCMM (feature reuse)"].tops
    wt = by_label["LCMM (weight prefetching)"].tops
    full = by_label["LCMM"].tops

    attach(
        benchmark,
        blocks=list(blocks),
        umm=[round(v, 3) for v in umm],
        lcmm=[round(v, 3) for v in full],
    )

    # Fig. 8(a): feature reuse clearly helps the early blocks.
    assert all(feat[i] > umm[i] * 1.1 for i in range(5))
    # Fig. 8(b): prefetching removes the late weight bottleneck.
    assert wt[-1] > umm[-1] * 1.1 and wt[-2] > umm[-2] * 1.1
    # Fig. 8(c): the integration wins everywhere.
    assert all(full[i] >= max(feat[i], wt[i]) - 1e-9 for i in range(len(blocks)))

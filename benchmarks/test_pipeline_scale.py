"""Bench: multi-die pipeline scaling — throughput vs device count.

Sweeps the layer-pipelined partitioner (:mod:`repro.perf.partition`)
over devices in {1, 2, 4, 8} on the CNN + transformer zoo (resnet152
and bert_base under ``BENCH_SMOKE=1``) with the default 12.5 GB/s
inter-die link, and writes the per-model scaling table to
``BENCH_pipeline.json`` at the repo root.

Three guarantees are asserted here, not just measured:

* monotonicity — steady-state throughput never *drops* when dies are
  added (accept-if-improves degrades any losing partition back to the
  single-die design, so the curve is non-decreasing by construction);
* the single-die column is bit-identical to the plain LCMM flow — its
  allocation fingerprint must match the checked-in golden "splitting"
  record, proving partitioning leaves the non-partitioned path alone;
* on at least one model the 4-die chain shows a real (>1.5x) speedup —
  the link model is not so pessimistic that pipelining never pays.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.experiments import BENCHMARKS, reference_design
from repro.fingerprint import fingerprint
from repro.hw.precision import precision_by_name
from repro.models.zoo import get_model
from repro.perf.partition import InterDieLink, design_partition

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
_GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

_MODELS = (
    ("resnet152", "bert_base")
    if _SMOKE
    else ("resnet50", "resnet152", "vit_b16", "bert_base")
)
_DEVICES = (1, 2, 4, 8)
_LINK = InterDieLink(gbps=12.5)


def test_pipeline_scaling():
    table: dict[str, dict] = {}
    for name in _MODELS:
        graph = get_model(name)
        design_key = name if name in BENCHMARKS else "resnet152"
        accel = reference_design(design_key, precision_by_name("int8"), "lcmm")
        points = {}
        for devices in _DEVICES:
            result = design_partition(graph, accel, devices, link=_LINK)
            points[devices] = result
        table[name] = points

    for name, points in table.items():
        # Single die is the plain LCMM compilation, bit for bit: the
        # golden "splitting" fingerprint (default LCMMOptions) must match.
        single = points[1]
        assert single.num_devices == 1 and single.fell_back is None
        golden = json.loads((_GOLDEN_DIR / f"{name}.json").read_text())
        assert fingerprint(single.stages[0].lcmm) == golden["splitting"], (
            f"{name}: single-die partition diverged from the plain flow"
        )

        # Monotone scaling: adding dies never loses throughput.
        rates = [points[d].steady_state_throughput for d in _DEVICES]
        for prev, nxt in zip(rates, rates[1:]):
            assert nxt >= prev * (1 - 1e-12), (
                f"{name}: throughput dropped when adding dies: {rates}"
            )

    assert any(
        points[4].speedup_vs_single > 1.5 for points in table.values()
    ), "no model gains >1.5x from a 4-die chain: the link model is broken"

    payload = {
        "link": {"gbps": _LINK.gbps, "efficiency": _LINK.efficiency},
        "design": "reference per-model int8 LCMM design, one full device per die",
        "models": {
            name: {
                str(d): {
                    "devices_used": r.num_devices,
                    "period_ms": r.period * 1e3,
                    "image_latency_ms": r.image_latency * 1e3,
                    "images_per_second": r.steady_state_throughput,
                    "speedup_vs_single": r.speedup_vs_single if d > 1 else 1.0,
                    "fell_back": r.fell_back,
                    "stage_nodes": [len(s.nodes) for s in r.stages],
                    "cut_mbytes": [b / 2**20 for b in r.cut_bytes],
                    "link_bound_stages": sum(s.link_bound for s in r.stages),
                }
                for d, r in points.items()
            }
            for name, points in table.items()
        },
        "smoke": _SMOKE,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print("\nmulti-die pipeline scaling (12.5 GB/s links):")
    for name, points in table.items():
        row = "  ".join(
            f"{d}d {points[d].steady_state_throughput:7.1f} img/s"
            for d in _DEVICES
        )
        print(f"  {name:>10}: {row}")

"""Extension bench: LCMM inside a TGPA-style multi-accelerator pipeline.

The paper's conclusion marks the heterogeneous pipeline of TGPA [17] as
orthogonal future work; this bench performs the integration on ResNet-152
16-bit — split the fabric into tuned per-stage arrays, stream boundary
tensors on chip, run LCMM inside every stage — and reports single-image
latency vs steady-state throughput across pipeline depths.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.models import get_model
from repro.perf.pipeline import design_pipeline

from conftest import attach

DEPTHS = (1, 2, 4)


def run_depths():
    graph = get_model("resnet152")
    base = reference_design("resnet152", INT16, "lcmm")
    return {k: design_pipeline(graph, base, k) for k in DEPTHS}


def test_pipeline(benchmark):
    results = benchmark(run_depths)

    print("\nLCMM x TGPA-style pipelining (ResNet-152, 16-bit)")
    rows = []
    for depth, result in results.items():
        rows.append(
            (
                depth,
                f"{result.image_latency * 1e3:.3f}",
                f"{result.period * 1e3:.3f}",
                f"{result.steady_state_throughput:.1f}",
                " / ".join(str(s.accel.array) for s in result.stages),
            )
        )
    print(
        format_table(
            ("stages", "image latency (ms)", "period (ms)", "img/s", "stage arrays"),
            rows,
        )
    )

    attach(
        benchmark,
        throughput={str(k): round(r.steady_state_throughput, 2) for k, r in results.items()},
    )

    single = results[1]
    for depth, result in results.items():
        # Stage coverage and pipelining invariants.
        covered = [n for s in result.stages for n in s.nodes]
        assert covered == get_model("resnet152").compute_schedule()
        assert result.period <= result.image_latency + 1e-15
    # Pipelining sustains at least ~70% of the single-accelerator
    # throughput per image while overlapping images; on memory-relieved
    # ResNet the deeper designs should be competitive.
    for depth in (2, 4):
        assert results[depth].steady_state_throughput >= (
            0.6 * single.steady_state_throughput
        )

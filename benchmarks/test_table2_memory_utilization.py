"""Bench: regenerate Table 2 — on-chip memory utilisation and POL.

Paper's claims this reproduces: LCMM has far higher on-chip memory
utilisation than UMM (tensor buffers in URAM on top of tile buffers), and
a high percentage of memory-bound layers benefit (POL 61-94%).
"""

from repro.analysis.experiments import run_table2
from repro.analysis.report import format_table

from conftest import attach


def test_table2(benchmark):
    rows = benchmark(run_table2)

    print("\nTable 2 — on-chip memory utilisation (reproduced)")
    print(
        format_table(
            ("Benchmark", "Prec", "Design", "BRAM", "URAM", "POL"),
            [
                (
                    r.benchmark,
                    r.precision,
                    r.design,
                    f"{r.bram_utilization:.0%}",
                    f"{r.uram_utilization:.0%}",
                    f"{r.percentage_onchip_layers:.0%}",
                )
                for r in rows
            ],
        )
    )

    attach(
        benchmark,
        pol={
            f"{r.benchmark}/{r.precision}": round(r.percentage_onchip_layers, 3)
            for r in rows
            if r.design == "LCMM"
        },
    )

    by_key = {}
    for r in rows:
        by_key.setdefault((r.benchmark, r.precision), {})[r.design] = r
    for pair in by_key.values():
        assert pair["LCMM"].uram_utilization > pair["UMM"].uram_utilization
        assert pair["LCMM"].percentage_onchip_layers >= 0.6

"""Bench: cold vs warm batch-compile through the compilation cache.

The cache's value proposition is that a warmed cache turns a zoo-wide
batch compile into pure artifact lookups.  This file turns that into
numbers and assertions, written to ``BENCH_cache.json``:

* a **cold** batch compile of the full model zoo times the four standard
  configurations (umm, dnnk, greedy, splitting) populates a fresh cache
  directory — every job is a miss;
* a **warm** second pass over the identical matrix must be served
  entirely from the cache (asserted: 100 % hits) and complete at least
  **10x** faster than the cold pass (asserted);
* both passes' result fingerprints must be bit-identical to the golden
  regression fingerprints in ``tests/golden`` for every (model, config)
  pair (asserted) — a cache that changes results is worse than no cache.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.cache import STANDARD_CONFIGS, batch_compile
from repro.models.zoo import list_models

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"
_GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
_MIN_SPEEDUP = 10.0


def test_warm_batch_compile_speedup():
    models = list_models()
    configs = list(STANDARD_CONFIGS)
    with tempfile.TemporaryDirectory(prefix="lcmm-bench-cache-") as cache_dir:
        start = time.perf_counter()
        cold = batch_compile(models=models, configs=configs, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = batch_compile(models=models, configs=configs, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start

    assert cold.misses == len(models) * len(configs), "cold pass must compile all"
    assert warm.all_hits, (
        f"warm pass missed the cache on {warm.misses} of "
        f"{len(warm.outcomes)} jobs"
    )

    # Cached artifacts must be bit-identical to the pinned golden results.
    assert cold.verify_golden(_GOLDEN_DIR) == []
    warm_problems = warm.verify_golden(_GOLDEN_DIR)
    assert warm_problems == [], "\n".join(warm_problems)
    assert [o.fingerprint for o in warm.outcomes] == [
        o.fingerprint for o in cold.outcomes
    ]

    speedup = cold_seconds / warm_seconds
    assert speedup >= _MIN_SPEEDUP, (
        f"warm batch compile only {speedup:.1f}x faster than cold "
        f"({warm_seconds * 1e3:.1f} ms vs {cold_seconds * 1e3:.1f} ms); "
        f"need >= {_MIN_SPEEDUP:.0f}x"
    )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "batch_compile_zoo": {
                    "models": len(models),
                    "configs": configs,
                    "jobs": len(cold.outcomes),
                    "cold_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "speedup": speedup,
                    "min_speedup": _MIN_SPEEDUP,
                    "warm_hit_rate": warm.hits / len(warm.outcomes),
                    "golden_verified": True,
                },
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\ncache bench: {len(cold.outcomes)} jobs cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds * 1e3:.0f} ms ({speedup:.0f}x), "
        f"{warm.hits}/{len(warm.outcomes)} warm hits, golden verified"
    )

"""Bench: regenerate Table 3 — comparison with state-of-the-art designs.

Paper's claims this reproduces: the 16-bit LCMM design beats Cloud-DNN
[3] on ResNet-50 (paper: 1.35x throughput) and TGPA [17] on ResNet-152
(paper: 1.12x throughput), in both throughput and latency-per-image.
"""

from repro.analysis.experiments import run_table3
from repro.analysis.report import format_table

from conftest import attach


def test_table3(benchmark):
    rows = benchmark(run_table3)

    print("\nTable 3 — state-of-the-art comparison (published vs reproduced)")
    print(
        format_table(
            ("Design", "Model", "MHz", "Tops", "Latency/Image(ms)", "Source"),
            [
                (
                    r.design,
                    r.dnn_model,
                    int(r.frequency_mhz),
                    f"{r.throughput_tops:.3f}",
                    f"{r.latency_ms:.2f}",
                    "published" if r.published else "measured",
                )
                for r in rows
            ],
        )
    )

    by_model = {}
    for r in rows:
        by_model.setdefault(r.dnn_model, {})[r.published] = r
    ratios = {
        model: pair[False].throughput_tops / pair[True].throughput_tops
        for model, pair in by_model.items()
    }
    print(f"Throughput ratios vs published: {ratios}")

    attach(benchmark, throughput_ratios={k: round(v, 3) for k, v in ratios.items()})

    for pair in by_model.values():
        assert pair[False].throughput_tops > pair[True].throughput_tops
        assert pair[False].latency_ms < pair[True].latency_ms

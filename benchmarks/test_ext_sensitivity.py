"""Extension bench: robustness of the headline result to model knobs.

The reproduction's conclusions should not hinge on the calibrated DDR
efficiency or on the exact SRAM budget.  This bench sweeps both on
GoogLeNet 16-bit and checks the qualitative claims survive:

* LCMM > UMM at every DDR efficiency (the advantage grows as bandwidth
  gets scarcer);
* speedup is monotone in the SRAM budget and saturates well below the
  device capacity (the Fig. 2(b) saturation effect, now under DNNK).
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig

from conftest import attach

EFFICIENCIES = (0.5, 0.65, 0.8, 0.95)
BUDGET_FRACTIONS = (0.05, 0.1, 0.2, 0.4, 1.0)


def _with_efficiency(base: AcceleratorConfig, eff: float) -> AcceleratorConfig:
    return AcceleratorConfig(
        name=base.name,
        precision=base.precision,
        array=base.array,
        tile=base.tile,
        frequency=base.frequency,
        device=base.device,
        ddr_efficiency=eff,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


def run_sweeps():
    graph = get_model("googlenet")
    base = reference_design("googlenet", INT16, "lcmm")

    eff_rows = []
    for eff in EFFICIENCIES:
        accel = _with_efficiency(base, eff)
        model = LatencyModel(graph, accel)
        result = run_lcmm(graph, accel, model=model)
        eff_rows.append((eff, model.umm_latency() / result.latency))

    model = LatencyModel(graph, base)
    umm_latency = model.umm_latency()
    tile = base.tile_buffer_bytes()
    total = base.device.sram_bytes
    budget_rows = []
    for fraction in BUDGET_FRACTIONS:
        budget = tile + int((total - tile) * fraction)
        result = run_lcmm(
            graph, base, options=LCMMOptions(sram_budget=budget), model=model
        )
        budget_rows.append((fraction, budget, umm_latency / result.latency))
    return eff_rows, budget_rows


def test_sensitivity(benchmark):
    eff_rows, budget_rows = benchmark(run_sweeps)

    print("\nSensitivity — speedup vs DDR efficiency (GoogLeNet 16-bit)")
    print(format_table(
        ("DDR efficiency", "speedup"),
        [(f"{e:.2f}", f"{s:.3f}") for e, s in eff_rows],
    ))
    print("\nSensitivity — speedup vs SRAM budget")
    print(format_table(
        ("fraction", "budget (MB)", "speedup"),
        [(f"{f:.2f}", f"{b / 2**20:.1f}", f"{s:.3f}") for f, b, s in budget_rows],
    ))

    attach(
        benchmark,
        efficiency_speedups={str(e): round(s, 3) for e, s in eff_rows},
        budget_speedups={str(f): round(s, 3) for f, b, s in budget_rows},
    )

    # LCMM wins at every efficiency, and scarcer bandwidth means more win.
    speedups = [s for _, s in eff_rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups[0] >= speedups[-1]

    # Speedup is monotone in budget and saturates before the full device.
    budget_speedups = [s for _, _, s in budget_rows]
    assert all(
        later >= earlier - 1e-9
        for earlier, later in zip(budget_speedups, budget_speedups[1:])
    )
    assert budget_speedups[-2] >= 0.95 * budget_speedups[-1]

"""Extension bench: liveness-friendly schedule reordering.

The paper fixes the topological schedule; this bench measures what a
depth-first, footprint-aware reordering buys on the branching benchmarks:
fewer simultaneously live feature tensors means the colouring needs fewer
and smaller buffers, which frees capacity for DNNK.
"""

import pytest

from repro.analysis.experiments import reference_design
from repro.analysis.report import format_table
from repro.hw.precision import INT16
from repro.lcmm.framework import run_lcmm
from repro.lcmm.reorder import peak_live_feature_bytes, reorder_depth_first
from repro.lcmm.validate import validate_result
from repro.models import get_model
from repro.perf.latency import LatencyModel

from conftest import attach

MODELS = ("googlenet", "inception_v4", "densenet121")


def run_all():
    rows = []
    for name in MODELS:
        design_key = name if name != "densenet121" else "resnet152"
        accel = reference_design(design_key, INT16, "lcmm")
        original = get_model(name)
        reordered = reorder_depth_first(get_model(name))
        elem = accel.precision.bytes

        orig_model = LatencyModel(original, accel)
        reord_model = LatencyModel(reordered, accel)
        orig_lcmm = run_lcmm(original, accel, model=orig_model)
        reord_lcmm = run_lcmm(reordered, accel, model=reord_model)
        validate_result(reord_lcmm, reord_model)
        rows.append(
            (
                name,
                peak_live_feature_bytes(original, elem),
                peak_live_feature_bytes(reordered, elem),
                orig_lcmm.latency,
                reord_lcmm.latency,
            )
        )
    return rows


def test_reordering(benchmark):
    rows = benchmark(run_all)

    print("\nSchedule reordering — peak live feature bytes and LCMM latency")
    print(
        format_table(
            ("Model", "peak before (KB)", "peak after (KB)", "LCMM before (ms)", "LCMM after (ms)"),
            [
                (
                    name,
                    f"{before / 1024:.0f}",
                    f"{after / 1024:.0f}",
                    f"{lat_before * 1e3:.3f}",
                    f"{lat_after * 1e3:.3f}",
                )
                for name, before, after, lat_before, lat_after in rows
            ],
        )
    )

    attach(
        benchmark,
        peak_reduction={
            name: round(1 - after / before, 3)
            for name, before, after, _, _ in rows
        },
    )

    for name, before, after, lat_before, lat_after in rows:
        # Reordering never inflates the peak footprint...
        assert after <= before
        # ...and never costs meaningful latency (the allocator may find a
        # slightly different but equivalent allocation).
        assert lat_after <= lat_before * 1.05

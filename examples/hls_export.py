#!/usr/bin/env python
"""Export an LCMM design: JSON allocation report + HLS source bundle.

Shows the deployment path a downstream user takes: run the framework on
their network, serialize the allocation decisions for tooling, and emit
the HLS memory-subsystem sources that realise the buffer map on the
FPGA.

Run:  python examples/hls_export.py
"""

import tempfile
from pathlib import Path

from repro.analysis.experiments import reference_design
from repro.codegen import generate_design, write_design
from repro.hw.precision import INT16
from repro.io import allocation_report, save_allocation_report
from repro.lcmm import run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel


def main() -> None:
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT16, "lcmm")
    model = LatencyModel(graph, accel)
    lcmm = run_lcmm(graph, accel, model=model)
    print(f"Allocated {len(lcmm.physical_buffers)} physical buffers for "
          f"{len(lcmm.onchip_tensors)} tensors on {graph.name}")

    out_dir = Path(tempfile.mkdtemp(prefix="lcmm_export_"))

    # 1. Machine-readable allocation report.
    report_path = out_dir / "allocation.json"
    save_allocation_report(lcmm, report_path)
    report = allocation_report(lcmm)
    print(f"\nWrote {report_path}")
    print(f"  latency: {report['latency_seconds'] * 1e3:.3f} ms, "
          f"{len(report['prefetches'])} prefetch entries")

    # 2. HLS source bundle.
    written = write_design(lcmm, model, out_dir / "hls")
    print(f"\nWrote HLS bundle:")
    for path in written:
        print(f"  {path} ({len(path.read_text().splitlines())} lines)")

    design = generate_design(lcmm, model)
    print("\nExcerpt of buffers.h:")
    for line in design.buffers_header.splitlines()[:18]:
        print(f"  {line}")

    print("\nExcerpt of schedule.cpp:")
    for line in design.schedule_source.splitlines()[8:20]:
        print(f"  {line}")


if __name__ == "__main__":
    main()

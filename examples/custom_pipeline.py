#!/usr/bin/env python
"""Custom pipeline: register a user-defined pass and run a bespoke schedule.

The LCMM flow is a compiler pipeline (``repro.lcmm.passes``): techniques
are registered ``Pass`` classes over a shared ``CompilationContext``, and
``run_lcmm`` accepts any pass list.  This example shows both extension
points without touching the framework:

* a user-defined ``ResidencyReportPass`` that rides at the end of the
  default pipeline, reading the ``"allocation"``/``"score"`` artifacts
  and emitting its own structured diagnostics;
* an ablation pipeline assembled from registry names alone, the way
  ``repro.analysis.experiments.run_fig8`` builds its variants.

Run:  python examples/custom_pipeline.py
"""

from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8
from repro.lcmm import LCMMOptions, run_lcmm
from repro.lcmm.passes import (
    Pass,
    default_pipeline,
    pipeline_from_names,
    register_pass,
)
from repro.models import get_model


@register_pass
class ResidencyReportPass(Pass):
    """Report how the pinned bytes split between features and weights."""

    name = "residency_report"
    requires = ("allocation", "score")

    def run(self, ctx):
        allocation = ctx.require("allocation")
        score = ctx.require("score")
        by_class = {}
        for vbuf in allocation.result.allocated:
            for tensor in vbuf.tensors:
                key = tensor.tensor_class.name.lower()
                by_class[key] = by_class.get(key, 0) + tensor.size_bytes
        breakdown = ", ".join(
            f"{kind}: {size / 2**20:.2f} MB" for kind, size in sorted(by_class.items())
        ) or "nothing pinned"
        ctx.diagnose(
            self.name,
            "summary",
            f"{len(score.onchip)} tensors resident ({breakdown})",
            **by_class,
        )


def main() -> None:
    graph = get_model("googlenet")
    accel = reference_design("googlenet", INT8, "lcmm")

    # 1. The default pipeline plus the custom pass appended.
    options = LCMMOptions()
    result = run_lcmm(
        graph,
        accel,
        options=options,
        pipeline=default_pipeline(options) + [ResidencyReportPass()],
    )
    print(f"Pipeline: {result.pipeline_description}")
    print(f"Latency:  {result.latency * 1e3:.3f} ms\n")
    print("Diagnostics:")
    for diag in result.diagnostics:
        print(f"  {diag}")

    # 2. An ablation schedule straight from registry names: weight
    #    prefetching only, no feature reuse (Fig. 8's middle variant).
    ablation = run_lcmm(
        graph,
        accel,
        pipeline=pipeline_from_names(
            ("weight_prefetch", "allocate_splitting", "score", "placement")
        ),
    )
    print(f"\nAblation pipeline: {ablation.pipeline_description}")
    print(f"Latency: {ablation.latency * 1e3:.3f} ms "
          f"(full pipeline: {result.latency * 1e3:.3f} ms)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Walk through the paper's running example (Figs. 3, 5 and 6).

Builds a six-convolution inception-style snippet, then shows every stage
of the framework on it: the operation latency table (Fig. 7(c)), feature
liveness and the interference graph (Fig. 5(a)), the coloured virtual
buffers (Fig. 5(b)), the weight prefetching edges (Fig. 6), the DNNK
allocation, and the resulting memory footprint over time (Fig. 3(c)).

Run:  python examples/inception_snippet.py
"""

from repro.hw.precision import INT8
from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.lcmm import (
    LCMMOptions,
    operation_latency_table,
    run_lcmm,
    run_umm,
    schedule_positions,
)
from repro.models.common import conv
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig, SystolicArray
from repro.perf.tiling import TileConfig


def build_snippet() -> ComputationGraph:
    """Six convolutions with an inception-style join, as in Fig. 3(a)."""
    g = ComputationGraph(name="inception_c1_snippet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(256, 17, 17)))
    c1 = conv(g, "C1", "data", 384, 1)
    c2 = conv(g, "C2", c1, 256, (1, 3), padding=(0, 1))
    c3 = conv(g, "C3", c1, 256, (3, 1), padding=(1, 0))
    g.add(Concat(name="join", inputs=(c2, c3)))
    c4 = conv(g, "C4", "join", 448, 1)
    c5 = conv(g, "C5", c4, 512, 3)
    c6 = conv(g, "C6", c5, 256, 1)
    g.validate()
    return g


def main() -> None:
    graph = build_snippet()
    accel = AcceleratorConfig(
        name="snippet-demo",
        precision=INT8,
        array=SystolicArray(rows=32, cols=16, simd=11),
        tile=TileConfig(tm=32, tn=32, th=14, tw=14),
        frequency=190e6,
        ddr_efficiency=0.3,  # starve DDR so the snippet is memory bound
    )
    model = LatencyModel(graph, accel)

    print("== Operation latency table (Fig. 7(c)) ==")
    for row in operation_latency_table(model).values():
        print(f"  {row.node:4s} latc={row.lat_compute * 1e6:7.1f}us "
              f"if={row.lat_ifmap * 1e6:7.1f} wt={row.lat_weight * 1e6:7.1f} "
              f"of={row.lat_ofmap * 1e6:7.1f}  -> bound by {row.bottleneck}")

    lcmm = run_lcmm(graph, accel, options=LCMMOptions(), model=model)

    print("\n== Feature liveness and interference (Fig. 5(a)) ==")
    positions = schedule_positions(graph)
    for cand in lcmm.feature_result.candidates:
        neighbours = sorted(lcmm.feature_result.interference.neighbors(cand.name))
        print(f"  {cand.name:6s} live {cand.live_range}  "
              f"size {cand.size_bytes / 1024:6.1f} KB  interferes: {neighbours}")

    print("\n== Virtual feature buffers after colouring (Fig. 5(b)) ==")
    for buf in lcmm.feature_result.buffers:
        print(f"  {buf.name}: {buf.tensor_names}  "
              f"(size = largest member = {buf.size_bytes / 1024:.1f} KB)")

    print("\n== Weight prefetching edges (Fig. 6) ==")
    if not lcmm.prefetch_result.edges:
        print("  (no memory-bound weighted nodes at this bandwidth)")
    for edge in lcmm.prefetch_result.edges.values():
        state = "hidden" if edge.fully_hidden else f"residual {edge.residual * 1e6:.1f}us"
        print(f"  prefetch w:{edge.node} starting at {edge.start} "
              f"(load {edge.load_time * 1e6:.1f}us, {state})")

    print("\n== DNNK allocation ==")
    print(f"  on-chip: {sorted(lcmm.onchip_tensors)}")
    spilled = [b.name for b in lcmm.dnnk_result.spilled]
    print(f"  spilled buffers: {spilled or 'none'}")

    print("\n== Memory footprint over time (Fig. 3(c)) ==")
    schedule = model.nodes()
    tensors = {c.name: c for c in lcmm.feature_result.candidates}
    for step, node in enumerate(schedule):
        live_onchip = [
            name
            for name, c in tensors.items()
            if name in lcmm.onchip_tensors
            and c.live_range.start <= step <= c.live_range.end
        ]
        print(f"  t={step} {node:4s} on-chip: {sorted(live_onchip)}")

    umm = run_umm(graph, accel, model)
    print(f"\nUMM {umm.latency * 1e6:.1f}us -> LCMM {lcmm.latency * 1e6:.1f}us "
          f"({umm.latency / lcmm.latency:.2f}x)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Roofline characterisation of Inception-v4 (Fig. 2(a) of the paper).

Classifies every conv layer of Inception-v4 as compute or memory bound
under the 8-bit uniform-memory-management design, prints the counts the
paper reports (82/141 memory bound) and renders an ASCII roofline
scatter.

Run:  python examples/roofline_analysis.py
"""

import math

from repro.analysis.experiments import run_fig2a


def ascii_scatter(points, ridge, width: int = 72, height: int = 18) -> str:
    """Render (log OI, attainable fraction) as an ASCII scatter plot."""
    ois = [p.operation_intensity for p in points]
    lo, hi = math.log10(min(ois)), math.log10(max(ois))
    grid = [[" "] * width for _ in range(height)]
    peak = max(p.attainable_ops for p in points)
    for p in points:
        x = int((math.log10(p.operation_intensity) - lo) / (hi - lo) * (width - 1))
        y = int((1.0 - p.attainable_ops / peak) * (height - 1))
        grid[y][x] = "m" if p.memory_bound else "c"
    ridge_x = int((math.log10(ridge) - lo) / (hi - lo) * (width - 1))
    if 0 <= ridge_x < width:
        for y in range(height):
            if grid[y][ridge_x] == " ":
                grid[y][ridge_x] = "|"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    roofline = run_fig2a()
    points = roofline.points(convs_only=True)
    bound, total = roofline.memory_bound_count(convs_only=True)

    print("Inception-v4 roofline on the VU9P 8-bit UMM design")
    print(f"  compute roof:        {roofline.compute_roof / 1e12:.2f} Tops")
    print(f"  interface bandwidth: {roofline.interface_bandwidth / 1e9:.1f} GB/s")
    print(f"  ridge point:         {roofline.ridge_point():.0f} ops/byte")
    print(f"  memory bound:        {bound}/{total} layers ({bound / total:.0%}; "
          "paper: 82/141 = 58%)")

    print("\nAttainable performance vs operation intensity "
          "(m = memory bound, c = compute bound, | = ridge):\n")
    print(ascii_scatter(points, roofline.ridge_point()))

    print("\nTen most bandwidth-hungry layers:")
    hungry = sorted(points, key=lambda p: -p.bandwidth_requirement)[:10]
    for p in hungry:
        print(f"  {p.node:34s} needs {p.bandwidth_requirement / 1e9:7.1f} GB/s "
              f"(OI {p.operation_intensity:6.1f} ops/B)")


if __name__ == "__main__":
    main()

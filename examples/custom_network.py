#!/usr/bin/env python
"""Bring your own network: define a DNN, explore designs, simulate it.

Shows the full downstream-user workflow on a custom model that is not in
the zoo: describe the graph with the IR, let the mini-DSE pick tile sizes
under a buffer budget, run LCMM, and confirm the allocation with the
event-driven simulator (timeline excerpt included).

Run:  python examples/custom_network.py
"""

from repro.hw.precision import INT16
from repro.ir.graph import ComputationGraph
from repro.ir.layer import EltwiseAdd, FullyConnected, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.lcmm import run_lcmm, run_umm, validate_result
from repro.models.common import conv, global_avg_pool, max_pool
from repro.perf.dse import best_design
from repro.perf.latency import LatencyModel
from repro.perf.systolic import default_accelerator
from repro.sim import simulate


def build_tinynet() -> ComputationGraph:
    """A small residual network for 64x64 inputs."""
    g = ComputationGraph(name="tinynet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, 64, 64)))
    x = conv(g, "stem", "data", 64, 3, stride=2)
    x = max_pool(g, "pool", x, kernel=3, stride=2, padding=1)
    for i in range(1, 4):
        g.begin_block(f"block{i}")
        y = conv(g, f"b{i}_conv1", x, 64, 3)
        y = conv(g, f"b{i}_conv2", y, 64, 3)
        out = f"b{i}_add"
        g.add(EltwiseAdd(name=out, inputs=(y, x)))
        x = out
        g.end_block()
    x = global_avg_pool(g, "gap", x)
    g.add(FullyConnected(name="classifier", inputs=(x,), out_features=10))
    g.validate()
    return g


def main() -> None:
    graph = build_tinynet()
    print(f"{graph.name}: {len(graph)} layers, "
          f"{graph.total_macs() / 1e6:.1f} MMACs/inference")

    # Design-space exploration: pick the best tile shape under a 256 KB
    # tile-buffer budget, starting from the default 16-bit design.
    base = default_accelerator(INT16, frequency=200e6, ddr_efficiency=0.5)
    accel = best_design(graph, base, tile_buffer_budget=256 * 1024)
    print(f"DSE picked tiles {accel.tile} "
          f"({accel.tile_buffer_bytes() / 1024:.0f} KB of tile buffers)")

    model = LatencyModel(graph, accel)
    umm = run_umm(graph, accel, model)
    lcmm = run_lcmm(graph, accel, model=model)
    validate_result(lcmm, model, umm)
    print(f"UMM  {umm.latency * 1e6:8.1f} us")
    print(f"LCMM {lcmm.latency * 1e6:8.1f} us  "
          f"({umm.latency / lcmm.latency:.2f}x, "
          f"{len(lcmm.onchip_tensors)} tensors on chip)")

    # Confirm with the event-driven simulator and show the timeline head.
    sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
    print(f"Simulated makespan: {sim.total_latency * 1e6:.1f} us "
          f"(analytical {lcmm.latency * 1e6:.1f} us, "
          f"stalls {sim.stall_time * 1e6:.1f} us)")
    print("Weight-interface utilisation: "
          f"{sim.channel_utilization('wt'):.0%}")
    print("\nFirst timeline events:")
    for event in sim.events[:12]:
        print(f"  {event}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: evaluate LCMM against the UMM baseline on ResNet-152.

Builds the 8-bit reference design pair from the paper's evaluation,
runs uniform memory management and the full LCMM pipeline, and prints
the headline comparison (Tab. 1's ResNet-152 rows).

Run:  python examples/quickstart.py
"""

from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8
from repro.lcmm import run_lcmm, run_umm
from repro.models import get_model
from repro.perf.latency import LatencyModel


def main() -> None:
    graph = get_model("resnet152")
    print(f"Model: {graph.name} — {len(graph)} layers, "
          f"{graph.total_macs() / 1e9:.2f} GMACs/inference")

    # The two design points: same accelerator family, UMM clocks slightly
    # higher because LCMM's extra buffering closes timing lower (Tab. 1).
    accel_umm = reference_design("resnet152", INT8, "umm")
    accel_lcmm = reference_design("resnet152", INT8, "lcmm")

    umm = run_umm(graph, accel_umm)
    print(f"\nUMM  baseline: {umm.latency * 1e3:8.3f} ms   {umm.tops:.3f} Tops")

    lcmm_model = LatencyModel(graph, accel_lcmm)
    lcmm = run_lcmm(graph, accel_lcmm, model=lcmm_model)
    print(f"LCMM design:   {lcmm.latency * 1e3:8.3f} ms   {lcmm.tops:.3f} Tops")
    print(f"Speedup:       {umm.latency / lcmm.latency:.2f}x   (paper: 1.42x)")

    print(f"\nOn-chip tensors:   {len(lcmm.onchip_tensors)}")
    print(f"Physical buffers:  {len(lcmm.physical_buffers)}")
    print(f"SRAM utilisation:  {lcmm.sram_utilization:.0%} "
          f"(URAM {lcmm.sram_usage.uram_utilization:.0%}, "
          f"BRAM {lcmm.sram_usage.bram_utilization:.0%})")
    print(f"POL:               {lcmm.percentage_onchip_layers(lcmm_model):.0%} "
          "of memory-bound layers benefit")

    print("\nLargest physical buffers:")
    for pbuf in sorted(lcmm.physical_buffers, key=lambda b: -b.size_bytes)[:5]:
        tensors = pbuf.tensor_names
        preview = ", ".join(tensors[:3]) + (", ..." if len(tensors) > 3 else "")
        print(f"  {pbuf.name:7s} {pbuf.size_bytes / 2**20:6.2f} MB  "
              f"{len(tensors):3d} tensors  [{preview}]")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Explore the per-block allocation design space (Fig. 2(b)).

Enumerates a sample of the 2^14 on/off-chip choices for Inception-v4's
fourteen inception blocks, prints the Pareto frontier of (memory,
performance), and contrasts the frontier with what DNNK picks — showing
why a knapsack allocator beats manual block selection.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.design_space import DesignSpaceEnumerator
from repro.analysis.experiments import reference_design
from repro.hw.precision import INT8
from repro.lcmm import run_lcmm
from repro.models import get_model
from repro.perf.latency import LatencyModel


def main() -> None:
    graph = get_model("inception_v4")
    accel = reference_design("inception_v4", INT8, "lcmm")
    enumerator = DesignSpaceEnumerator(graph, accel)
    print(f"Choice blocks ({len(enumerator.blocks)}): "
          f"{', '.join(b.replace('inception_', '') for b in enumerator.blocks)}")

    points = enumerator.enumerate(stride=8)  # 2048 of the 16384 points
    print(f"Evaluated {len(points)} allocation points")

    points.sort(key=lambda p: p.onchip_bytes)
    print("\nPareto frontier (memory -> best performance at that budget):")
    best = 0.0
    for p in points:
        if p.tops > best:
            best = p.tops
            chosen = ",".join(b.replace("inception_", "") for b in p.chosen_blocks)
            print(f"  {p.onchip_bytes / 2**20:6.1f} MB  {p.tops:.3f} Tops  [{chosen or '-'}]")

    # DNNK operates at tensor granularity, not block granularity, so it
    # reaches performance levels whole-block selection cannot.
    model = LatencyModel(graph, accel)
    lcmm = run_lcmm(graph, accel, model=model)
    print(f"\nDNNK (tensor-granular): {lcmm.tops:.3f} Tops using "
          f"{lcmm.sram_usage.used_bytes / 2**20:.1f} MB on-chip")
    frontier_at_budget = max(
        (p.tops for p in points if p.onchip_bytes <= lcmm.sram_usage.used_bytes),
        default=0.0,
    )
    print(f"Best whole-block point within that memory: {frontier_at_budget:.3f} Tops")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""GoogLeNet per-block breakdown (Fig. 8 of the paper).

Reproduces the 16-bit per-inception-block analysis: feature buffer reuse
lifts the early blocks, weight prefetching fixes the late blocks, and
their integration improves the whole network.  Rendered as ASCII bars.

Run:  python examples/googlenet_breakdown.py
"""

from repro.analysis.experiments import run_fig8


def bars(value: float, peak: float, width: int = 40) -> str:
    filled = int(round(value / peak * width))
    return "#" * filled


def main() -> None:
    series = run_fig8()
    blocks = series[0].blocks
    peak = max(max(s.tops) for s in series)

    for s in series:
        print(f"\n{s.label}")
        for block, tops in zip(blocks, s.tops):
            label = block.replace("inception_", "")
            print(f"  {label:3s} {tops:5.2f} Tops |{bars(tops, peak)}")

    umm = {b: v for b, v in zip(blocks, series[0].tops)}
    full = {b: v for b, v in zip(blocks, series[-1].tops)}
    print("\nPer-block improvement of full LCMM over UMM:")
    for b in blocks:
        print(f"  {b.replace('inception_', ''):3s} {full[b] / umm[b]:.2f}x")


if __name__ == "__main__":
    main()

"""Tests for repro.perf.roofline."""

import pytest

from repro.perf.roofline import RooflineModel

from tests.conftest import build_chain, build_snippet, small_accel


@pytest.fixture
def roofline():
    return RooflineModel(build_snippet(), small_accel())


class TestRoofs:
    def test_compute_roof_is_peak(self, roofline):
        assert roofline.compute_roof == roofline.accel.peak_ops

    def test_ridge_point(self, roofline):
        ridge = roofline.ridge_point()
        assert roofline.attainable(ridge) == pytest.approx(roofline.compute_roof)

    def test_attainable_below_ridge_is_bandwidth_limited(self, roofline):
        oi = roofline.ridge_point() / 2
        assert roofline.attainable(oi) == pytest.approx(
            oi * roofline.interface_bandwidth
        )

    def test_attainable_above_ridge_is_compute_limited(self, roofline):
        assert roofline.attainable(roofline.ridge_point() * 10) == pytest.approx(
            roofline.compute_roof
        )

    def test_attainable_rejects_negative(self, roofline):
        with pytest.raises(ValueError):
            roofline.attainable(-1.0)


class TestPoints:
    def test_every_executed_layer_has_a_point(self, roofline):
        points = roofline.points()
        assert len(points) == len(roofline.model.nodes())

    def test_convs_only_filter(self, roofline):
        points = roofline.points(convs_only=True)
        assert {p.node for p in points} == set(roofline.graph.conv_layers())

    def test_operation_intensity_positive(self, roofline):
        for p in roofline.points():
            assert p.operation_intensity > 0

    def test_achieved_never_exceeds_attainable(self, roofline):
        for p in roofline.points(convs_only=True):
            # Attainable uses the single-interface roof; achieved can use
            # all three interfaces, so allow a 3x margin.
            assert p.achieved_ops <= 3 * p.attainable_ops + 1e-6

    def test_memory_bound_flag_matches_model(self, roofline):
        for p in roofline.points():
            assert p.memory_bound == roofline.model.layer(p.node).is_memory_bound


class TestCounts:
    def test_count_consistency(self, roofline):
        bound, total = roofline.memory_bound_count()
        assert 0 <= bound <= total
        assert roofline.memory_bound_fraction() == pytest.approx(bound / total)

    def test_bandwidth_starved_chain_is_memory_bound(self):
        # 1x1 convs on tiny compute with crippled DDR: all memory bound.
        model = RooflineModel(
            build_chain(num_convs=3, channels=256, hw=7),
            small_accel(ddr_efficiency=0.01),
        )
        bound, total = model.memory_bound_count(convs_only=True)
        assert bound == total

"""Tests for repro.sim — the event-driven simulator."""

import pytest

from repro.lcmm.framework import run_lcmm
from repro.lcmm.prefetch import weight_prefetch_pass
from repro.perf.latency import LatencyModel
from repro.sim import EventKind, simulate

from tests.conftest import build_chain, build_snippet, small_accel


@pytest.fixture
def starved():
    graph = build_chain(num_convs=6, channels=128, hw=14)
    accel = small_accel(ddr_efficiency=0.1)
    return graph, accel, LatencyModel(graph, accel)


class TestUMMSimulation:
    def test_matches_analytical_model_exactly(self, starved):
        _, _, model = starved
        result = simulate(model)
        # Without prefetch traffic, demand streams never contend: the
        # simulated makespan equals the Eq. 1 sum.
        assert result.total_latency == pytest.approx(model.umm_latency())

    def test_node_latencies_match(self, starved):
        _, _, model = starved
        result = simulate(model)
        for name in model.nodes():
            assert result.node_latency(name) == pytest.approx(
                model.node_latency(name)
            )

    def test_nodes_execute_in_schedule_order(self, starved):
        _, _, model = starved
        result = simulate(model)
        schedule = model.nodes()
        for earlier, later in zip(schedule, schedule[1:]):
            assert result.node_end[earlier] <= result.node_start[later] + 1e-15

    def test_channel_busy_under_makespan(self, starved):
        _, _, model = starved
        result = simulate(model)
        for kind in ("if", "wt", "of"):
            assert 0.0 <= result.channel_utilization(kind) <= 1.0 + 1e-9

    def test_no_stalls_without_prefetch(self, starved):
        _, _, model = starved
        assert simulate(model).stall_time == 0.0


class TestLCMMSimulation:
    def test_simulated_allocation_close_to_analytical(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
        # Contention can make the simulation slower than the analytical
        # estimate, but never faster (beyond float noise), and the two
        # should agree within 25%.
        assert sim.total_latency >= lcmm.latency * 0.99
        assert sim.total_latency <= lcmm.latency * 1.25

    def test_simulated_lcmm_beats_simulated_umm(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim_umm = simulate(model)
        sim_lcmm = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
        assert sim_lcmm.total_latency < sim_umm.total_latency

    def test_prefetch_events_present(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
        onchip_weights = {n for n in lcmm.onchip_tensors if n.startswith("w:")}
        starts = [e for e in sim.events if e.kind is EventKind.PREFETCH_START]
        assert len(starts) == len(onchip_weights)

    def test_no_node_starts_before_its_prefetch_ends(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
        ends = {
            e.node: e.time for e in sim.events if e.kind is EventKind.PREFETCH_END
        }
        for node, ready in ends.items():
            assert sim.node_start[node] >= ready - 1e-12

    def test_record_events_off(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim = simulate(
            model, lcmm.onchip_tensors, lcmm.prefetch_result, record_events=False
        )
        assert sim.events == []
        assert sim.total_latency > 0

    def test_events_time_ordered(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        sim = simulate(model, lcmm.onchip_tensors, lcmm.prefetch_result)
        times = [e.time for e in sim.events]
        assert times == sorted(times)

    def test_event_str_renders(self, starved):
        _, _, model = starved
        sim = simulate(model)
        assert "node_start" in str(sim.events[0]) or "transfer" in str(sim.events[0])


class TestOnchipFeatureSimulation:
    def test_onchip_features_remove_transfers(self):
        from repro.lcmm.feature_reuse import feature_candidates

        graph = build_snippet()
        accel = small_accel(ddr_efficiency=0.05)
        model = LatencyModel(graph, accel)
        candidates = feature_candidates(graph, model)
        assert candidates, "snippet should have beneficial feature tensors"
        best = max(candidates, key=lambda c: c.latency_reduction)
        baseline = simulate(model).total_latency
        pinned = simulate(model, frozenset({best.name})).total_latency
        assert pinned < baseline

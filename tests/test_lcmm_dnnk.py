"""Tests for repro.lcmm.dnnk — the knapsack allocator.

The key guarantee: on instances small enough to brute-force, DNNK's
allocation is close to the exhaustive optimum (the pivot-compensated DP is
a heuristic, so we allow a small tolerance, but on independent-buffer
instances it must be exactly optimal).
"""

import math

import pytest

from repro.hw.sram import URAM_BYTES
from repro.lcmm.coloring import color_buffers
from repro.lcmm.dnnk import dnnk_allocate, exhaustive_allocate, greedy_allocate
from repro.lcmm.feature_reuse import feature_reuse_pass
from repro.lcmm.interference import InterferenceGraph
from repro.lcmm.prefetch import weight_prefetch_pass
from repro.lcmm.splitting import combine_buffers
from repro.perf.engine import AllocationEngine
from repro.perf.latency import LatencyModel

from tests.conftest import build_chain, build_snippet, small_accel


def make_buffers(model):
    feature = feature_reuse_pass(model.graph, model)
    prefetch = weight_prefetch_pass(model.graph, model)
    return combine_buffers([feature.buffers, prefetch.buffers])


@pytest.fixture
def starved_model():
    return LatencyModel(
        build_chain(num_convs=6, channels=128, hw=14),
        small_accel(ddr_efficiency=0.05),
    )


@pytest.fixture
def snippet_starved():
    return LatencyModel(build_snippet(), small_accel(ddr_efficiency=0.05))


class TestBasicBehaviour:
    def test_zero_capacity_allocates_nothing(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 0)
        assert result.allocated == []
        assert result.onchip_tensors == frozenset()
        assert result.used_bytes == 0

    def test_huge_capacity_allocates_everything_useful(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 10**9)
        # Every buffer with a positive context-free exact gain is taken
        # (second-tier buffers whose gain only materialises behind a
        # partner may legitimately stay off even with room to spare).
        baseline = starved_model.umm_latency()
        for buf in buffers:
            standalone = baseline - starved_model.total_latency(
                frozenset(buf.tensor_names)
            )
            if standalone > 1e-12:
                assert buf in result.allocated
        # And the result must realise at least the gain of pinning
        # absolutely everything minus pair effects.
        everything = frozenset(n for b in buffers for n in b.tensor_names)
        assert starved_model.total_latency(result.onchip_tensors) <= (
            starved_model.total_latency(everything) * 1.05 + 1e-12
        )

    def test_capacity_respected(self, starved_model):
        buffers = make_buffers(starved_model)
        capacity = 2 * URAM_BYTES
        result = dnnk_allocate(buffers, starved_model, capacity)
        assert result.used_bytes <= capacity

    def test_onchip_set_matches_allocated_buffers(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 4 * URAM_BYTES)
        expected = frozenset(
            name for b in result.allocated for name in b.tensor_names
        )
        assert result.onchip_tensors == expected

    def test_allocated_and_spilled_partition(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 4 * URAM_BYTES)
        assert len(result.allocated) + len(result.spilled) == len(buffers)

    def test_allocation_reduces_exact_latency(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 10 * URAM_BYTES)
        if result.allocated:
            assert starved_model.total_latency(result.onchip_tensors) < (
                starved_model.umm_latency()
            )

    def test_invalid_arguments(self, starved_model):
        with pytest.raises(ValueError):
            dnnk_allocate([], starved_model, -1)
        with pytest.raises(ValueError):
            dnnk_allocate([], starved_model, 100, granularity=0)

    def test_empty_buffer_list(self, starved_model):
        result = dnnk_allocate([], starved_model, 10 * URAM_BYTES)
        assert result.allocated == []
        assert result.predicted_reduction == 0.0


class TestVersusExhaustive:
    @pytest.mark.parametrize("capacity_blocks", [1, 2, 4, 8])
    def test_near_optimal_on_snippet(self, snippet_starved, capacity_blocks):
        buffers = make_buffers(snippet_starved)
        assert len(buffers) <= 20
        capacity = capacity_blocks * URAM_BYTES
        # Fine granularity so quantisation does not mask the comparison.
        dp = dnnk_allocate(buffers, snippet_starved, capacity, granularity=1024)
        opt = exhaustive_allocate(buffers, snippet_starved, capacity)
        dp_latency = snippet_starved.total_latency(dp.onchip_tensors)
        opt_latency = snippet_starved.total_latency(opt.onchip_tensors)
        baseline = snippet_starved.umm_latency()
        dp_gain = baseline - dp_latency
        opt_gain = baseline - opt_latency
        assert dp_gain >= 0.9 * opt_gain - 1e-12

    def test_exhaustive_guard(self, starved_model):
        buffers = make_buffers(starved_model)
        with pytest.raises(ValueError):
            exhaustive_allocate(buffers, starved_model, 10**9, max_buffers=1)


class TestGreedyBaseline:
    def test_greedy_capacity_respected(self, starved_model):
        buffers = make_buffers(starved_model)
        result = greedy_allocate(buffers, starved_model, 3 * URAM_BYTES)
        assert sum(b.size_bytes for b in result.allocated) <= 3 * URAM_BYTES

    def test_dnnk_never_worse_than_greedy_on_snippet(self, snippet_starved):
        buffers = make_buffers(snippet_starved)
        capacity = 4 * URAM_BYTES
        dp = dnnk_allocate(buffers, snippet_starved, capacity, granularity=1024)
        gd = greedy_allocate(buffers, snippet_starved, capacity)
        dp_latency = snippet_starved.total_latency(dp.onchip_tensors)
        gd_latency = snippet_starved.total_latency(gd.onchip_tensors)
        assert dp_latency <= gd_latency * 1.05 + 1e-12


class TestAccounting:
    """used_bytes and predicted_reduction are exact, allocator-independent."""

    @pytest.mark.parametrize("granularity", [1024, URAM_BYTES])
    def test_used_bytes_is_block_rounded(self, starved_model, granularity):
        buffers = make_buffers(starved_model)
        capacity = 6 * URAM_BYTES
        for allocate in (dnnk_allocate, greedy_allocate):
            result = allocate(
                buffers, starved_model, capacity, granularity=granularity
            )
            expected = sum(
                math.ceil(b.size_bytes / granularity) * granularity
                for b in result.allocated
            )
            assert result.used_bytes == expected

    def test_predicted_reduction_matches_exact_rescore(self, starved_model):
        buffers = make_buffers(starved_model)
        result = dnnk_allocate(buffers, starved_model, 6 * URAM_BYTES)
        expected = starved_model.umm_latency() - starved_model.total_latency(
            result.onchip_tensors
        )
        assert result.predicted_reduction == expected

    def test_greedy_predicted_reduction_matches_exact_rescore(self, starved_model):
        buffers = make_buffers(starved_model)
        result = greedy_allocate(buffers, starved_model, 6 * URAM_BYTES)
        expected = starved_model.umm_latency() - starved_model.total_latency(
            result.onchip_tensors
        )
        assert result.predicted_reduction == expected


class TestEngineParity:
    """Each allocator decides identically with and without the engine."""

    @pytest.mark.parametrize("capacity_blocks", [0, 2, 6])
    def test_dnnk_engine_identical(self, starved_model, capacity_blocks):
        buffers = make_buffers(starved_model)
        capacity = capacity_blocks * URAM_BYTES
        naive = dnnk_allocate(buffers, starved_model, capacity)
        fast = dnnk_allocate(
            buffers, starved_model, capacity, engine=AllocationEngine(starved_model)
        )
        assert fast.onchip_tensors == naive.onchip_tensors
        assert fast.used_bytes == naive.used_bytes
        assert fast.predicted_reduction == naive.predicted_reduction

    def test_greedy_engine_identical(self, starved_model):
        buffers = make_buffers(starved_model)
        capacity = 4 * URAM_BYTES
        naive = greedy_allocate(buffers, starved_model, capacity)
        fast = greedy_allocate(
            buffers, starved_model, capacity, engine=AllocationEngine(starved_model)
        )
        assert fast.onchip_tensors == naive.onchip_tensors
        assert fast.used_bytes == naive.used_bytes
        assert fast.predicted_reduction == naive.predicted_reduction

    @pytest.mark.parametrize("capacity_blocks", [1, 4])
    def test_exhaustive_engine_identical(self, snippet_starved, capacity_blocks):
        buffers = make_buffers(snippet_starved)
        capacity = capacity_blocks * URAM_BYTES
        naive = exhaustive_allocate(buffers, snippet_starved, capacity)
        fast = exhaustive_allocate(
            buffers,
            snippet_starved,
            capacity,
            engine=AllocationEngine(snippet_starved),
        )
        assert fast.onchip_tensors == naive.onchip_tensors
        assert fast.predicted_reduction == naive.predicted_reduction
        assert fast.used_bytes == naive.used_bytes

    def test_dnnk_engine_near_exhaustive(self, snippet_starved):
        # The engine-backed DP must stay comparable to the oracle, like
        # the naive DP does.
        buffers = make_buffers(snippet_starved)
        capacity = 4 * URAM_BYTES
        engine = AllocationEngine(snippet_starved)
        dp = dnnk_allocate(
            buffers, snippet_starved, capacity, granularity=1024, engine=engine
        )
        opt = exhaustive_allocate(buffers, snippet_starved, capacity)
        baseline = snippet_starved.umm_latency()
        dp_gain = baseline - snippet_starved.total_latency(dp.onchip_tensors)
        opt_gain = baseline - snippet_starved.total_latency(opt.onchip_tensors)
        assert dp_gain >= 0.9 * opt_gain - 1e-12


class TestGranularity:
    def test_coarse_granularity_rounds_sizes_up(self, starved_model):
        buffers = make_buffers(starved_model)
        capacity = 3 * URAM_BYTES
        coarse = dnnk_allocate(buffers, starved_model, capacity, granularity=URAM_BYTES)
        fine = dnnk_allocate(buffers, starved_model, capacity, granularity=1024)
        # Finer granularity can only fit more (or equal) value in.
        coarse_latency = starved_model.total_latency(coarse.onchip_tensors)
        fine_latency = starved_model.total_latency(fine.onchip_tensors)
        assert fine_latency <= coarse_latency + 1e-12

"""Tests for repro.analysis.report and repro.analysis.metrics."""

import pytest

from repro.analysis.metrics import average_speedup, block_throughput, geomean
from repro.analysis.report import format_markdown_table, format_table
from repro.models import get_model


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        # All rows are padded to equal width per column.
        assert len(set(len(l.rstrip()) for l in lines[2:])) <= 2

    def test_floats_rendered_three_decimals(self):
        out = format_table(("x",), [(1.23456,)])
        assert "1.235" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])


class TestMarkdownTable:
    def test_structure(self):
        out = format_markdown_table(("a", "b"), [(1, 2)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(("a",), [(1, 2)])


class TestMetrics:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_average_speedup_is_arithmetic_mean(self):
        assert average_speedup([1.0, 2.0]) == pytest.approx(1.5)

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_speedup([])

    def test_block_throughput(self):
        g = get_model("googlenet")
        latencies = {name: 1e-6 for name in g.compute_schedule()}
        tput = block_throughput(g, latencies, "inception_3a")
        assert tput > 0

    def test_block_throughput_unknown_block(self):
        g = get_model("googlenet")
        with pytest.raises(KeyError):
            block_throughput(g, {}, "inception_9z")

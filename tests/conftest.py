"""Shared fixtures and graph builders for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.precision import INT8, INT16
from repro.ir.graph import ComputationGraph
from repro.ir.layer import Concat, Conv2D, EltwiseAdd, InputLayer, Pooling
from repro.ir.tensor import FeatureMapShape
from repro.models.common import avg_pool, conv, max_pool
from repro.perf.latency import LatencyModel
from repro.perf.systolic import AcceleratorConfig, SystolicArray, default_accelerator
from repro.perf.tiling import TileConfig


def build_chain(num_convs: int = 4, channels: int = 64, hw: int = 28) -> ComputationGraph:
    """A linear conv chain: data -> c1 -> c2 -> ... (AlexNet-like)."""
    g = ComputationGraph(name=f"chain{num_convs}")
    g.add(InputLayer(name="data", shape=FeatureMapShape(3, hw, hw)))
    src = "data"
    for i in range(1, num_convs + 1):
        src = conv(g, f"c{i}", src, channels, 3)
    g.validate()
    return g


def build_snippet() -> ComputationGraph:
    """A six-conv inception-style snippet mirroring Fig. 3(a) of the paper.

    Two parallel branches joined by a concat, then two more convolutions —
    enough non-linearity to exercise liveness, interference and sharing.
    """
    g = ComputationGraph(name="snippet")
    g.add(InputLayer(name="data", shape=FeatureMapShape(64, 17, 17)))
    c1 = conv(g, "C1", "data", 96, 1)
    c2 = conv(g, "C2", c1, 96, 3)
    c3 = conv(g, "C3", c1, 128, 3)
    g.add(Concat(name="cat", inputs=(c2, c3)))
    c4 = conv(g, "C4", "cat", 192, 1)
    c5 = conv(g, "C5", c4, 192, 3)
    c6 = conv(g, "C6", c5, 64, 1)
    g.validate()
    return g


def build_residual_block() -> ComputationGraph:
    """A single bottleneck residual block with projection shortcut."""
    g = ComputationGraph(name="residual")
    g.add(InputLayer(name="data", shape=FeatureMapShape(64, 28, 28)))
    x = conv(g, "conv1", "data", 32, 1)
    x = conv(g, "conv2", x, 32, 3)
    x = conv(g, "conv3", x, 128, 1)
    p = conv(g, "proj", "data", 128, 1)
    g.add(EltwiseAdd(name="add", inputs=(x, p)))
    g.validate()
    return g


def small_accel(
    precision=INT8,
    frequency: float = 200e6,
    ddr_efficiency: float = 1.0,
    if_resident_cap: int = 0,
    wt_resident_cap: int = 0,
) -> AcceleratorConfig:
    """A compact design point for unit tests (fast, easy mental math)."""
    return AcceleratorConfig(
        name="test",
        precision=precision,
        array=SystolicArray(rows=16, cols=8, simd=8),
        tile=TileConfig(tm=16, tn=16, th=14, tw=14),
        frequency=frequency,
        ddr_efficiency=ddr_efficiency,
        if_resident_cap=if_resident_cap,
        wt_resident_cap=wt_resident_cap,
    )


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/*.json result fingerprints",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def chain_graph() -> ComputationGraph:
    return build_chain()


@pytest.fixture
def snippet_graph() -> ComputationGraph:
    return build_snippet()


@pytest.fixture
def residual_graph() -> ComputationGraph:
    return build_residual_block()


@pytest.fixture
def accel() -> AcceleratorConfig:
    return small_accel()


@pytest.fixture
def snippet_model(snippet_graph, accel) -> LatencyModel:
    return LatencyModel(snippet_graph, accel)

"""Tests for repro.perf.pool: the persistent DSE worker pool."""

import pytest

from repro.perf import pool as pool_mod
from repro.perf.dse import WorkerStats, explore_designs
from repro.perf.pool import (
    ScorerPool,
    adaptive_chunk_size,
    decode_tiles,
    encode_tiles,
    persistent_pool,
)
from repro.perf.tiling import TileConfig
from repro.robustness.inject import FaultPlan, injected

from tests.conftest import build_chain, small_accel


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Each test starts and ends without a registered persistent pool."""
    pool_mod.close_pool()
    yield
    pool_mod.close_pool()


class TestWireEncoding:
    def test_roundtrip(self):
        tiles = [TileConfig(16, 32, 7, 14), TileConfig(128, 64, 56, 56)]
        assert decode_tiles(encode_tiles(tiles)) == tiles

    def test_empty(self):
        assert decode_tiles(encode_tiles([])) == []

    def test_packing_density(self):
        tiles = [TileConfig(8, 8, 7, 7)] * 100
        encoded = encode_tiles(tiles)
        assert len(encoded) == 100 * pool_mod.TILE_WORDS


class TestAdaptiveChunking:
    def test_cold_pool_falls_back_to_fixed_split(self):
        # No measurement yet: the historical four-rounds-per-worker split.
        assert adaptive_chunk_size(64, 4, None) == 4

    def test_sized_to_target_seconds(self):
        # 1 ms per point, 50 ms target -> 50-point chunks.
        assert adaptive_chunk_size(10_000, 4, 1e-3) == 50

    def test_every_worker_gets_a_chunk(self):
        # Huge per-point cost: chunk of 1, never 0.
        assert adaptive_chunk_size(100, 4, 10.0) == 1
        # Tiny per-point cost: chunks grow until workers would idle.
        assert adaptive_chunk_size(8, 4, 1e-9) == 2

    def test_rounds_per_worker_capped(self):
        size = adaptive_chunk_size(10_000_000, 2, 1e-9)
        rounds = 10_000_000 / (size * 2)
        assert rounds <= pool_mod._MAX_ROUNDS_PER_WORKER

    def test_zero_points(self):
        assert adaptive_chunk_size(0, 4, 1e-3) == 1


class TestScorerPool:
    def test_lazy_until_ensure(self):
        pool = ScorerPool(build_chain(), 2)
        assert not pool.is_warm()
        executor, elapsed = pool.ensure()
        assert pool.is_warm() and elapsed > 0.0
        again, elapsed2 = pool.ensure()
        assert again is executor and elapsed2 == 0.0
        pool.close()

    def test_refresh_bumps_generation_not_identity(self):
        graph = build_chain()
        pool = ScorerPool(graph, 1)
        fp = pool.graph_fp
        pool.ensure()
        pool.refresh()
        assert pool.generation == 1
        assert not pool.is_warm()
        assert pool.graph_fp == fp and not pool.closed
        pool.ensure()  # comes back up with identical initargs
        assert pool.is_warm()
        pool.close()

    def test_close_is_idempotent_and_final(self):
        pool = ScorerPool(build_chain(), 1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.ensure()

    def test_invalid_workers(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ScorerPool(build_chain(), 0)

    def test_observe_feeds_ewma(self):
        pool = ScorerPool(build_chain(), 2)
        assert pool.per_point_seconds is None
        pool.observe(10, 0.01)
        assert pool.per_point_seconds == pytest.approx(1e-3)
        pool.observe(10, 0.03)
        assert pool.per_point_seconds == pytest.approx(2e-3)
        # Degenerate samples are ignored, not divide-by-zeroed.
        pool.observe(0, 0.5)
        pool.observe(10, 0.0)
        assert pool.per_point_seconds == pytest.approx(2e-3)

    def test_describe_reports_lifetime(self):
        pool = ScorerPool(build_chain(), 2)
        d = pool.describe()
        assert d["workers"] == 2 and not d["warm"] and d["generation"] == 0


class TestPersistentRegistry:
    def test_same_identity_reuses_the_pool(self):
        graph = build_chain()
        first = persistent_pool(graph, 2)
        assert persistent_pool(graph, 2) is first

    def test_worker_count_change_replaces_the_pool(self):
        graph = build_chain()
        first = persistent_pool(graph, 2)
        second = persistent_pool(graph, 3)
        assert second is not first and first.closed

    def test_graph_change_replaces_the_pool(self):
        first = persistent_pool(build_chain(num_convs=2), 2)
        second = persistent_pool(build_chain(num_convs=3), 2)
        assert second is not first and first.closed

    def test_armed_fault_plans_change_the_identity(self):
        # A reused pool's workers would not have newly-armed plans
        # installed; arming plans must therefore force a fresh pool.
        graph = build_chain()
        clean = persistent_pool(graph, 2)
        with injected(FaultPlan("dse.chunk", mode="raise", max_fires=0)):
            armed = persistent_pool(graph, 2)
            assert armed is not clean
        after = persistent_pool(graph, 2)
        assert after is not armed

    def test_close_pool_clears_the_registry(self):
        pool = persistent_pool(build_chain(), 2)
        pool_mod.close_pool()
        assert pool.closed and pool_mod.active_pool() is None


class TestPoolReuseAcrossSweeps:
    def test_second_sweep_reuses_warm_pool(self):
        graph = build_chain()
        base = small_accel()
        budget = 10 * 2**20
        cold = WorkerStats()
        first = explore_designs(graph, base, budget, workers=2, stats=cold)
        assert cold.chunks_reused_pool == 0  # nothing was warm yet
        pool = pool_mod.active_pool()
        assert pool is not None and pool.is_warm()
        warm = WorkerStats()
        second = explore_designs(graph, base, budget, workers=2, stats=warm)
        key = lambda points: [(p.accel.tile, p.umm_latency) for p in points]
        assert key(second) == key(first)
        assert warm.chunks_reused_pool == warm.chunks > 0
        assert warm.init_seconds == 0.0
        assert pool_mod.active_pool() is pool

    def test_fresh_mode_leaves_no_persistent_pool(self):
        graph = build_chain()
        base = small_accel()
        serial = explore_designs(graph, base, 10 * 2**20)
        fresh = explore_designs(
            graph, base, 10 * 2**20, workers=2, pool_mode="fresh"
        )
        key = lambda points: [(p.accel.tile, p.umm_latency) for p in points]
        assert key(fresh) == key(serial)
        assert pool_mod.active_pool() is None

    def test_explicit_pool_is_caller_owned(self):
        graph = build_chain()
        base = small_accel()
        pool = ScorerPool(graph, 2)
        try:
            explore_designs(graph, base, 10 * 2**20, workers=2, pool=pool)
            assert pool.is_warm() and not pool.closed
            # The registry never saw it.
            assert pool_mod.active_pool() is None
        finally:
            pool.close()

    def test_invalid_pool_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            explore_designs(
                build_chain(), small_accel(), 10 * 2**20, pool_mode="leaky"
            )

    def test_calibration_scores_count_toward_results(self):
        # A cold pool calibrates on a parent-scored prefix; those scores
        # must appear in the result exactly once.
        graph = build_chain()
        base = small_accel()
        serial = explore_designs(graph, base, 10 * 2**20)
        pooled = explore_designs(graph, base, 10 * 2**20, workers=2)
        key = lambda points: [(p.accel.tile, p.umm_latency) for p in points]
        assert key(pooled) == key(serial)
        pool = pool_mod.active_pool()
        assert pool is not None and pool.per_point_seconds is not None

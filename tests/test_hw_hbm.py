"""Tests for the HBM device (Alveo U280) and its effect on the framework."""

import pytest

from repro.hw.fpga import U280, VU9P, make_u280
from repro.hw.memory import make_vu9p_ddr
from repro.hw.precision import INT16
from repro.lcmm.framework import run_lcmm
from repro.lcmm.validate import validate_result
from repro.models import get_model
from repro.perf.latency import LatencyModel
from repro.perf.roofline import RooflineModel
from repro.perf.systolic import AcceleratorConfig
from repro.analysis.experiments import reference_design


def u280_design(base: AcceleratorConfig) -> AcceleratorConfig:
    """Clone a VU9P reference design onto the U280's memory system."""
    return AcceleratorConfig(
        name=base.name.replace("lcmm", "lcmm-hbm"),
        precision=base.precision,
        array=base.array,
        tile=base.tile,
        frequency=base.frequency,
        device=U280,
        ddr_efficiency=base.ddr_efficiency,
        if_resident_cap=base.if_resident_cap,
        wt_resident_cap=base.wt_resident_cap,
    )


class TestDevice:
    def test_inventory(self):
        assert U280.dsp_slices == 9024
        assert U280.total_ddr_bandwidth == pytest.approx(8 * 57.5e9)
        assert make_u280() is U280

    def test_hbm_bandwidth_dwarfs_ddr4(self):
        assert U280.total_ddr_bandwidth > 5 * VU9P.total_ddr_bandwidth

    def test_three_way_split_generalises(self):
        ddr = make_vu9p_ddr(U280)
        assert ddr.interface("if").bandwidth == pytest.approx(
            U280.total_ddr_bandwidth / 3
        )


class TestHBMEffect:
    @pytest.fixture(scope="class")
    def designs(self):
        base = reference_design("googlenet", INT16, "lcmm")
        return base, u280_design(base)

    def test_fewer_memory_bound_layers(self, designs):
        ddr4, hbm = designs
        graph = get_model("googlenet")
        bound_ddr4, total = RooflineModel(graph, ddr4).memory_bound_count(
            convs_only=True
        )
        bound_hbm, _ = RooflineModel(get_model("googlenet"), hbm).memory_bound_count(
            convs_only=True
        )
        assert bound_hbm < bound_ddr4

    def test_lcmm_gain_shrinks_with_bandwidth(self, designs):
        ddr4, hbm = designs
        speedups = {}
        for label, accel in (("ddr4", ddr4), ("hbm", hbm)):
            graph = get_model("googlenet")
            model = LatencyModel(graph, accel)
            lcmm = run_lcmm(graph, accel, model=model)
            validate_result(lcmm, model)
            speedups[label] = model.umm_latency() / lcmm.latency
        # The paper's gain is a DDR4-bottleneck gain; HBM erodes it.
        assert speedups["hbm"] < speedups["ddr4"]
        assert speedups["hbm"] >= 1.0

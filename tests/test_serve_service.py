"""End-to-end tests of the serving daemon in inline (thread-pool) mode.

These exercise the full front door — admission, quotas, the bounded
queue, single-flight coalescing, deadlines, degradation labeling — over
real HTTP on a loopback socket, with jobs running on in-process threads
so the whole suite stays fast.  Crash-mode chaos (which needs process
isolation) lives in ``test_serve_chaos.py``.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.obs.metrics import registry, reset_registry
from repro.robustness.inject import FaultPlan, disarm_all, injected
from repro.serve import ServerConfig, ServerThread, ServiceConfig


@pytest.fixture(autouse=True)
def _clean_slate():
    disarm_all()
    reset_registry()
    yield
    disarm_all()


def request(server: ServerThread, method: str, path: str, payload=None, timeout=60):
    conn = HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body, {"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        headers = dict(response.getheaders())
    finally:
        conn.close()
    try:
        decoded = json.loads(raw)
    except (ValueError, UnicodeDecodeError):
        decoded = raw
    return response.status, decoded, headers


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(
        ServiceConfig(inline=True, workers=2, cache_dir=str(tmp_path / "cache"))
    ).start()
    yield thread
    thread.stop()


class TestHappyPath:
    def test_cold_then_warm_compile(self, server):
        status, cold, _ = request(
            server, "POST", "/v1/compile", {"model": "alexnet", "config": "dnnk"}
        )
        assert status == 200
        assert cold["cache_hit"] is False
        assert cold["degradation_level"] == 0
        assert cold["latency"] > 0
        assert cold["fingerprint"]
        assert cold["request_id"]

        status, warm, _ = request(
            server, "POST", "/v1/compile", {"model": "alexnet", "config": "dnnk"}
        )
        assert status == 200
        assert warm["cache_hit"] is True
        # Served artifacts are bit-identical to a fresh compile.
        assert warm["fingerprint"] == cold["fingerprint"]
        assert warm["latency"] == cold["latency"]

    def test_umm_config_served(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"}
        )
        assert status == 200
        assert payload["degradation_level"] == 0

    def test_dse_request(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/dse", {"model": "alexnet", "budget_mb": 2.0, "top": 3}
        )
        assert status == 200
        assert payload["feasible_points"] > 0
        assert len(payload["points"]) == 3
        assert payload["points"][0]["umm_latency"] > 0

    def test_healthz_and_readyz(self, server):
        assert request(server, "GET", "/healthz")[0] == 200
        status, payload, _ = request(server, "GET", "/readyz")
        assert status == 200
        assert payload["ready"] is True

    def test_stats_endpoint(self, server):
        request(server, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"})
        status, payload, _ = request(server, "GET", "/v1/stats")
        assert status == 200
        assert payload["server"]["requests"] >= 1
        assert payload["service"]["breaker"]["state"] == "closed"
        assert payload["service"]["pool"]["kind"] == "InlineWorkers"

    def test_metrics_endpoint_is_prometheus_text(self, server):
        request(server, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"})
        status, body, headers = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "# TYPE serve_requests counter" in text
        assert 'serve_requests{route="/v1/compile",status="200"}' in text
        assert "serve_inflight" in text

    def test_request_trace_download(self, server):
        _, payload, _ = request(
            server, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"}
        )
        status, trace, _ = request(
            server, "GET", f"/v1/requests/{payload['request_id']}/trace"
        )
        assert status == 200
        record = trace["trace"]
        assert record["path"] == "/v1/compile"
        assert record["status"] == 200
        names = [event["name"] for event in record["events"]]
        assert names == ["admitted", "slot-acquired", "finished"]

    def test_unknown_trace_404(self, server):
        assert request(server, "GET", "/v1/requests/r999999/trace")[0] == 404


class TestErrorMapping:
    def test_unknown_model_is_400(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/compile", {"model": "nosuchnet"}
        )
        assert status == 400
        assert payload["error"]["type"] == "ModelNotFoundError"
        assert "unknown model" in payload["error"]["message"]

    def test_infeasible_budget_is_422(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/dse", {"model": "alexnet", "budget_mb": 0.00001}
        )
        assert status == 422
        assert payload["error"]["type"] == "CapacityError"

    def test_unknown_config_is_400(self, server):
        status, payload, _ = request(
            server, "POST", "/v1/compile", {"model": "alexnet", "config": "warp9"}
        )
        assert status == 400
        assert payload["error"]["type"] == "ConfigError"

    def test_missing_model_is_400(self, server):
        assert request(server, "POST", "/v1/compile", {"config": "umm"})[0] == 400

    def test_invalid_json_is_400(self, server):
        conn = HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/compile", "{nope", {"Content-Type": "application/json"}
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_route_404_and_method_405(self, server):
        assert request(server, "GET", "/nope")[0] == 404
        assert request(server, "PUT", "/v1/compile", {})[0] == 405

    def test_bad_deadline_is_400(self, server):
        status, _, _ = request(
            server,
            "POST",
            "/v1/compile",
            {"model": "alexnet", "deadline_seconds": -1},
        )
        assert status == 400


class TestDegradationLabeling:
    def test_degraded_result_is_labeled_in_body_and_metrics(self, tmp_path):
        # No cache: a degraded result must never be served silently, and
        # the framework would refuse to cache it anyway.
        thread = ServerThread(ServiceConfig(inline=True, workers=1)).start()
        try:
            with injected(FaultPlan("pass.allocate_splitting", mode="raise")):
                status, payload, _ = request(
                    thread,
                    "POST",
                    "/v1/compile",
                    {"model": "alexnet", "config": "splitting"},
                )
            assert status == 200
            assert payload["degradation_level"] > 0
            assert payload["degradation_path"]  # names the abandoned attempts
            assert (
                registry().counter("serve.degraded_results").value() >= 1
            )
        finally:
            thread.stop()

    def test_strict_pipeline_failure_with_deadline_is_structured(self, tmp_path):
        # A worker-side injected failure at the serve boundary (before
        # the degradation chain can absorb it) surfaces as a structured
        # 500, never a hung request or an unlabeled success.
        thread = ServerThread(ServiceConfig(inline=True, workers=1)).start()
        try:
            with injected(FaultPlan("serve.worker", mode="raise")):
                status, payload, _ = request(
                    thread, "POST", "/v1/compile", {"model": "alexnet"}
                )
            assert status == 500
            assert payload["error"]["type"] == "InjectedFault"
        finally:
            thread.stop()


class TestDeadlines:
    def test_worker_hang_past_deadline_is_504(self):
        thread = ServerThread(ServiceConfig(inline=True, workers=1)).start()
        try:
            with injected(
                FaultPlan("serve.worker", mode="hang", hang_seconds=1.0)
            ):
                start = time.perf_counter()
                status, payload, _ = request(
                    thread,
                    "POST",
                    "/v1/compile",
                    {"model": "alexnet", "deadline_seconds": 0.2},
                )
                elapsed = time.perf_counter() - start
            assert status == 504
            assert payload["error"]["type"] == "DeadlineExceeded"
            assert elapsed < 5.0  # bounded, not wedged
            # The daemon still works afterwards.
            status, _, _ = request(
                thread, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"}
            )
            assert status == 200
        finally:
            thread.stop()

    def test_deadline_clamped_to_max(self):
        thread = ServerThread(
            ServiceConfig(inline=True, workers=1, max_deadline=7.0)
        ).start()
        try:
            status, payload, _ = request(
                thread,
                "POST",
                "/v1/compile",
                {"model": "alexnet", "config": "umm", "deadline_seconds": 9999},
            )
            assert status == 200
            assert payload["deadline_seconds"] == 7.0
        finally:
            thread.stop()


class TestSingleFlight:
    def test_concurrent_identical_requests_coalesce(self):
        thread = ServerThread(ServiceConfig(inline=True, workers=2)).start()
        try:
            # The leader hangs briefly in the worker so the follower
            # reliably arrives while the job is in flight.
            results = []

            def hit():
                results.append(
                    request(
                        thread,
                        "POST",
                        "/v1/compile",
                        {"model": "resnet50", "config": "dnnk"},
                    )
                )

            with injected(
                FaultPlan(
                    "serve.worker", mode="hang", hang_seconds=0.5, max_fires=1
                )
            ):
                workers = [threading.Thread(target=hit) for _ in range(2)]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
            assert all(status == 200 for status, _, _ in results)
            fingerprints = {
                json.dumps(payload["fingerprint"], sort_keys=True)
                for _, payload, _ in results
            }
            assert len(fingerprints) == 1  # one result, shared
            assert any(payload.get("coalesced") for _, payload, _ in results)
            assert registry().counter("serve.coalesced").value() >= 1
        finally:
            thread.stop()


class TestLoadShedding:
    def test_queue_overflow_sheds_429_with_retry_after(self):
        thread = ServerThread(
            ServiceConfig(inline=True, workers=1),
            ServerConfig(max_inflight=1, queue_depth=0),
        ).start()
        try:
            statuses = []
            lock = threading.Lock()

            def hit(index):
                # Distinct keys so single-flight cannot absorb the burst.
                status, payload, headers = request(
                    thread,
                    "POST",
                    "/v1/compile",
                    {"model": "alexnet", "config": "dnnk", "tenant": f"t{index}"},
                )
                with lock:
                    statuses.append((status, payload, headers))

            with injected(
                FaultPlan(
                    "serve.worker", mode="hang", hang_seconds=0.6, max_fires=1
                )
            ):
                first = threading.Thread(target=hit, args=(0,))
                first.start()
                time.sleep(0.15)  # let the leader occupy the only slot
                status, payload, headers = request(
                    thread,
                    "POST",
                    "/v1/compile",
                    {"model": "resnet50", "config": "dnnk"},
                )
                first.join()
            assert status == 429
            assert payload["error"]["type"] == "OverloadedError"
            assert payload["error"]["context"]["reason"] == "queue"
            assert int(headers["Retry-After"]) >= 1
            assert statuses[0][0] == 200  # the admitted request finished
            assert registry().counter("serve.shed").value(reason="queue") >= 1
        finally:
            thread.stop()

    def test_tenant_quota_sheds_429(self):
        thread = ServerThread(
            ServiceConfig(inline=True, workers=1),
            ServerConfig(quota_rate=0.5, quota_burst=1.0),
        ).start()
        try:
            body = {"model": "alexnet", "config": "umm", "tenant": "greedy"}
            assert request(thread, "POST", "/v1/compile", body)[0] == 200
            status, payload, headers = request(thread, "POST", "/v1/compile", body)
            assert status == 429
            assert payload["error"]["context"]["reason"] == "quota"
            assert int(headers["Retry-After"]) >= 1
            # Another tenant is unaffected.
            other = {"model": "alexnet", "config": "umm", "tenant": "patient"}
            assert request(thread, "POST", "/v1/compile", other)[0] == 200
        finally:
            thread.stop()


class TestDrain:
    def test_drain_rejects_new_work_and_reports_clean(self, tmp_path):
        thread = ServerThread(
            ServiceConfig(inline=True, workers=1, cache_dir=str(tmp_path))
        ).start()
        request(thread, "POST", "/v1/compile", {"model": "alexnet", "config": "umm"})
        assert thread.stop() is True  # nothing in flight: clean drain

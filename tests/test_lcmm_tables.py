"""Tests for repro.lcmm.tables — the Fig. 7 metric tables."""

import pytest

from repro.ir.tensor import TensorKind
from repro.lcmm.feature_reuse import feature_candidates, feature_reuse_pass
from repro.lcmm.tables import (
    latency_reduction,
    operation_latency_table,
    tensor_metric_table,
    virtual_buffer_table,
)
from repro.perf.latency import LatencyModel

from tests.conftest import build_chain, small_accel


@pytest.fixture
def model():
    return LatencyModel(
        build_chain(num_convs=4, channels=128, hw=14),
        small_accel(ddr_efficiency=0.05),
    )


class TestOperationLatencyTable:
    def test_row_per_executed_node(self, model):
        table = operation_latency_table(model)
        assert set(table) == set(model.nodes())

    def test_row_values_match_model(self, model):
        table = operation_latency_table(model)
        for name, row in table.items():
            ll = model.layer(name)
            assert row.lat_compute == pytest.approx(ll.compute)
            assert row.lat_ifmap == pytest.approx(ll.slot_latency(TensorKind.IFMAP))
            assert row.lat_weight == pytest.approx(ll.slot_latency(TensorKind.WEIGHT))
            assert row.lat_ofmap == pytest.approx(ll.slot_latency(TensorKind.OFMAP))

    def test_bottleneck_identifies_max(self, model):
        table = operation_latency_table(model)
        for row in table.values():
            values = {
                "compute": row.lat_compute,
                "if": row.lat_ifmap,
                "wt": row.lat_weight,
                "of": row.lat_ofmap,
            }
            assert values[row.bottleneck] == max(values.values())


class TestLatencyReduction:
    def test_exact_marginal_reduction(self, model):
        # Removing c1's output transfer helps both c1 (of) and c2 (if).
        reduction = latency_reduction(model, "f:c1", ("c1", "c2"))
        expected = (
            model.node_latency("c1")
            - model.node_latency("c1", frozenset({"f:c1"}))
            + model.node_latency("c2")
            - model.node_latency("c2", frozenset({"f:c1"}))
        )
        assert reduction == pytest.approx(expected)

    def test_zero_for_irrelevant_tensor(self, model):
        assert latency_reduction(model, "f:ghost", ("c3",)) == pytest.approx(0.0)

    def test_metric_table_mirrors_candidates(self, model):
        candidates = feature_candidates(model.graph, model)
        table = tensor_metric_table(model, candidates)
        assert table == {c.name: c.latency_reduction for c in candidates}


class TestVirtualBufferTable:
    def test_rows_match_buffers(self, model):
        result = feature_reuse_pass(model.graph, model)
        rows = virtual_buffer_table(result.buffers)
        assert len(rows) == len(result.buffers)
        for row, buf in zip(rows, result.buffers):
            assert row.name == buf.name
            assert row.size_bytes == buf.size_bytes
            assert row.tensors == tuple(buf.tensor_names)
            assert row.start <= row.end

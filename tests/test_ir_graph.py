"""Tests for repro.ir.graph."""

import pytest

from repro.ir.graph import ComputationGraph, GraphValidationError
from repro.ir.layer import Concat, Conv2D, InputLayer
from repro.ir.tensor import FeatureMapShape
from repro.models.common import conv

from tests.conftest import build_chain, build_residual_block, build_snippet


class TestConstruction:
    def test_add_returns_layer(self):
        g = ComputationGraph(name="g")
        layer = g.add(InputLayer(name="data"))
        assert layer.name == "data"
        assert "data" in g
        assert len(g) == 1

    def test_duplicate_name_rejected(self):
        g = ComputationGraph(name="g")
        g.add(InputLayer(name="data"))
        with pytest.raises(GraphValidationError, match="duplicate"):
            g.add(InputLayer(name="data"))

    def test_unknown_input_rejected(self):
        g = ComputationGraph(name="g")
        g.add(InputLayer(name="data"))
        with pytest.raises(GraphValidationError, match="unknown input"):
            g.add(Conv2D(name="c", inputs=("ghost",), out_channels=8))

    def test_shapes_inferred_on_add(self):
        g = build_chain(num_convs=2, channels=32, hw=16)
        assert g.output_shape("c1") == FeatureMapShape(32, 16, 16)
        assert g.output_shape("c2") == FeatureMapShape(32, 16, 16)

    def test_unknown_layer_lookup_raises(self):
        g = build_chain()
        with pytest.raises(KeyError):
            g.layer("nope")


class TestStructureQueries:
    def test_schedule_is_definition_order(self):
        g = build_chain(num_convs=3)
        assert g.schedule() == ["data", "c1", "c2", "c3"]

    def test_compute_schedule_skips_input_and_concat(self):
        g = build_snippet()
        sched = g.compute_schedule()
        assert "data" not in sched
        assert "cat" not in sched
        assert sched == ["C1", "C2", "C3", "C4", "C5", "C6"]

    def test_predecessors_and_successors(self):
        g = build_snippet()
        assert g.predecessors("C2") == ["C1"]
        assert g.successors("C1") == ["C2", "C3"]

    def test_sinks(self):
        g = build_chain(num_convs=2)
        assert g.sinks() == ["c2"]

    def test_conv_layers(self):
        g = build_residual_block()
        assert g.conv_layers() == ["conv1", "conv2", "conv3", "proj"]

    def test_total_macs_positive(self):
        assert build_snippet().total_macs() > 0

    def test_total_weight_bytes_scales(self):
        g = build_chain()
        assert g.total_weight_bytes(2) == 2 * g.total_weight_bytes(1)


class TestFeatureTensors:
    def test_one_tensor_per_consumed_output(self):
        g = build_chain(num_convs=3)
        tensors = {t.name: t for t in g.feature_tensors()}
        # data, c1, c2 are consumed; c3 (the sink) is not.
        assert set(tensors) == {"f:data", "f:c1", "f:c2"}

    def test_concat_is_transparent(self):
        g = build_snippet()
        tensors = {t.name: t for t in g.feature_tensors()}
        assert "f:cat" not in tensors
        # C4 reads the concat, hence consumes both branch outputs.
        assert tensors["f:C2"].consumers == ("C4",)
        assert tensors["f:C3"].consumers == ("C4",)

    def test_multi_consumer_tensor(self):
        g = build_snippet()
        tensors = {t.name: t for t in g.feature_tensors()}
        assert tensors["f:C1"].consumers == ("C2", "C3")

    def test_feature_sources_through_concat(self):
        g = build_snippet()
        assert g.feature_sources("C4") == ["C2", "C3"]
        assert g.feature_sources("C2") == ["C1"]

    def test_residual_shortcut_consumers(self):
        g = build_residual_block()
        tensors = {t.name: t for t in g.feature_tensors()}
        assert tensors["f:data"].consumers == ("conv1", "proj")
        assert tensors["f:conv3"].consumers == ("add",)


class TestWeightTensors:
    def test_one_per_weighted_layer(self):
        g = build_snippet()
        names = [t.name for t in g.weight_tensors()]
        assert names == [f"w:C{i}" for i in range(1, 7)]

    def test_shapes_match_layers(self):
        g = build_chain(num_convs=1, channels=32, hw=8)
        (wt,) = g.weight_tensors()
        assert wt.shape.out_channels == 32
        assert wt.shape.in_channels == 3


class TestBlocks:
    def test_block_tagging(self):
        g = ComputationGraph(name="g")
        g.add(InputLayer(name="data", shape=FeatureMapShape(8, 8, 8)))
        g.begin_block("stage1")
        conv(g, "c1", "data", 8, 3)
        g.end_block()
        conv(g, "c2", "c1", 8, 3)
        assert g.blocks == {"stage1": ["c1"]}
        assert g.block_of("c1") == "stage1"
        assert g.block_of("c2") is None


class TestValidation:
    def test_empty_graph_invalid(self):
        with pytest.raises(GraphValidationError, match="empty"):
            ComputationGraph(name="g").validate()

    def test_no_input_layer_invalid(self):
        g = ComputationGraph(name="g")
        # Bypass add() ordering by constructing a lone conv via internals.
        g.add(InputLayer(name="data"))
        g._layers.pop("data")
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_valid_graphs_pass(self):
        build_chain().validate()
        build_snippet().validate()
        build_residual_block().validate()

"""Cross-module integration tests on the real benchmark models.

Runs the complete stack — model zoo -> latency model -> LCMM pipeline ->
validators -> simulator — on every (benchmark, precision) design point of
the paper's evaluation, and checks consistency between the analytical
model and the event-driven simulation.
"""

import pytest

from repro.analysis.experiments import (
    BENCHMARKS,
    PRECISIONS,
    reference_design,
    run_comparison,
)
from repro.hw.precision import INT8, INT16
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.lcmm.validate import validate_buffers, validate_result
from repro.models import get_model
from repro.perf.latency import LatencyModel
from repro.sim import simulate


@pytest.mark.parametrize("bench_name", BENCHMARKS)
@pytest.mark.parametrize("precision", PRECISIONS, ids=lambda p: p.name)
class TestAllDesignPoints:
    def test_pipeline_valid_and_faster(self, bench_name, precision):
        cmp = run_comparison(bench_name, precision)
        validate_result(cmp.lcmm, cmp.lcmm_model)
        validate_buffers(cmp.lcmm)
        assert cmp.speedup > 1.0

    def test_simulation_confirms_allocation(self, bench_name, precision):
        cmp = run_comparison(bench_name, precision)
        sim = simulate(
            cmp.lcmm_model,
            cmp.lcmm.onchip_tensors,
            cmp.lcmm.prefetch_result,
            record_events=False,
        )
        # The simulator (with contention) stays within 20% of Eq. 1.
        assert sim.total_latency == pytest.approx(cmp.lcmm.latency, rel=0.20)

    def test_umm_simulation_matches_model(self, bench_name, precision):
        graph = get_model(bench_name)
        accel = reference_design(bench_name, precision, "umm")
        model = LatencyModel(graph, accel)
        sim = simulate(model, record_events=False)
        assert sim.total_latency == pytest.approx(model.umm_latency())


class TestAblationConsistency:
    """Pass-level ablations must compose sensibly on a real model."""

    @pytest.fixture(scope="class")
    def setup(self):
        graph = get_model("googlenet")
        accel = reference_design("googlenet", INT16, "lcmm")
        model = LatencyModel(graph, accel)
        return graph, accel, model

    def test_each_pass_contributes(self, setup):
        graph, accel, model = setup
        full = run_lcmm(graph, accel, model=model)
        feat = run_lcmm(graph, accel, options=LCMMOptions(weight_prefetch=False), model=model)
        wt = run_lcmm(graph, accel, options=LCMMOptions(feature_reuse=False), model=model)
        none = run_lcmm(
            graph,
            accel,
            options=LCMMOptions(feature_reuse=False, weight_prefetch=False),
            model=model,
        )
        assert full.latency <= min(feat.latency, wt.latency)
        assert max(feat.latency, wt.latency) < none.latency
        assert none.latency == pytest.approx(model.umm_latency())

    def test_greedy_not_better_than_dnnk(self, setup):
        graph, accel, model = setup
        dnnk = run_lcmm(graph, accel, model=model)
        greedy = run_lcmm(graph, accel, options=LCMMOptions(use_greedy=True), model=model)
        assert dnnk.latency <= greedy.latency * 1.02


class TestCapacityScaling:
    """Tighter SRAM budgets must never *help* the allocator."""

    def test_latency_monotone_in_budget(self):
        graph = get_model("googlenet")
        accel = reference_design("googlenet", INT16, "lcmm")
        model = LatencyModel(graph, accel)
        tile = accel.tile_buffer_bytes()
        budgets = [tile + 1 * 2**20, tile + 4 * 2**20, tile + 16 * 2**20]
        latencies = [
            run_lcmm(graph, accel, options=LCMMOptions(sram_budget=b), model=model).latency
            for b in budgets
        ]
        assert latencies[0] >= latencies[1] >= latencies[2]

    def test_buffer_sharing_saves_memory_on_resnet(self):
        # The headline mechanism: virtual buffers hold many tensors.
        cmp = run_comparison("resnet152", INT8)
        total_tensor_bytes = sum(
            t.size_bytes
            for b in cmp.lcmm.dnnk_result.allocated
            for t in b.tensors
        )
        buffer_bytes = sum(b.size_bytes for b in cmp.lcmm.dnnk_result.allocated)
        assert buffer_bytes < total_tensor_bytes


class TestLinearModels:
    """AlexNet/VGG (linear topologies) also run through the pipeline."""

    @pytest.mark.parametrize("name", ["alexnet", "vgg16"])
    def test_pipeline_on_linear_models(self, name):
        graph = get_model(name)
        accel = reference_design("resnet152", INT8, "lcmm")
        model = LatencyModel(graph, accel)
        lcmm = run_lcmm(graph, accel, model=model)
        validate_result(lcmm, model)
        assert lcmm.latency <= model.umm_latency()

"""Tests for repro.lcmm.framework and repro.lcmm.umm — the full pipeline."""

import pytest

from repro.hw.precision import INT16
from repro.lcmm.framework import LCMMOptions, run_lcmm
from repro.lcmm.umm import run_umm
from repro.lcmm.validate import validate_buffers, validate_result
from repro.perf.latency import LatencyModel

from tests.conftest import (
    build_chain,
    build_residual_block,
    build_snippet,
    small_accel,
)


@pytest.fixture
def starved():
    graph = build_chain(num_convs=6, channels=128, hw=14)
    accel = small_accel(ddr_efficiency=0.1)
    return graph, accel, LatencyModel(graph, accel)


class TestUMM:
    def test_umm_latency_matches_model(self, starved):
        graph, accel, model = starved
        umm = run_umm(graph, accel, model)
        assert umm.latency == pytest.approx(model.umm_latency())

    def test_node_latencies_sum_to_total(self, starved):
        graph, accel, model = starved
        umm = run_umm(graph, accel, model)
        assert sum(umm.node_latencies.values()) == pytest.approx(umm.latency)

    def test_tops_property(self, starved):
        graph, accel, model = starved
        umm = run_umm(graph, accel, model)
        assert umm.tops == pytest.approx(umm.throughput / 1e12)

    def test_sram_is_tile_buffers_only(self, starved):
        graph, accel, model = starved
        umm = run_umm(graph, accel, model)
        assert umm.sram_used_bytes >= accel.tile_buffer_bytes()
        assert umm.sram_utilization < 0.05


class TestLCMMPipeline:
    def test_speedup_on_memory_bound_graph(self, starved):
        graph, accel, model = starved
        umm = run_umm(graph, accel, model)
        lcmm = run_lcmm(graph, accel, model=model)
        assert lcmm.latency < umm.latency
        assert lcmm.throughput > umm.throughput

    def test_all_invariants_hold(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        validate_result(lcmm, model, run_umm(graph, accel, model))
        validate_buffers(lcmm)

    def test_invariants_hold_on_all_fixture_graphs(self):
        for graph in (build_chain(), build_snippet(), build_residual_block()):
            accel = small_accel(ddr_efficiency=0.2)
            model = LatencyModel(graph, accel)
            lcmm = run_lcmm(graph, accel, model=model)
            validate_result(lcmm, model)
            validate_buffers(lcmm)

    def test_node_latencies_sum_to_total(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        assert sum(lcmm.node_latencies.values()) == pytest.approx(lcmm.latency)

    def test_compute_bound_graph_gains_nothing(self):
        graph = build_chain()
        accel = small_accel(ddr_efficiency=1.0)
        model = LatencyModel(graph, accel)
        lcmm = run_lcmm(graph, accel, model=model)
        assert lcmm.latency == pytest.approx(model.umm_latency(), rel=0.01)

    def test_sram_budget_is_respected(self, starved):
        graph, accel, model = starved
        budget = accel.tile_buffer_bytes() + 600_000
        options = LCMMOptions(sram_budget=budget)
        lcmm = run_lcmm(graph, accel, options=options, model=model)
        assert lcmm.sram_usage.used_bytes <= budget + 36864  # one block slack

    def test_budget_below_tile_buffers_raises(self, starved):
        graph, accel, model = starved
        with pytest.raises(ValueError, match="exceed"):
            run_lcmm(
                graph,
                accel,
                options=LCMMOptions(sram_budget=accel.tile_buffer_bytes() // 2),
                model=model,
            )

    def test_pol_between_zero_and_one(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        assert 0.0 <= lcmm.percentage_onchip_layers(model) <= 1.0


class TestOptionFlags:
    def test_feature_reuse_only(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(
            graph, accel, options=LCMMOptions(weight_prefetch=False), model=model
        )
        assert lcmm.prefetch_result.candidates == []
        assert all(name.startswith("f:") for name in lcmm.onchip_tensors)
        validate_result(lcmm, model)

    def test_prefetch_only(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(
            graph, accel, options=LCMMOptions(feature_reuse=False), model=model
        )
        assert lcmm.feature_result.candidates == []
        assert all(name.startswith("w:") for name in lcmm.onchip_tensors)
        validate_result(lcmm, model)

    def test_both_disabled_equals_umm(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(
            graph,
            accel,
            options=LCMMOptions(feature_reuse=False, weight_prefetch=False),
            model=model,
        )
        assert lcmm.onchip_tensors == frozenset()
        assert lcmm.latency == pytest.approx(model.umm_latency())

    def test_full_lcmm_at_least_as_good_as_single_pass(self, starved):
        graph, accel, model = starved
        full = run_lcmm(graph, accel, model=model)
        feat = run_lcmm(
            graph, accel, options=LCMMOptions(weight_prefetch=False), model=model
        )
        wt = run_lcmm(
            graph, accel, options=LCMMOptions(feature_reuse=False), model=model
        )
        assert full.latency <= feat.latency + 1e-12
        assert full.latency <= wt.latency + 1e-12

    def test_greedy_allocator_option(self, starved):
        graph, accel, model = starved
        greedy = run_lcmm(graph, accel, options=LCMMOptions(use_greedy=True), model=model)
        assert greedy.latency <= model.umm_latency()
        validate_result(greedy, model)

    def test_splitting_disabled(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, options=LCMMOptions(splitting=False), model=model)
        assert lcmm.splitting_iterations == 0
        validate_result(lcmm, model)


class TestResiduals:
    def test_residuals_only_on_onchip_weights(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        for name in lcmm.residuals:
            assert name.startswith("w:")
            assert name in lcmm.onchip_tensors

    def test_residuals_nonnegative(self, starved):
        graph, accel, model = starved
        lcmm = run_lcmm(graph, accel, model=model)
        for value in lcmm.residuals.values():
            assert value >= 0

    def test_16bit_pipeline_also_valid(self):
        graph = build_chain(num_convs=6, channels=128, hw=14)
        accel = small_accel(precision=INT16, ddr_efficiency=0.1)
        model = LatencyModel(graph, accel)
        lcmm = run_lcmm(graph, accel, model=model)
        validate_result(lcmm, model)
